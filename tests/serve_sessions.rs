//! The session-layer contract behind `dsud serve`: multiplexing many
//! concurrent queries onto one resident deployment must be invisible in
//! the answers.
//!
//! * Every concurrently-admitted query returns the same skyline
//!   (bit-exact probabilities, same order), the same progress sequence,
//!   and the same per-query traffic as the identical query run one-shot
//!   on a fresh cluster — across inline, threaded, and TCP transports.
//! * A repeated query is served from the result cache: identical answer,
//!   zero rounds, zero tuples transmitted, `cache_hits = 1` in its
//!   schema-6 report.
//! * An update applied through the maintenance path invalidates the
//!   cache: the repeat recomputes and sees the new data; reversing the
//!   update restores the original answer bit for bit.

use std::sync::Arc;

use dsud_core::update::UpdateOp;
use dsud_core::{
    Cluster, FailurePolicy, FaultKind, FaultPlan, LinkConfig, QueryConfig, QueryOutcome, Recorder,
    SessionOptions, SessionServer, SiteOptions, SiteState, Transport, UncertainTuple, WireFormat,
};

/// Wire layout under test: `DSUD_WIRE=columnar|legacy` (legacy default),
/// so CI can run the whole determinism matrix under both layouts.
fn wire_from_env() -> WireFormat {
    std::env::var("DSUD_WIRE").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
}
use dsud_data::WorkloadSpec;
use dsud_uncertain::TupleId;

const N: usize = 1_200;
const DIMS: usize = 3;
const SITES: usize = 6;

fn sites() -> Vec<Vec<UncertainTuple>> {
    WorkloadSpec::new(N, DIMS).seed(11).generate_partitioned(SITES).expect("workload generates")
}

/// Everything the session layer must preserve: the skyline (ids,
/// bit-exact probabilities, report order), the progress sequence, and the
/// paper's bandwidth measure for this query.
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>, u64, u64) {
    let skyline: Vec<(TupleId, u64)> =
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect();
    let progress: Vec<(TupleId, u64)> =
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect();
    (skyline, progress, outcome.tuples_transmitted(), outcome.traffic.total().bytes)
}

/// The 8-query workload mix: distinct thresholds and algorithms so no two
/// concurrent queries share a cache key.
const MIX: [(f64, bool); 8] = [
    (0.2, false),
    (0.2, true),
    (0.3, false),
    (0.3, true),
    (0.4, false),
    (0.4, true),
    (0.5, false),
    (0.5, true),
];

fn one_shot(q: f64, edsud: bool) -> QueryOutcome {
    let mut cluster = Cluster::with_transport(
        DIMS,
        sites(),
        SiteOptions::default(),
        Recorder::default(),
        Transport::Inline,
    )
    .expect("cluster builds");
    let config = QueryConfig::new(q).expect("valid threshold").wire_format(wire_from_env());
    if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) }
        .expect("one-shot query runs")
}

fn session_server(transport: Transport, max_concurrent: usize, cache: usize) -> SessionServer {
    let cluster = Cluster::with_transport(
        DIMS,
        sites(),
        SiteOptions::default(),
        Recorder::default(),
        transport,
    )
    .expect("cluster builds");
    SessionServer::new(
        cluster,
        SessionOptions { max_concurrent, cache_capacity: cache, ..SessionOptions::default() },
    )
}

/// 8 queries admitted concurrently (the full admission width) against one
/// resident deployment, on every transport, each compared bit for bit —
/// answer, progress, and per-query traffic — to the same query run
/// one-shot on a fresh cluster.
#[test]
fn concurrent_session_queries_match_sequential_one_shots_bitwise() {
    let references: Vec<_> = MIX.iter().map(|&(q, edsud)| one_shot(q, edsud)).collect();
    assert!(
        references.iter().all(|r| !r.skyline.is_empty()),
        "every mix entry must produce a non-trivial skyline"
    );

    for transport in [Transport::Inline, Transport::Threaded, Transport::Tcp] {
        let server = Arc::new(session_server(transport, MIX.len(), 0));
        let outcomes: Vec<QueryOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = MIX
                .iter()
                .map(|&(q, edsud)| {
                    let server = Arc::clone(&server);
                    s.spawn(move || {
                        let config = QueryConfig::new(q)
                            .expect("valid threshold")
                            .wire_format(wire_from_env());
                        let answer = if edsud {
                            server.run_edsud(&config, false)
                        } else {
                            server.run_dsud(&config, false)
                        }
                        .expect("session query runs");
                        assert!(!answer.cache_hit, "cache is disabled in this test");
                        answer.outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("query thread joins")).collect()
        });

        for (i, (outcome, reference)) in outcomes.iter().zip(&references).enumerate() {
            let (q, edsud) = MIX[i];
            assert_eq!(
                fingerprint(outcome),
                fingerprint(reference),
                "{transport} q={q} edsud={edsud}"
            );
            assert_eq!(outcome.stats, reference.stats, "{transport} q={q} edsud={edsud}");
        }

        let stats = server.stats();
        assert_eq!(stats.queries_served, MIX.len() as u64, "{transport}");
        assert_eq!(stats.cache_hits, 0, "{transport}");
        assert!(
            stats.peak_concurrent <= MIX.len(),
            "{transport}: admission must bound concurrency, saw {}",
            stats.peak_concurrent
        );
    }
}

/// A repeated query is served from the result cache: the answer and
/// progress sequence are bit-identical, and its schema-6 report shows the
/// hit — zero rounds, zero traffic, `cache_hits = 1`.
#[test]
fn warm_cache_repeat_is_identical_with_zero_rounds() {
    let server = session_server(Transport::Inline, 4, 16);
    let config = QueryConfig::new(0.3).expect("valid threshold").wire_format(wire_from_env());

    let cold = server.run_edsud(&config, true).expect("cold query runs");
    assert!(!cold.cache_hit);
    let cold_report = cold.report.as_ref().expect("report was requested");
    assert!(cold_report.counters.rounds >= 1, "a computed query has rounds");
    assert!(cold.outcome.tuples_transmitted() > 0);

    let warm = server.run_edsud(&config, true).expect("warm query runs");
    assert!(warm.cache_hit, "identical repeat must hit the cache");
    assert_ne!(warm.query_id, cold.query_id, "every query gets its own id");

    // Identical answer and progress sequence, bit for bit.
    let skyline = |o: &QueryOutcome| {
        o.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect::<Vec<_>>()
    };
    assert_eq!(skyline(&warm.outcome), skyline(&cold.outcome));
    let progress = |o: &QueryOutcome| {
        o.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect::<Vec<_>>()
    };
    assert_eq!(progress(&warm.outcome), progress(&cold.outcome));

    // The hit did no distributed work at all.
    assert_eq!(warm.outcome.tuples_transmitted(), 0);
    assert_eq!(warm.outcome.traffic.total().messages, 0);
    assert_eq!(warm.outcome.stats.iterations, 0);

    // ... and its report says so in the schema-6 session fields.
    let warm_report = warm.report.as_ref().expect("report was requested");
    assert_eq!(warm_report.schema_version, dsud_core::SCHEMA_VERSION);
    assert_eq!(warm_report.query_id, Some(warm.query_id));
    assert_eq!(warm_report.counters.cache_hits, 1);
    assert_eq!(warm_report.counters.rounds, 0, "a cache hit runs zero candidate rounds");
    assert_eq!(warm_report.counters.tuples_shipped, 0);
    assert_eq!(warm_report.counters.bytes_sent, 0);
    assert_eq!(
        warm_report.progressive.len(),
        cold.outcome.skyline.len(),
        "the hit replays every result progressively"
    );
    assert_eq!(cold_report.query_id, Some(cold.query_id));
    assert_eq!(cold_report.counters.cache_hits, 0);

    let stats = server.stats();
    assert_eq!((stats.queries_served, stats.cache_hits), (2, 1));
    assert_eq!(stats.cache_entries, 1);
}

/// Different query keys get different cache entries; sharing only happens
/// on a true repeat.
#[test]
fn cache_keys_distinguish_algorithm_and_threshold() {
    let server = session_server(Transport::Inline, 4, 16);
    for (q, edsud) in [(0.3, true), (0.3, false), (0.4, true)] {
        let config = QueryConfig::new(q).expect("valid threshold").wire_format(wire_from_env());
        let answer =
            if edsud { server.run_edsud(&config, false) } else { server.run_dsud(&config, false) }
                .expect("query runs");
        assert!(!answer.cache_hit, "q={q} edsud={edsud} is a distinct key");
    }
    assert_eq!(server.stats().cache_entries, 3);
}

/// An update through the maintenance path invalidates the cache: the
/// repeat recomputes against the new data, and undoing the update brings
/// back the original answer bit for bit.
#[test]
fn update_between_queries_invalidates_the_cache() {
    let server = session_server(Transport::Inline, 4, 16);
    let config = QueryConfig::new(0.3).expect("valid threshold").wire_format(wire_from_env());

    let original = server.run_edsud(&config, false).expect("first query runs");
    assert!(server.run_edsud(&config, false).expect("repeat runs").cache_hit);

    // A dominating, high-probability tuple at site 0 must enter the answer.
    let spike = UncertainTuple::new(
        TupleId::new(0, 1_000_000),
        vec![1e-4; DIMS],
        dsud_uncertain::Probability::new(0.99).expect("valid probability"),
    )
    .expect("tuple builds");
    server.apply_update(&UpdateOp::Insert(spike.clone())).expect("insert applies");

    let after_insert = server.run_edsud(&config, false).expect("post-update query runs");
    assert!(!after_insert.cache_hit, "the update must invalidate the cached answer");
    assert!(
        after_insert.outcome.skyline.iter().any(|e| e.tuple.id() == spike.id()),
        "the inserted tuple must appear in the recomputed skyline"
    );

    server.apply_update(&UpdateOp::Delete(spike)).expect("delete applies");
    let restored = server.run_edsud(&config, false).expect("restored query runs");
    assert!(!restored.cache_hit);
    assert_eq!(
        fingerprint(&restored.outcome),
        fingerprint(&original.outcome),
        "undoing the update must restore the original answer bitwise"
    );

    let stats = server.stats();
    assert_eq!(stats.updates_applied, 2);
    assert!(stats.cache_invalidated >= 2, "both updates dropped a cached answer");
}

/// Answer-only identity for the faulted-site test: skyline and progress,
/// bit for bit, but not traffic — a retried request legitimately resends
/// frames without changing the answer.
fn answer_fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>) {
    let skyline: Vec<(TupleId, u64)> =
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect();
    let progress: Vec<(TupleId, u64)> =
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect();
    (skyline, progress)
}

/// First seed whose derived fault plans can kill a site outright: some
/// site gets a hard-fault window at least `retry_budget + 1` attempts
/// long, so one request burns its whole retry budget inside the window
/// and the owning query sees the site fail. Pure in the scan range, so
/// every transport picks the same seed.
fn killing_seed() -> u64 {
    let attempts = u64::from(LinkConfig::default().retry_budget) + 1;
    (1..256)
        .find(|&seed| {
            (0..SITES as u32).any(|site| {
                FaultPlan::seeded(seed, site)
                    .windows()
                    .iter()
                    .any(|w| w.len >= attempts && !matches!(w.kind, FaultKind::Slow(_)))
            })
        })
        .expect("some seed in 1..256 produces a long hard-fault window")
}

/// A site killed while the server is mid-way through serving a concurrent
/// wave of queries: the query whose request dies inside the fault window
/// comes back stamped `degraded`, every other outcome is bit-identical to
/// the clean reference, and nothing panics, hangs, or silently lies.
/// Afterwards heartbeats walk the site back to Active and the deployment
/// serves exact answers again.
#[test]
fn site_killed_mid_served_query_degrades_victim_without_poisoning_neighbours() {
    let seed = killing_seed();
    let references: Vec<_> = MIX.iter().map(|&(q, edsud)| one_shot(q, edsud)).collect();

    for transport in [Transport::Inline, Transport::Threaded, Transport::Tcp] {
        let cluster = Cluster::with_transport_chaos(
            DIMS,
            sites(),
            SiteOptions::default(),
            Recorder::default(),
            transport,
            LinkConfig::default(),
            seed,
        )
        .expect("cluster builds");
        // Cache off: a pre-fault exact answer must not shadow later waves.
        let server = Arc::new(SessionServer::new(
            cluster,
            SessionOptions {
                max_concurrent: MIX.len(),
                cache_capacity: 0,
                ..SessionOptions::default()
            },
        ));

        // Two concurrent waves: enough link attempts to walk every site's
        // ordinal stream through its seeded windows.
        let mut degraded = 0usize;
        for wave in 0..2 {
            let outcomes: Vec<QueryOutcome> = std::thread::scope(|s| {
                let handles: Vec<_> = MIX
                    .iter()
                    .map(|&(q, edsud)| {
                        let server = Arc::clone(&server);
                        s.spawn(move || {
                            let config = QueryConfig::new(q)
                                .expect("valid threshold")
                                .failure_policy(FailurePolicy::Degrade)
                                .wire_format(wire_from_env());
                            let answer = if edsud {
                                server.run_edsud(&config, false)
                            } else {
                                server.run_dsud(&config, false)
                            }
                            .expect("a killed site degrades, it never errors under Degrade");
                            answer.outcome
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("query thread joins")).collect()
            });

            for (i, outcome) in outcomes.iter().enumerate() {
                let (q, edsud) = MIX[i];
                if outcome.degraded {
                    // The victim: a named quarantine and a usable partial
                    // answer, never an empty or corrupt one.
                    degraded += 1;
                    assert!(
                        outcome.sites.iter().any(|s| s.quarantined.is_some()),
                        "{transport} wave {wave} q={q} edsud={edsud}: degraded outcome \
                         must name a quarantined site"
                    );
                    assert!(
                        !outcome.skyline.is_empty(),
                        "{transport} wave {wave} q={q} edsud={edsud}: degraded skyline empty"
                    );
                } else {
                    assert_eq!(
                        answer_fingerprint(outcome),
                        answer_fingerprint(&references[i]),
                        "{transport} wave {wave} q={q} edsud={edsud}: non-degraded outcome \
                         diverged from the clean reference"
                    );
                }
            }
        }
        assert!(degraded >= 1, "{transport}: the seeded kill never claimed a victim");

        // Drain the remaining fault windows with heartbeats (each sweep
        // advances every link by at least one attempt), then verify the
        // deployment is whole again: all sites Active, answers exact.
        let last_end = (0..SITES as u32)
            .flat_map(|site| FaultPlan::seeded(seed, site).windows().to_vec())
            .map(|w| w.start + w.len)
            .max()
            .unwrap_or(0);
        for _ in 0..last_end + 8 {
            server.heartbeat();
        }
        assert!(
            server.site_states().iter().all(|s| matches!(s, SiteState::Active)),
            "{transport}: sites not all Active after draining the fault plan: {:?}",
            server.site_states()
        );
        for (i, &(q, edsud)) in MIX.iter().enumerate() {
            let config = QueryConfig::new(q)
                .expect("valid threshold")
                .failure_policy(FailurePolicy::Degrade)
                .wire_format(wire_from_env());
            let answer = if edsud {
                server.run_edsud(&config, false)
            } else {
                server.run_dsud(&config, false)
            }
            .expect("healed query runs");
            assert!(!answer.outcome.degraded, "{transport} q={q} edsud={edsud}: still degraded");
            assert_eq!(
                answer_fingerprint(&answer.outcome),
                answer_fingerprint(&references[i]),
                "{transport} q={q} edsud={edsud}: healed answer diverged"
            );
        }
    }
}

/// A width-1 admission gate fully serializes concurrent queries without
/// changing any answer.
#[test]
fn admission_gate_queues_beyond_the_width() {
    let server = Arc::new(session_server(Transport::Inline, 1, 0));
    // With width 1, 4 concurrent queries serialize; all must still answer
    // correctly and at most one runs at a time.
    let reference = one_shot(0.3, true);
    std::thread::scope(|s| {
        for _ in 0..4 {
            let server = Arc::clone(&server);
            let reference = &reference;
            s.spawn(move || {
                let config =
                    QueryConfig::new(0.3).expect("valid threshold").wire_format(wire_from_env());
                let answer = server.run_edsud(&config, false).expect("query runs");
                assert_eq!(fingerprint(&answer.outcome), fingerprint(reference));
            });
        }
    });
    let stats = server.stats();
    assert_eq!(stats.queries_served, 4);
    assert_eq!(stats.peak_concurrent, 1, "width-1 gate must fully serialize");
}
