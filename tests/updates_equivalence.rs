//! Update maintenance (paper Section 5.4): the incremental strategy must
//! keep SKY(H) exactly equal to what a from-scratch recomputation over the
//! updated data would produce — for inserts, deletes, mixes, and updates
//! that touch skyline members.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dsud_core::update::{apply_batch, Maintainer, UpdateOp};
use dsud_core::{probabilistic_skyline, TupleId, UncertainDb, UncertainTuple};
use dsud_core::{BoundMode, Cluster, Probability, SubspaceMask};
use dsud_data::{SpatialDistribution, WorkloadSpec};

const Q: f64 = 0.3;

fn full(d: usize) -> SubspaceMask {
    SubspaceMask::full(d).unwrap()
}

/// Applies ops to the raw tuple lists (the "what the data now is" oracle).
fn apply_to_data(sites: &mut [Vec<UncertainTuple>], ops: &[UpdateOp]) {
    for op in ops {
        match op {
            UpdateOp::Insert(t) => sites[t.id().site.0 as usize].push(t.clone()),
            UpdateOp::Delete(t) => {
                sites[t.id().site.0 as usize].retain(|x| x.id() != t.id());
            }
        }
    }
}

fn reference(sites: &[Vec<UncertainTuple>], dims: usize) -> Vec<(TupleId, f64)> {
    let union = UncertainDb::from_tuples(dims, sites.iter().flatten().cloned().collect::<Vec<_>>())
        .unwrap();
    let mut out: Vec<(TupleId, f64)> = probabilistic_skyline(&union, Q, full(dims))
        .unwrap()
        .into_iter()
        .map(|e| (e.tuple.id(), e.probability))
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

fn run_scenario(
    dims: usize,
    n: usize,
    m: usize,
    seed: u64,
    ops_builder: impl Fn(&[Vec<UncertainTuple>], &mut StdRng) -> Vec<UpdateOp>,
) {
    let mut data = WorkloadSpec::new(n, dims)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(seed)
        .generate_partitioned(m)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
    let ops = ops_builder(&data, &mut rng);

    // Incremental strategy.
    let mut incr_cluster = Cluster::local(dims, data.clone()).unwrap();
    let meter = incr_cluster.meter().clone();
    let (mut maintainer, _) =
        Maintainer::bootstrap(incr_cluster.links_mut(), &meter, Q, full(dims), BoundMode::Paper)
            .unwrap();
    let incremental =
        apply_batch(&mut maintainer, incr_cluster.links_mut(), &meter, &ops, true).unwrap();

    // Naive strategy on an identical twin cluster.
    let mut naive_cluster = Cluster::local(dims, data.clone()).unwrap();
    let naive_meter = naive_cluster.meter().clone();
    let (mut naive_maintainer, _) = Maintainer::bootstrap(
        naive_cluster.links_mut(),
        &naive_meter,
        Q,
        full(dims),
        BoundMode::Paper,
    )
    .unwrap();
    let naive =
        apply_batch(&mut naive_maintainer, naive_cluster.links_mut(), &naive_meter, &ops, false)
            .unwrap();

    // Ground truth over the updated data.
    apply_to_data(&mut data, &ops);
    let expected = reference(&data, dims);

    for (label, got) in [("incremental", incremental), ("naive", naive)] {
        let got: Vec<(TupleId, f64)> = got.iter().map(|e| (e.tuple.id(), e.probability)).collect();
        assert_eq!(
            got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            expected.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            "{label} membership diverged (seed {seed})"
        );
        for ((id, p), (_, e)) in got.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-6, "{label} {id:?}: {p} vs {e}");
        }
    }
}

fn random_insert(sites: &[Vec<UncertainTuple>], rng: &mut StdRng, seq: u64) -> UpdateOp {
    let site = rng.gen_range(0..sites.len()) as u32;
    let dims = sites[0][0].dims();
    let values: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
    let p = Probability::clamped(rng.gen::<f64>());
    UpdateOp::Insert(UncertainTuple::new(TupleId::new(site, 1_000_000 + seq), values, p).unwrap())
}

fn random_delete(sites: &[Vec<UncertainTuple>], rng: &mut StdRng) -> UpdateOp {
    let site = rng.gen_range(0..sites.len());
    let victim = &sites[site][rng.gen_range(0..sites[site].len())];
    UpdateOp::Delete(victim.clone())
}

#[test]
fn pure_inserts_stay_equivalent() {
    run_scenario(2, 600, 4, 1, |sites, rng| {
        (0..40).map(|i| random_insert(sites, rng, i)).collect()
    });
}

#[test]
fn pure_deletes_stay_equivalent() {
    run_scenario(2, 600, 4, 2, |sites, rng| {
        // Sample distinct victims up front.
        let mut ops = Vec::new();
        let mut taken = std::collections::HashSet::new();
        while ops.len() < 40 {
            let op = random_delete(sites, rng);
            if let UpdateOp::Delete(t) = &op {
                if taken.insert(t.id()) {
                    ops.push(op);
                }
            }
        }
        ops
    });
}

#[test]
fn mixed_updates_stay_equivalent() {
    run_scenario(3, 500, 5, 3, |sites, rng| {
        let mut taken = std::collections::HashSet::new();
        let mut ops = Vec::new();
        for i in 0..60 {
            if rng.gen_bool(0.5) {
                ops.push(random_insert(sites, rng, i));
            } else {
                let op = random_delete(sites, rng);
                if let UpdateOp::Delete(t) = &op {
                    if taken.insert(t.id()) {
                        ops.push(op);
                    }
                }
            }
        }
        ops
    });
}

#[test]
fn deleting_every_skyline_member_stays_equivalent() {
    // The hardest case: delete exactly the current members, forcing the
    // region re-evaluation to rediscover the second tier.
    run_scenario(2, 500, 4, 4, |sites, _| {
        let union =
            UncertainDb::from_tuples(2, sites.iter().flatten().cloned().collect::<Vec<_>>())
                .unwrap();
        probabilistic_skyline(&union, Q, full(2))
            .unwrap()
            .into_iter()
            .map(|e| UpdateOp::Delete(e.tuple))
            .collect()
    });
}

#[test]
fn dominant_insert_evicts_members() {
    // Insert a near-origin, high-probability tuple that dominates most of
    // the space: members must be discounted out and the tuple admitted.
    run_scenario(2, 400, 4, 5, |_, _| {
        vec![UpdateOp::Insert(
            UncertainTuple::new(
                TupleId::new(0, 2_000_000),
                vec![0.001, 0.001],
                Probability::new(0.95).unwrap(),
            )
            .unwrap(),
        )]
    });
}

#[test]
fn insert_then_delete_roundtrips() {
    let t = UncertainTuple::new(
        TupleId::new(1, 3_000_000),
        vec![0.005, 0.005],
        Probability::new(0.9).unwrap(),
    )
    .unwrap();
    run_scenario(2, 400, 4, 6, move |_, _| {
        vec![UpdateOp::Insert(t.clone()), UpdateOp::Delete(t.clone())]
    });
}

#[test]
fn incremental_uses_less_maintenance_traffic_than_naive() {
    let dims = 2;
    let data = WorkloadSpec::new(2_000, dims)
        .spatial(SpatialDistribution::Independent)
        .seed(7)
        .generate_partitioned(10)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let ops: Vec<UpdateOp> = (0..50).map(|i| random_insert(&data, &mut rng, i)).collect();

    let run = |incremental: bool| -> u64 {
        let mut cluster = Cluster::local(dims, data.clone()).unwrap();
        let meter = cluster.meter().clone();
        let (mut maintainer, _) =
            Maintainer::bootstrap(cluster.links_mut(), &meter, Q, full(dims), BoundMode::Paper)
                .unwrap();
        let before = meter.snapshot();
        apply_batch(&mut maintainer, cluster.links_mut(), &meter, &ops, incremental).unwrap();
        meter.snapshot().since(&before).tuples_transmitted()
    };

    let incr = run(true);
    let naive = run(false);
    assert!(incr < naive, "incremental {incr} tuples should undercut naive {naive}");
}

/// The Replica policy (paper Section 5.4 heuristic) must be *sound*: every
/// member it reports truly qualifies (exact probability ≥ q), even though
/// it may miss promotions after non-member deletions.
#[test]
fn replica_policy_is_sound() {
    use dsud_core::{SiteOptions, UpdatePolicy};
    let dims = 2;
    let mut data = WorkloadSpec::new(800, dims)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(77)
        .generate_partitioned(6)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0x5eed);
    let mut ops = Vec::new();
    let mut taken = std::collections::HashSet::new();
    for i in 0..80 {
        if rng.gen_bool(0.5) {
            ops.push(random_insert(&data, &mut rng, i));
        } else {
            let op = random_delete(&data, &mut rng);
            if let UpdateOp::Delete(t) = &op {
                if taken.insert(t.id()) {
                    ops.push(op);
                }
            }
        }
    }

    let options = SiteOptions { update_policy: UpdatePolicy::Replica, ..SiteOptions::default() };
    let mut cluster = Cluster::local_with_options(dims, data.clone(), options).unwrap();
    let meter = cluster.meter().clone();
    let (mut maintainer, _) =
        Maintainer::bootstrap(cluster.links_mut(), &meter, Q, full(dims), BoundMode::Paper)
            .unwrap();
    let reported = apply_batch(&mut maintainer, cluster.links_mut(), &meter, &ops, true).unwrap();

    apply_to_data(&mut data, &ops);
    let exact: std::collections::HashMap<TupleId, f64> =
        reference(&data, dims).into_iter().collect();

    for entry in &reported {
        let true_prob = exact
            .get(&entry.tuple.id())
            .copied()
            .unwrap_or_else(|| panic!("replica policy reported non-member {:?}", entry.tuple.id()));
        // Stored probabilities may be stale-low (missed restorations), but
        // membership must be genuine and never overstated.
        assert!(true_prob >= Q, "{:?} does not truly qualify", entry.tuple.id());
        assert!(
            entry.probability <= true_prob + 1e-6,
            "{:?}: stored {} overstates true {}",
            entry.tuple.id(),
            entry.probability,
            true_prob
        );
    }
}
