//! The wire-layout contract: `--wire columnar` is a pure transport
//! optimization. Against the legacy row encoding it must preserve the
//! skyline (ids, bit-exact probabilities, report order), the progressive
//! result sequence, the run statistics, and the paper's bandwidth measure
//! — message counts and tuple counts per traffic class — at every batch
//! size, pipeline depth, transport, and pool size, and through the
//! session daemon. Only the *byte* column may move (and on wide batched
//! feedback frames it must move down).

use dsud_core::{
    update::{apply_batch, Maintainer, UpdateOp},
    BandwidthMeter, BatchSize, Cluster, PipelineDepth, QueryConfig, QueryOutcome, Recorder,
    SessionOptions, SessionServer, SiteOptions, Transport, WireFormat,
};
use dsud_data::WorkloadSpec;
use dsud_uncertain::{Probability, TupleId, UncertainTuple};

const N: usize = 1_200;
const DIMS: usize = 3;
const SITES: usize = 8;
const Q: f64 = 0.3;

fn sites(wire: WireFormat) -> (Vec<Vec<UncertainTuple>>, SiteOptions) {
    let data = WorkloadSpec::new(N, DIMS)
        .seed(42)
        .generate_partitioned(SITES)
        .expect("workload generates");
    (data, SiteOptions { wire, ..SiteOptions::default() })
}

/// Everything the wire layout must preserve: the skyline, the progress
/// sequence, the run statistics, and the per-class message/tuple counts.
/// Bytes are deliberately absent — they are the one thing allowed to
/// differ.
#[allow(clippy::type_complexity)]
fn fingerprint(
    outcome: &QueryOutcome,
) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>, Vec<(u64, u64)>) {
    let skyline: Vec<(TupleId, u64)> =
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect();
    let progress: Vec<(TupleId, u64)> =
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect();
    let t = &outcome.traffic;
    let classes: Vec<(u64, u64)> = [&t.upload, &t.feedback, &t.reply, &t.control, &t.maintenance]
        .iter()
        .map(|c| (c.messages, c.tuples))
        .collect();
    (skyline, progress, classes)
}

fn run(
    wire: WireFormat,
    transport: Transport,
    batch: BatchSize,
    pipeline: PipelineDepth,
    pool: usize,
    edsud: bool,
) -> QueryOutcome {
    threadpool::set_pool_size(pool);
    let (data, options) = sites(wire);
    let mut cluster = Cluster::with_transport(DIMS, data, options, Recorder::default(), transport)
        .expect("cluster builds");
    let config = QueryConfig::new(Q)
        .expect("valid threshold")
        .batch_size(batch)
        .pipeline_depth(pipeline)
        .wire_format(wire);
    let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
    threadpool::set_pool_size(0);
    outcome.expect("query runs")
}

#[test]
fn dsud_columnar_wire_is_bit_identical_across_the_execution_matrix() {
    let reference = run(
        WireFormat::Legacy,
        Transport::Inline,
        BatchSize::Fixed(1),
        PipelineDepth::Fixed(1),
        1,
        false,
    );
    assert!(!reference.skyline.is_empty(), "workload must produce a non-trivial skyline");
    let (ref_skyline, ref_progress, _) = fingerprint(&reference);
    for batch in [BatchSize::Fixed(1), BatchSize::Fixed(16), BatchSize::Auto] {
        for pipeline in [PipelineDepth::Fixed(1), PipelineDepth::Auto] {
            for (transport, pools) in [
                (Transport::Inline, &[1usize, 8][..]),
                (Transport::Threaded, &[8][..]),
                (Transport::Tcp, &[8][..]),
            ] {
                for &pool in pools {
                    let at = format!("{transport} batch {batch} pipeline {pipeline} pool {pool}");
                    let legacy = run(WireFormat::Legacy, transport, batch, pipeline, pool, false);
                    let columnar =
                        run(WireFormat::Columnar, transport, batch, pipeline, pool, false);
                    // Same configuration, both layouts: everything but the
                    // byte column must match, including per-class message
                    // and tuple counts.
                    assert_eq!(fingerprint(&columnar), fingerprint(&legacy), "{at}");
                    assert_eq!(columnar.stats, legacy.stats, "{at}");
                    // And the answer itself never drifts from the
                    // unbatched sequential reference.
                    let (skyline, progress, _) = fingerprint(&columnar);
                    assert_eq!(skyline, ref_skyline, "{at}");
                    assert_eq!(progress, ref_progress, "{at}");
                    assert_eq!(
                        columnar.tuples_transmitted(),
                        reference.tuples_transmitted(),
                        "{at}"
                    );
                }
            }
        }
    }
}

#[test]
fn edsud_columnar_wire_is_bit_identical_on_every_transport() {
    let reference =
        run(WireFormat::Legacy, Transport::Inline, BatchSize::Auto, PipelineDepth::Auto, 1, true);
    assert!(!reference.skyline.is_empty());
    for transport in [Transport::Inline, Transport::Threaded, Transport::Tcp] {
        for wire in [WireFormat::Legacy, WireFormat::Columnar] {
            let outcome = run(wire, transport, BatchSize::Auto, PipelineDepth::Auto, 8, true);
            assert_eq!(fingerprint(&outcome), fingerprint(&reference), "{wire} {transport}");
            assert_eq!(outcome.stats, reference.stats, "{wire} {transport}");
        }
    }
}

/// The whole point of the layout: wide batched feedback frames must get
/// *smaller*, not just stay correct. Measured at the paper's Table 3 site
/// scale so every frame clears the ~6-row byte break-even.
#[test]
fn columnar_wire_ships_fewer_feedback_bytes_on_wide_batches() {
    let wide = |wire: WireFormat| {
        let data = WorkloadSpec::new(N, DIMS)
            .seed(42)
            .generate_partitioned(32)
            .expect("workload generates");
        let mut cluster = Cluster::with_transport(
            DIMS,
            data,
            SiteOptions { wire, ..SiteOptions::default() },
            Recorder::default(),
            Transport::Inline,
        )
        .expect("cluster builds");
        let config = QueryConfig::new(Q)
            .expect("valid threshold")
            .batch_size(BatchSize::Fixed(16))
            .wire_format(wire);
        cluster.run_dsud(&config).expect("query runs")
    };
    let legacy = wide(WireFormat::Legacy);
    let columnar = wide(WireFormat::Columnar);
    assert_eq!(fingerprint(&columnar), fingerprint(&legacy));
    assert!(
        columnar.traffic.feedback.bytes < legacy.traffic.feedback.bytes,
        "columnar feedback bytes {} must undercut legacy {}",
        columnar.traffic.feedback.bytes,
        legacy.traffic.feedback.bytes
    );
}

/// Served sessions run the tagged (multiplexed) frame path; both layouts
/// must produce the same answers there too, including when queries with
/// different layouts interleave on one daemon.
#[test]
fn served_sessions_answer_identically_under_both_wire_layouts() {
    let one_shot = |q: f64, edsud: bool| -> QueryOutcome {
        run(
            WireFormat::Legacy,
            Transport::Inline,
            BatchSize::Fixed(4),
            PipelineDepth::Fixed(1),
            1,
            edsud,
        );
        let (data, options) = sites(WireFormat::Legacy);
        let mut cluster =
            Cluster::with_transport(DIMS, data, options, Recorder::default(), Transport::Inline)
                .expect("cluster builds");
        let config = QueryConfig::new(q).expect("valid threshold").batch_size(BatchSize::Fixed(4));
        let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
        outcome.expect("query runs")
    };

    let (data, options) = sites(WireFormat::Columnar);
    let cluster =
        Cluster::with_transport(DIMS, data, options, Recorder::default(), Transport::Threaded)
            .expect("cluster builds");
    let server = SessionServer::new(
        cluster,
        SessionOptions { max_concurrent: 4, cache_capacity: 0, ..SessionOptions::default() },
    );

    for (q, edsud) in [(0.2, false), (0.3, true), (0.4, false), (0.5, true)] {
        let expected = one_shot(q, edsud);
        for wire in [WireFormat::Legacy, WireFormat::Columnar] {
            let config = QueryConfig::new(q)
                .expect("valid threshold")
                .batch_size(BatchSize::Fixed(4))
                .wire_format(wire);
            let served = if edsud {
                server.run_edsud(&config, false)
            } else {
                server.run_dsud(&config, false)
            }
            .expect("served query runs");
            let (skyline, progress, _) = fingerprint(&served.outcome);
            let (want_skyline, want_progress, _) = fingerprint(&expected);
            assert_eq!(skyline, want_skyline, "q={q} edsud={edsud} {wire}");
            assert_eq!(progress, want_progress, "q={q} edsud={edsud} {wire}");
        }
    }
}

/// Continuous maintenance replicates `SKY(H)` over `ReplicaSync` frames
/// and repairs deletions over `RegionQuery`/`RegionReply`; the columnar
/// twins of both must maintain the identical skyline.
#[test]
fn maintenance_over_columnar_replicas_matches_legacy() {
    let maintained = |wire: WireFormat| -> Vec<(TupleId, u64)> {
        let data = WorkloadSpec::new(600, DIMS)
            .seed(7)
            .generate_partitioned(4)
            .expect("workload generates");
        let mut cluster = Cluster::with_transport(
            DIMS,
            data,
            SiteOptions { wire, ..SiteOptions::default() },
            Recorder::default(),
            Transport::Inline,
        )
        .expect("cluster builds");
        let meter = BandwidthMeter::default();
        let mask = dsud_uncertain::SubspaceMask::full(DIMS).unwrap();
        let (maintainer, outcome) = Maintainer::bootstrap(
            cluster.links_mut(),
            &meter,
            Q,
            mask,
            dsud_core::BoundMode::Paper,
        )
        .expect("bootstrap runs");
        let mut maintainer = maintainer.wire_format(wire);
        // Delete a current member (forces a region re-evaluation) and
        // insert a strong new tuple (forces a membership check).
        let victim = outcome.skyline[0].tuple.clone();
        let newcomer = UncertainTuple::new(
            TupleId::new(1, 50_000),
            vec![0.01; DIMS],
            Probability::new(0.9).unwrap(),
        )
        .unwrap();
        let ops = [UpdateOp::Delete(victim), UpdateOp::Insert(newcomer)];
        let skyline = apply_batch(&mut maintainer, cluster.links_mut(), &meter, &ops, true)
            .expect("maintenance runs");
        skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect()
    };
    let legacy = maintained(WireFormat::Legacy);
    let columnar = maintained(WireFormat::Columnar);
    assert!(!legacy.is_empty());
    assert_eq!(columnar, legacy);
}
