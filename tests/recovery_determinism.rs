//! The recovery contract behind the chaos harness: a site that fails under
//! a seeded [`FaultPlan`], gets quarantined by heartbeats, reconnects,
//! resyncs the updates it missed, and rejoins must leave the deployment
//! answering queries **bit-identically** to one that never failed —
//! skyline ids, probability bits, and progress order.
//!
//! The fault schedule is a pure function of `(seed, site)` keyed on
//! per-link attempt ordinals, never the wall clock, so the same seed
//! replays the same quarantine/rejoin transcript on every transport
//! (inline, threaded, TCP), every wire format (`DSUD_WIRE`), and every
//! pool size (`DSUD_THREADS`) — which is exactly what lets this test
//! assert equality instead of mere plausibility.

use dsud_core::update::UpdateOp;
use dsud_core::{
    Cluster, FailurePolicy, FaultKind, FaultPlan, LinkConfig, QueryConfig, QueryOutcome, Recorder,
    SessionOptions, SessionServer, SiteState, Transport, UncertainTuple, WireFormat,
};
use dsud_data::WorkloadSpec;
use dsud_uncertain::{Probability, TupleId};

const N: usize = 800;
const DIMS: usize = 3;
const SITES: usize = 5;

/// Wire layout under test: `DSUD_WIRE=columnar|legacy` (legacy default),
/// same convention as the other determinism suites.
fn wire_from_env() -> WireFormat {
    std::env::var("DSUD_WIRE").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
}

fn sites() -> Vec<Vec<UncertainTuple>> {
    WorkloadSpec::new(N, DIMS).seed(29).generate_partitioned(SITES).expect("workload generates")
}

/// What recovery must restore exactly: the skyline (ids, bit-exact
/// probabilities, report order) and the progress sequence. Traffic is
/// excluded on purpose — the faulted run legitimately resent frames.
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>) {
    (
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect(),
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect(),
    )
}

/// Picks the first seed whose derived plans can defeat the default retry
/// budget: some site gets a hard-fault window (timeout / disconnect /
/// malformed) at least `retry_budget + 1` attempts long, so a heartbeat
/// probe walking the ordinals one by one is guaranteed to burn its whole
/// budget inside the window and quarantine the site. Pure function of the
/// scan range — every matrix combination picks the same seed.
fn quarantining_seed() -> u64 {
    let attempts = u64::from(LinkConfig::default().retry_budget) + 1;
    (1..256)
        .find(|&seed| {
            (0..SITES as u32).any(|site| {
                FaultPlan::seeded(seed, site)
                    .windows()
                    .iter()
                    .any(|w| w.len >= attempts && !matches!(w.kind, FaultKind::Slow(_)))
            })
        })
        .expect("some seed in 1..256 produces a long hard-fault window")
}

/// Sweeps needed to walk every link's attempt ordinal past its last fault
/// window: each heartbeat advances every site by at least one attempt.
fn sweeps_to_drain(seed: u64) -> u64 {
    let last_end = (0..SITES as u32)
        .flat_map(|site| FaultPlan::seeded(seed, site).windows().to_vec())
        .map(|w| w.start + w.len)
        .max()
        .unwrap_or(0);
    last_end + 8
}

fn query_mix() -> Vec<(QueryConfig, bool)> {
    [0.25, 0.3, 0.35, 0.4]
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            let cfg = QueryConfig::new(q)
                .expect("valid threshold")
                .failure_policy(FailurePolicy::Degrade)
                .wire_format(wire_from_env());
            (cfg, i % 2 == 0)
        })
        .collect()
}

fn serve(server: &SessionServer, cfg: &QueryConfig, edsud: bool) -> QueryOutcome {
    let answer = if edsud { server.run_edsud(cfg, false) } else { server.run_dsud(cfg, false) }
        .expect("session query completes");
    answer.outcome
}

/// A dominating, high-probability spike homed at `site` — it must appear
/// in every post-insert skyline, which is how the test proves a deferred
/// update really reached the rejoining site.
fn spike(site: u32, seq: u64) -> UncertainTuple {
    UncertainTuple::new(
        TupleId::new(site, 1_000_000 + seq),
        vec![1e-4; DIMS],
        Probability::new(0.99).expect("valid probability"),
    )
    .expect("spike builds")
}

/// The full lifecycle on one transport: quarantine → deferred updates →
/// reconnect + resync → rejoin → bit-identical answers.
fn recovery_is_bit_identical_on(transport: Transport) {
    let seed = quarantining_seed();

    // Reference: the same data and updates with no faults, ever.
    let reference = SessionServer::new(
        Cluster::local(DIMS, sites()).expect("cluster builds"),
        SessionOptions::default(),
    );

    let chaos_cluster = Cluster::with_transport_chaos(
        DIMS,
        sites(),
        Default::default(),
        Recorder::default(),
        transport,
        LinkConfig::default(),
        seed,
    )
    .expect("chaos cluster builds");
    // Manual heartbeats (heartbeat_every: 0) keep the probe schedule in
    // the test's hands; hair-trigger thresholds make one failed probe a
    // quarantine and one clean probe a rejoin.
    let server = SessionServer::new(
        chaos_cluster,
        SessionOptions { miss_threshold: 1, probation_probes: 1, ..SessionOptions::default() },
    );

    // --- Phase 1: heartbeat until the seeded faults quarantine a site ----
    let mut quarantined: Vec<u32> = Vec::new();
    for _ in 0..sweeps_to_drain(seed) {
        let summary = server.heartbeat();
        quarantined.extend(summary.quarantined.iter().copied());
        if !quarantined.is_empty() {
            break;
        }
    }
    assert!(
        !quarantined.is_empty(),
        "{transport}: seed {seed} must quarantine at least one site \
         (the seed scan guarantees a window longer than the retry budget)"
    );
    let victim = quarantined[0];
    assert!(
        matches!(server.site_states()[victim as usize], SiteState::Quarantined { .. }),
        "{transport}: site {victim} must report Quarantined"
    );

    // --- Phase 2: updates while the victim is down --------------------
    // One homed at the quarantined site (must be deferred and replayed at
    // rejoin) and one at a healthy site (applies immediately). The
    // reference applies both right away.
    let deferred_spike = spike(victim, 0);
    let live_home = (0..SITES as u32).find(|s| *s != victim).expect("more than one site");
    let live_spike = spike(live_home, 1);
    for op in [UpdateOp::Insert(deferred_spike.clone()), UpdateOp::Insert(live_spike.clone())] {
        reference.apply_update(&op).expect("reference update applies");
        server.apply_update(&op).expect("chaos-server update is accepted");
    }

    // A query served during the quarantine may not see the deferred update
    // — the session layer must say so.
    let (cfg, edsud) = &query_mix()[0];
    let mid_outage = serve(&server, cfg, *edsud);
    assert!(
        mid_outage.degraded,
        "{transport}: an answer produced during session quarantine must be stamped degraded"
    );

    // --- Phase 3: heal — drain every fault window, rejoin everything ----
    // No early exit: a site that never got quarantined may still have an
    // undrained window ahead, and a phase-4 query must not walk into it.
    // Every sweep advances every link's ordinal by at least one, so this
    // bound provably walks past the last scheduled fault.
    for _ in 0..sweeps_to_drain(seed) {
        server.heartbeat();
    }
    assert!(
        server.site_states().iter().all(|s| matches!(s, SiteState::Active)),
        "{transport}: every site must be Active after the fault windows drain, got {:?}",
        server.site_states()
    );
    let stats = server.stats();
    assert!(stats.quarantines >= 1, "{transport}: lifecycle must record the quarantine");
    assert!(stats.rejoins >= 1, "{transport}: the victim must rejoin");
    assert!(
        stats.resync_ops >= 1,
        "{transport}: the update deferred for site {victim} must be replayed at rejoin"
    );
    assert!(stats.heartbeat_misses >= 1, "{transport}: the probes that failed are counted");

    // --- Phase 4: recovered answers are bit-identical to never-failed ---
    for (i, (cfg, edsud)) in query_mix().iter().enumerate() {
        let want = serve(&reference, cfg, *edsud);
        let got = serve(&server, cfg, *edsud);
        assert!(!got.degraded, "{transport} query {i}: recovered answers are exact, not degraded");
        assert!(!got.cancelled, "{transport} query {i}: no deadline was set");
        assert_eq!(
            fingerprint(&got),
            fingerprint(&want),
            "{transport} query {i}: post-recovery answer diverged from the never-failed run"
        );
        assert!(
            got.skyline.iter().any(|e| e.tuple.id() == deferred_spike.id()),
            "{transport} query {i}: the update deferred during the outage must be in the answer"
        );
        assert!(
            got.skyline.iter().any(|e| e.tuple.id() == live_spike.id()),
            "{transport} query {i}: the live update must be in the answer"
        );
    }
}

#[test]
fn recovery_is_bit_identical_inline() {
    recovery_is_bit_identical_on(Transport::Inline);
}

#[test]
fn recovery_is_bit_identical_threaded() {
    recovery_is_bit_identical_on(Transport::Threaded);
}

#[test]
fn recovery_is_bit_identical_tcp() {
    recovery_is_bit_identical_on(Transport::Tcp);
}

/// A deadline of zero cancels at the first round boundary: the outcome is
/// stamped, counted, and never cached — and the same query without a
/// deadline still computes the full exact answer afterwards.
#[test]
fn deadline_cancels_cleanly_and_is_never_cached() {
    let server = SessionServer::new(
        Cluster::local(DIMS, sites()).expect("cluster builds"),
        SessionOptions::default(),
    );
    let base = QueryConfig::new(0.3).expect("valid threshold").wire_format(wire_from_env());

    let cancelled = server.run_edsud(&base.clone().deadline(0), false).expect("query completes");
    assert!(cancelled.outcome.cancelled, "a zero deadline cancels at the first round boundary");
    assert_eq!(server.stats().cancelled, 1);

    // The partial answer must not have been cached: the same key without a
    // deadline recomputes and yields the full exact answer.
    let full = server.run_edsud(&base, false).expect("query completes");
    assert!(!full.cache_hit, "a cancelled outcome must never enter the cache");
    assert!(!full.outcome.cancelled);
    let reference =
        Cluster::local(DIMS, sites()).expect("cluster builds").run_edsud(&base).expect("runs");
    assert_eq!(fingerprint(&full.outcome), fingerprint(&reference));
}

/// The op log is bounded: quarantine a site, push more updates than the
/// log retains, and the rejoin falls back to the bootstrap path. Deferred
/// ops evicted from the log are gone — they were never injected into any
/// tree, and no bootstrap can resurrect them (this is exactly why
/// OPERATIONS.md says to size `op_log_capacity` above the worst outage's
/// update volume). What the lifecycle *does* guarantee: the retained tail
/// replays, every site rejoins, and answers match a reference that saw
/// the same surviving updates.
#[test]
fn truncated_op_log_rejoin_still_converges() {
    let seed = quarantining_seed();
    let reference = SessionServer::new(
        Cluster::local(DIMS, sites()).expect("cluster builds"),
        SessionOptions::default(),
    );
    let chaos_cluster = Cluster::with_transport_chaos(
        DIMS,
        sites(),
        Default::default(),
        Recorder::default(),
        Transport::Inline,
        LinkConfig::default(),
        seed,
    )
    .expect("chaos cluster builds");
    let server = SessionServer::new(
        chaos_cluster,
        SessionOptions {
            miss_threshold: 1,
            probation_probes: 1,
            // Small enough that the outage's updates overflow it.
            op_log_capacity: 2,
            ..SessionOptions::default()
        },
    );

    let mut quarantined: Vec<u32> = Vec::new();
    for _ in 0..sweeps_to_drain(seed) {
        quarantined.extend(server.heartbeat().quarantined.iter().copied());
        if !quarantined.is_empty() {
            break;
        }
    }
    let victim = *quarantined.first().expect("the seeded plan quarantines a site");

    // Four spikes homed at the victim, all deferred: capacity 2 retains
    // only the last two, so the replay is provably incomplete and the
    // rejoin must take the bootstrap path. The reference applies only the
    // two updates that survive the truncation.
    for seq in 0..4u64 {
        let op = UpdateOp::Insert(spike(victim, seq));
        if seq >= 2 {
            reference.apply_update(&op).expect("reference update applies");
        }
        server.apply_update(&op).expect("chaos-server update is accepted");
    }

    for _ in 0..sweeps_to_drain(seed) {
        server.heartbeat();
    }
    assert!(
        server.site_states().iter().all(|s| matches!(s, SiteState::Active)),
        "all sites must rejoin, got {:?}",
        server.site_states()
    );
    assert!(server.stats().resync_ops >= 2, "the retained tail must replay");

    let (cfg, edsud) = &query_mix()[1];
    let want = serve(&reference, cfg, *edsud);
    let got = serve(&server, cfg, *edsud);
    assert!(!got.degraded);
    assert_eq!(
        fingerprint(&got),
        fingerprint(&want),
        "post-bootstrap answers must match a run that saw the surviving updates"
    );
    for seq in 2..4u64 {
        assert!(
            got.skyline.iter().any(|e| e.tuple.id() == spike(victim, seq).id()),
            "retained spike {seq} must be replayed at rejoin"
        );
    }
    for seq in 0..2u64 {
        assert!(
            !got.skyline.iter().any(|e| e.tuple.id() == spike(victim, seq).id()),
            "evicted spike {seq} is lost — the documented truncation semantics"
        );
    }
}

/// Seed + victim whose plan is exactly one hard window at least as long
/// as the full attempt budget (initial try + retries). Heartbeats advance
/// a healthy link's ordinal one attempt per sweep, so the test can walk
/// the victim to the window's edge and guarantee the *next* call burns
/// its whole retry budget inside it.
fn inject_defeating_seed() -> (u64, u32, u64) {
    let attempts = u64::from(LinkConfig::default().retry_budget) + 1;
    for seed in 1..4096u64 {
        for site in 0..SITES as u32 {
            let windows = FaultPlan::seeded(seed, site).windows().to_vec();
            if windows.len() == 1
                && windows[0].len >= attempts
                && !matches!(windows[0].kind, FaultKind::Slow(_))
            {
                return (seed, site, windows[0].start);
            }
        }
    }
    panic!("no seed in 1..4096 derives a single hard window longer than the retry budget");
}

/// An update whose inject defeats the whole retry budget on a
/// still-Active home site must not strand the op: `apply_update` reports
/// a deferral (not an error), quarantines the site stamped one epoch
/// *before* the op, and the rejoin resync re-delivers exactly that op —
/// so post-recovery answers are bit-identical to a reference that applied
/// it directly. An error return would leave the op in the log below any
/// later quarantine stamp, silently excluded from every replay.
#[test]
fn failed_inject_defers_quarantines_and_replays_at_rejoin() {
    let (seed, victim, window_start) = inject_defeating_seed();

    let reference = SessionServer::new(
        Cluster::local(DIMS, sites()).expect("cluster builds"),
        SessionOptions::default(),
    );
    let chaos_cluster = Cluster::with_transport_chaos(
        DIMS,
        sites(),
        Default::default(),
        Recorder::default(),
        Transport::Inline,
        LinkConfig::default(),
        seed,
    )
    .expect("chaos cluster builds");
    let server = SessionServer::new(
        chaos_cluster,
        SessionOptions { miss_threshold: 1, probation_probes: 1, ..SessionOptions::default() },
    );

    // Walk the victim's attempt ordinal to the window's edge: every
    // pre-window probe succeeds and advances the link by exactly one
    // attempt, so the inject below starts at `window_start` and fails
    // every attempt of its budget.
    for _ in 1..window_start {
        server.heartbeat();
    }
    assert!(
        matches!(server.site_states()[victim as usize], SiteState::Active),
        "victim must still be Active at the window's edge (its only window lies ahead)"
    );

    let stranded = spike(victim, 7);
    let op = UpdateOp::Insert(stranded.clone());
    reference.apply_update(&op).expect("reference update applies");
    server.apply_update(&op).expect("a failed inject must defer the op, not error");
    assert!(
        matches!(server.site_states()[victim as usize], SiteState::Quarantined { .. }),
        "the failed inject must quarantine the home site on the spot"
    );
    let stats = server.stats();
    assert_eq!(stats.updates_applied, 0, "the op was deferred, never counted as applied");
    assert!(stats.quarantines >= 1, "the inject-failure quarantine must be counted");

    // Heal: drain the fault window, rejoin, and replay the stranded op.
    for _ in 0..sweeps_to_drain(seed) {
        server.heartbeat();
    }
    assert!(
        server.site_states().iter().all(|s| matches!(s, SiteState::Active)),
        "every site must rejoin after the window drains, got {:?}",
        server.site_states()
    );
    assert!(
        server.stats().resync_ops >= 1,
        "the op whose inject failed must be replayed at rejoin \
         (the quarantine is stamped one epoch before it)"
    );

    for (i, (cfg, edsud)) in query_mix().iter().enumerate() {
        let want = serve(&reference, cfg, *edsud);
        let got = serve(&server, cfg, *edsud);
        assert!(!got.degraded, "query {i}: recovered answers are exact");
        assert_eq!(
            fingerprint(&got),
            fingerprint(&want),
            "query {i}: post-recovery answer diverged from a run that applied the op directly"
        );
        assert!(
            got.skyline.iter().any(|e| e.tuple.id() == stranded.id()),
            "query {i}: the op stranded by the failed inject must be in the answer"
        );
    }
}

/// Candidate `(seed, victim)` pairs for the cache-hit deadlock scenario:
/// the victim has a single hard window that defeats the retry budget,
/// starting at least `min_start` attempts in (so a small cached query can
/// complete underneath it), and every other site's windows are survivable
/// (short enough for retries, or merely slow), so the cached query is not
/// degraded by a bystander.
fn cache_hit_scenario_seeds(min_start: u64, want: usize) -> Vec<(u64, u32)> {
    let budget = u64::from(LinkConfig::default().retry_budget);
    let survivable =
        |w: &dsud_core::FaultWindow| w.len <= budget || matches!(w.kind, FaultKind::Slow(_));
    let mut out = Vec::new();
    for seed in 1..65536u64 {
        for victim in 0..SITES as u32 {
            let windows = FaultPlan::seeded(seed, victim).windows().to_vec();
            let victim_ok = windows.len() == 1
                && windows[0].len > budget
                && windows[0].start >= min_start
                && !matches!(windows[0].kind, FaultKind::Slow(_));
            let others_ok = (0..SITES as u32)
                .filter(|s| *s != victim)
                .all(|s| FaultPlan::seeded(seed, s).windows().iter().all(survivable));
            if victim_ok && others_ok {
                out.push((seed, victim));
                if out.len() == want {
                    return out;
                }
            }
        }
    }
    out
}

/// One run of the cache-hit recovery scenario; `true` when the seed
/// played out: a clean query was cached, heartbeat sweeps triggered by
/// *cache-hit* serves quarantined the victim and later moved it to
/// probation (the resync path), and the cluster walked back to Active.
fn cache_hit_recovery_scenario(seed: u64, victim: u32) -> bool {
    let chaos_cluster = Cluster::with_transport_chaos(
        DIMS,
        sites(),
        Default::default(),
        Recorder::default(),
        Transport::Inline,
        LinkConfig::default(),
        seed,
    )
    .expect("chaos cluster builds");
    // heartbeat_every: 1 is the chaos soak's configuration — every served
    // query, cache hits included, runs a full sweep.
    let server = SessionServer::new(
        chaos_cluster,
        SessionOptions {
            heartbeat_every: 1,
            miss_threshold: 1,
            probation_probes: 1,
            ..SessionOptions::default()
        },
    );
    // A progressive top-k query keeps the per-link call count small, so
    // it finishes (and is cached) before the victim's fault window opens.
    let cfg = QueryConfig::new(0.3)
        .expect("valid threshold")
        .limit(3)
        .failure_policy(FailurePolicy::Degrade)
        .wire_format(wire_from_env());
    let first = server.run_dsud(&cfg, false).expect("first query completes");
    if first.outcome.degraded {
        // The query walked into a window after all: not cacheable, the
        // scenario cannot start — try the next candidate seed.
        return false;
    }

    // Every serve from here hits the cache (nothing invalidates it until
    // the resync itself), so each one's heartbeat sweep runs off the
    // cache-hit path — the exact path that used to hold the cache lock
    // through probe/resync and self-deadlock on the resync's cache clear.
    let mut probation_under_cache_hit = false;
    for _ in 0..sweeps_to_drain(seed) + 8 {
        let before = server.site_states();
        let out = server.run_dsud(&cfg, false).expect("serve completes");
        let after = server.site_states();
        let probation_began = matches!(before[victim as usize], SiteState::Quarantined { .. })
            && !matches!(after[victim as usize], SiteState::Quarantined { .. });
        if out.cache_hit && probation_began {
            probation_under_cache_hit = true;
        }
        if probation_under_cache_hit && after.iter().all(|s| matches!(s, SiteState::Active)) {
            assert!(server.stats().rejoins >= 1, "seed {seed}: the victim must rejoin");
            assert!(server.stats().cache_hits >= 1, "seed {seed}: the driver serves from cache");
            return true;
        }
    }
    false
}

/// REVIEW regression: a heartbeat sweep scheduled by a *cache-hit* serve
/// must be able to resync a recovering site. The cache-hit path used to
/// hold the result-cache lock through `note_served()`, so the resync's
/// own cache invalidation re-locked the same mutex on the same thread
/// and hung the daemon. With the guard dropped before the sweep, the
/// full quarantine → probation(resync) → rejoin cycle completes while
/// every driving query is served from cache.
#[test]
fn cache_hit_heartbeat_resync_does_not_deadlock() {
    let candidates = cache_hit_scenario_seeds(12, 12);
    assert!(!candidates.is_empty(), "the seed scan must yield candidate fault plans");
    for (seed, victim) in &candidates {
        if cache_hit_recovery_scenario(*seed, *victim) {
            return;
        }
    }
    panic!(
        "no candidate seed completed the cache-hit recovery scenario \
         (candidates tried: {candidates:?})"
    );
}
