//! The sequential-fallback contract of the compute layer: a query's
//! observable outcome — skyline contents and order, exact probabilities
//! (to the bit), traffic accounting, and coordinator stats — must be
//! identical for every thread-pool size, and for every transport.
//!
//! Workload shape follows the paper's Table 3 defaults (d = 3, q = 0.3,
//! anticorrelated-ish uniform data over m sites), scaled down for CI.

use dsud_core::{Cluster, QueryConfig, QueryOutcome, Recorder, SiteOptions, Transport};
use dsud_data::WorkloadSpec;
use dsud_uncertain::TupleId;

const N: usize = 4_000;
const DIMS: usize = 3;
const SITES: usize = 8;
const Q: f64 = 0.3;

fn sites() -> Vec<Vec<dsud_uncertain::UncertainTuple>> {
    WorkloadSpec::new(N, DIMS).seed(42).generate_partitioned(SITES).expect("workload generates")
}

/// Everything observable about an outcome except wall-clock timings.
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64, u64)>, u64) {
    let skyline: Vec<(TupleId, u64)> =
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect();
    let progress: Vec<(TupleId, u64, u64)> = outcome
        .progress
        .events()
        .iter()
        .map(|e| (e.id, e.probability.to_bits(), e.tuples_transmitted))
        .collect();
    (skyline, progress, outcome.tuples_transmitted())
}

fn run_at_pool(pool: usize, transport: Transport, edsud: bool) -> QueryOutcome {
    threadpool::set_pool_size(pool);
    let mut cluster = Cluster::with_transport(
        DIMS,
        sites(),
        SiteOptions::default(),
        Recorder::default(),
        transport,
    )
    .expect("cluster builds");
    let config = QueryConfig::new(Q).expect("valid threshold");
    let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
    threadpool::set_pool_size(0);
    outcome.expect("query runs")
}

#[test]
fn dsud_outcome_is_pool_size_invariant() {
    let reference = run_at_pool(1, Transport::Inline, false);
    assert!(!reference.skyline.is_empty(), "workload must produce a non-trivial skyline");
    for pool in [2usize, 8] {
        let outcome = run_at_pool(pool, Transport::Inline, false);
        assert_eq!(fingerprint(&outcome), fingerprint(&reference), "pool {pool}");
        assert_eq!(outcome.traffic, reference.traffic, "pool {pool}");
        assert_eq!(outcome.stats, reference.stats, "pool {pool}");
    }
}

#[test]
fn edsud_outcome_is_pool_size_invariant() {
    let reference = run_at_pool(1, Transport::Inline, true);
    assert!(!reference.skyline.is_empty());
    for pool in [2usize, 8] {
        let outcome = run_at_pool(pool, Transport::Inline, true);
        assert_eq!(fingerprint(&outcome), fingerprint(&reference), "pool {pool}");
        assert_eq!(outcome.traffic, reference.traffic, "pool {pool}");
        assert_eq!(outcome.stats, reference.stats, "pool {pool}");
    }
}

#[test]
fn transports_agree_on_every_observable() {
    let inline = run_at_pool(4, Transport::Inline, false);
    for transport in [Transport::Threaded, Transport::Tcp] {
        let other = run_at_pool(4, transport, false);
        assert_eq!(fingerprint(&other), fingerprint(&inline), "{transport}");
        assert_eq!(other.traffic, inline.traffic, "{transport}");
        assert_eq!(other.stats, inline.stats, "{transport}");
    }
}

#[test]
fn transport_parses_and_displays_round_trip() {
    for (name, expected) in
        [("inline", Transport::Inline), ("threaded", Transport::Threaded), ("tcp", Transport::Tcp)]
    {
        let parsed: Transport = name.parse().expect("known transport");
        assert_eq!(parsed, expected);
        assert_eq!(parsed.to_string(), name);
    }
    assert!("carrier-pigeon".parse::<Transport>().is_err());
}
