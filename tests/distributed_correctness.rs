//! The central correctness property: every distributed algorithm must
//! return exactly the tuples the centralized Definition-1 computation
//! returns, with exactly the same global skyline probabilities — across
//! data distributions, dimensionalities, thresholds, site counts, bound
//! modes, transports, and ablations.

use dsud_core::{baseline, BandwidthMeter, BoundMode, Cluster, QueryConfig, SiteOptions};
use dsud_core::{probabilistic_skyline, SubspaceMask, TupleId, UncertainDb, UncertainTuple};
use dsud_data::{ProbabilityLaw, SpatialDistribution, WorkloadSpec};

/// Centralized ground truth over the union of all sites.
fn reference(
    sites: &[Vec<UncertainTuple>],
    dims: usize,
    q: f64,
    mask: SubspaceMask,
) -> Vec<(TupleId, f64)> {
    let union = UncertainDb::from_tuples(dims, sites.iter().flatten().cloned().collect::<Vec<_>>())
        .unwrap();
    let mut out: Vec<(TupleId, f64)> = probabilistic_skyline(&union, q, mask)
        .unwrap()
        .into_iter()
        .map(|e| (e.tuple.id(), e.probability))
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

fn sorted_results(outcome: &dsud_core::QueryOutcome) -> Vec<(TupleId, f64)> {
    let mut out: Vec<(TupleId, f64)> =
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability)).collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

fn assert_same(got: &[(TupleId, f64)], expected: &[(TupleId, f64)], label: &str) {
    assert_eq!(
        got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        expected.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        "{label}: answer sets differ"
    );
    for ((_, p), (_, e)) in got.iter().zip(expected) {
        assert!((p - e).abs() < 1e-9, "{label}: probability {p} vs {e}");
    }
}

fn check_all(sites: Vec<Vec<UncertainTuple>>, dims: usize, q: f64, label: &str) {
    let mask = SubspaceMask::full(dims).unwrap();
    let expected = reference(&sites, dims, q, mask);
    let config = QueryConfig::new(q).unwrap();

    let mut dsud_cluster = Cluster::local(dims, sites.clone()).unwrap();
    let dsud = dsud_cluster.run_dsud(&config).unwrap();
    assert_same(&sorted_results(&dsud), &expected, &format!("{label}/DSUD"));

    let mut edsud_cluster = Cluster::local(dims, sites.clone()).unwrap();
    let edsud = edsud_cluster.run_edsud(&config).unwrap();
    assert_same(&sorted_results(&edsud), &expected, &format!("{label}/e-DSUD"));

    let meter = BandwidthMeter::new();
    let base = baseline::run(&sites, dims, q, mask, &meter).unwrap();
    assert_same(&sorted_results(&base), &expected, &format!("{label}/baseline"));
}

#[test]
fn independent_data_across_thresholds() {
    for q in [0.1, 0.3, 0.5, 0.9] {
        let sites = WorkloadSpec::new(1_200, 2).seed(11).generate_partitioned(6).unwrap();
        check_all(sites, 2, q, &format!("indep q={q}"));
    }
}

#[test]
fn anticorrelated_data_across_dimensionalities() {
    for dims in [2, 3, 4] {
        let sites = WorkloadSpec::new(900, dims)
            .spatial(SpatialDistribution::Anticorrelated)
            .seed(dims as u64)
            .generate_partitioned(5)
            .unwrap();
        check_all(sites, dims, 0.3, &format!("anticorr d={dims}"));
    }
}

#[test]
fn correlated_data() {
    let sites = WorkloadSpec::new(1_000, 3)
        .spatial(SpatialDistribution::Correlated)
        .seed(5)
        .generate_partitioned(4)
        .unwrap();
    check_all(sites, 3, 0.3, "correlated");
}

#[test]
fn gaussian_probabilities() {
    for mean in [0.3, 0.5, 0.8] {
        let sites = WorkloadSpec::new(800, 2)
            .probability_law(ProbabilityLaw::Gaussian { mean, std_dev: 0.2 })
            .seed(17)
            .generate_partitioned(8)
            .unwrap();
        check_all(sites, 2, 0.3, &format!("gaussian μ={mean}"));
    }
}

#[test]
fn many_small_sites() {
    // More sites than interesting tuples: exercises exhausted-site paths.
    let sites = WorkloadSpec::new(300, 2).seed(23).generate_partitioned(50).unwrap();
    check_all(sites, 2, 0.3, "m=50");
}

#[test]
fn single_site_degenerates_to_centralized() {
    let sites = WorkloadSpec::new(500, 3).seed(31).generate_partitioned(1).unwrap();
    check_all(sites, 3, 0.3, "m=1");
}

#[test]
fn high_threshold_can_return_empty() {
    let sites = WorkloadSpec::new(400, 2).seed(41).generate_partitioned(4).unwrap();
    let mask = SubspaceMask::full(2).unwrap();
    let expected = reference(&sites, 2, 0.999, mask);
    let mut cluster = Cluster::local(2, sites).unwrap();
    let outcome = cluster.run_edsud(&QueryConfig::new(0.999).unwrap()).unwrap();
    assert_same(&sorted_results(&outcome), &expected, "q=0.999");
}

#[test]
fn broadcast_only_mode_is_correct() {
    let sites = WorkloadSpec::new(1_000, 3)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(7)
        .generate_partitioned(6)
        .unwrap();
    let mask = SubspaceMask::full(3).unwrap();
    let expected = reference(&sites, 3, 0.3, mask);
    let mut cluster = Cluster::local(3, sites).unwrap();
    let config = QueryConfig::new(0.3).unwrap().bound_mode(BoundMode::BroadcastOnly);
    let outcome = cluster.run_edsud(&config).unwrap();
    assert_same(&sorted_results(&outcome), &expected, "BroadcastOnly");
}

#[test]
fn pruning_disabled_is_correct() {
    let sites = WorkloadSpec::new(800, 2).seed(13).generate_partitioned(5).unwrap();
    let mask = SubspaceMask::full(2).unwrap();
    let expected = reference(&sites, 2, 0.3, mask);
    let mut cluster = Cluster::local_with_options(
        2,
        sites,
        SiteOptions { pruning: false, ..SiteOptions::default() },
    )
    .unwrap();
    let outcome = cluster.run_dsud(&QueryConfig::new(0.3).unwrap()).unwrap();
    assert_same(&sorted_results(&outcome), &expected, "pruning off");
}

#[test]
fn threaded_transport_is_equivalent() {
    let sites = WorkloadSpec::new(1_000, 3).seed(3).generate_partitioned(8).unwrap();
    let config = QueryConfig::new(0.3).unwrap();
    let mut local = Cluster::local(3, sites.clone()).unwrap();
    let a = local.run_edsud(&config).unwrap();
    let mut threaded = Cluster::threaded(3, sites).unwrap();
    let b = threaded.run_edsud(&config).unwrap();
    assert_eq!(sorted_results(&a), sorted_results(&b));
    assert_eq!(a.tuples_transmitted(), b.tuples_transmitted());
}

#[test]
fn nyse_workload_is_correct() {
    use dsud_data::nyse::NyseSpec;
    let sites = NyseSpec::new(2_000).seed(9).generate_partitioned(10).unwrap();
    check_all(sites, 2, 0.3, "nyse");
}

#[test]
fn tcp_transport_is_equivalent() {
    let sites = WorkloadSpec::new(800, 2).seed(55).generate_partitioned(6).unwrap();
    let config = QueryConfig::new(0.3).unwrap();
    let mut local = Cluster::local(2, sites.clone()).unwrap();
    let a = local.run_edsud(&config).unwrap();
    let mut over_tcp = Cluster::tcp(2, sites).unwrap();
    let b = over_tcp.run_edsud(&config).unwrap();
    assert_eq!(sorted_results(&a), sorted_results(&b));
    assert_eq!(a.tuples_transmitted(), b.tuples_transmitted());
    assert_eq!(a.traffic.total().bytes, b.traffic.total().bytes);
}

#[test]
fn clustered_data_is_correct() {
    let sites = WorkloadSpec::new(1_000, 3)
        .spatial(SpatialDistribution::Clustered)
        .seed(61)
        .generate_partitioned(5)
        .unwrap();
    check_all(sites, 3, 0.3, "clustered");
}

#[test]
fn synopsis_assisted_edsud_is_correct() {
    let sites = WorkloadSpec::new(1_500, 3)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(71)
        .generate_partitioned(8)
        .unwrap();
    let mask = SubspaceMask::full(3).unwrap();
    let expected = reference(&sites, 3, 0.3, mask);

    for resolution in [4u16, 8, 16] {
        let mut cluster = Cluster::local(3, sites.clone()).unwrap();
        let config = QueryConfig::new(0.3).unwrap().synopsis(resolution);
        let outcome = cluster.run_edsud(&config).unwrap();
        assert_same(&sorted_results(&outcome), &expected, &format!("synopsis r={resolution}"));
        // The synopsis transfer must have been charged.
        assert!(outcome.traffic.upload.tuples > 0);
    }
}

#[test]
fn synopsis_changes_bandwidth_but_never_answers() {
    let sites = WorkloadSpec::new(2_000, 2).seed(72).generate_partitioned(10).unwrap();
    let plain_cfg = QueryConfig::new(0.3).unwrap();
    let mut plain_cluster = Cluster::local(2, sites.clone()).unwrap();
    let plain = plain_cluster.run_edsud(&plain_cfg).unwrap();
    let mut syn_cluster = Cluster::local(2, sites).unwrap();
    let syn = syn_cluster.run_edsud(&plain_cfg.synopsis(8)).unwrap();
    assert_eq!(sorted_results(&plain), sorted_results(&syn));
    // The synopsis tightens bounds: never more broadcasts than without.
    assert!(syn.stats.broadcasts <= plain.stats.broadcasts);
}

#[test]
fn sites_with_single_tuples() {
    // Extreme fragmentation: every site holds exactly one tuple.
    let sites = WorkloadSpec::new(40, 2).seed(81).generate_partitioned(40).unwrap();
    check_all(sites, 2, 0.3, "one tuple per site");
}

#[test]
fn duplicate_values_across_sites() {
    // Identical value vectors at different sites must not dominate each
    // other (dominance is strict), and probabilities must combine exactly.
    use dsud_core::{Probability, TupleId, UncertainTuple};
    let mk = |site: u32, seq: u64, v: [f64; 2], p: f64| {
        UncertainTuple::new(TupleId::new(site, seq), v.to_vec(), Probability::new(p).unwrap())
            .unwrap()
    };
    let sites = vec![
        vec![mk(0, 0, [1.0, 1.0], 0.6), mk(0, 1, [2.0, 2.0], 0.9)],
        vec![mk(1, 0, [1.0, 1.0], 0.7), mk(1, 1, [3.0, 3.0], 0.9)],
        vec![mk(2, 0, [1.0, 1.0], 0.5)],
    ];
    check_all(sites, 2, 0.3, "duplicate values");
}

#[test]
fn probability_one_tuples_zero_out_dominated_space() {
    use dsud_core::{Probability, TupleId, UncertainTuple};
    let mk = |site: u32, seq: u64, v: [f64; 2], p: f64| {
        UncertainTuple::new(TupleId::new(site, seq), v.to_vec(), Probability::new(p).unwrap())
            .unwrap()
    };
    // A certain tuple near the origin: everything it dominates has global
    // probability zero; the certain tuple itself always qualifies.
    let sites = vec![
        vec![mk(0, 0, [0.1, 0.1], 1.0), mk(0, 1, [0.5, 0.5], 0.9)],
        vec![mk(1, 0, [0.2, 0.9], 0.9), mk(1, 1, [0.05, 0.5], 0.8)],
    ];
    check_all(sites, 2, 0.3, "certain dominator");
}

#[test]
fn limit_composes_with_expunges() {
    // Top-1 on anticorrelated data exercises limit-break inside a run that
    // also expunges candidates.
    let sites = WorkloadSpec::new(1_500, 3)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(83)
        .generate_partitioned(8)
        .unwrap();
    let mut full_cluster = Cluster::local(3, sites.clone()).unwrap();
    let full = full_cluster.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();
    let mut limited_cluster = Cluster::local(3, sites).unwrap();
    let one = limited_cluster.run_edsud(&QueryConfig::new(0.3).unwrap().limit(1)).unwrap();
    assert_eq!(one.skyline.len(), 1);
    assert_eq!(one.skyline[0].tuple.id(), full.skyline[0].tuple.id());
    assert!(one.tuples_transmitted() < full.tuples_transmitted());
}
