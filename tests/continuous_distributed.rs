//! Continuous *distributed* skylines: each site ingests a stream through a
//! count-based window (arrival = insert, slide-out = delete), and the
//! exact incremental maintenance keeps the global skyline equal to a
//! centralized recomputation over the live windows at every checkpoint.
//! This composes the paper's Section 5.4 machinery into the Section 2.2
//! sliding-window semantics across sites.

use std::collections::VecDeque;

use dsud_core::update::{Maintainer, UpdateOp};
use dsud_core::{probabilistic_skyline, UncertainDb};
use dsud_core::{BoundMode, Cluster, Probability, SubspaceMask, TupleId, UncertainTuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const Q: f64 = 0.3;
const DIMS: usize = 2;
const SITES: usize = 4;
const WINDOW: usize = 60;

fn arrival(rng: &mut StdRng, site: u32, seq: u64) -> UncertainTuple {
    let values: Vec<f64> = (0..DIMS).map(|_| rng.gen::<f64>()).collect();
    let p = Probability::clamped(rng.gen::<f64>());
    UncertainTuple::new(TupleId::new(site, seq), values, p).unwrap()
}

#[test]
fn windowed_streams_stay_exact_across_sites() {
    let mut rng = StdRng::seed_from_u64(0x57e4);
    run_scenario(&mut rng);
}

fn run_scenario(rng: &mut StdRng) {
    // Pre-fill each site's window.
    let mut windows: Vec<VecDeque<UncertainTuple>> = Vec::new();
    let mut next_seq = 0u64;
    let mut initial: Vec<Vec<UncertainTuple>> = Vec::new();
    for site in 0..SITES as u32 {
        let mut w = VecDeque::new();
        let mut tuples = Vec::new();
        for _ in 0..WINDOW {
            let t = arrival(rng, site, next_seq);
            next_seq += 1;
            w.push_back(t.clone());
            tuples.push(t);
        }
        windows.push(w);
        initial.push(tuples);
    }

    let mut cluster = Cluster::local(DIMS, initial).unwrap();
    let meter = cluster.meter().clone();
    let mask = SubspaceMask::full(DIMS).unwrap();
    let (mut maintainer, _) =
        Maintainer::bootstrap(cluster.links_mut(), &meter, Q, mask, BoundMode::Paper).unwrap();

    // Stream 200 arrivals round-robin across the sites; every arrival
    // slides the oldest tuple out of that site's window.
    for step in 0..200 {
        let site = step % SITES;
        let incoming = arrival(rng, site as u32, next_seq);
        next_seq += 1;
        let outgoing = windows[site].pop_front().expect("windows are full");
        windows[site].push_back(incoming.clone());

        maintainer.apply_incremental(cluster.links_mut(), &UpdateOp::Insert(incoming)).unwrap();
        maintainer.apply_incremental(cluster.links_mut(), &UpdateOp::Delete(outgoing)).unwrap();

        if step % 20 == 19 {
            // Centralized recomputation over the live windows.
            let union = UncertainDb::from_tuples(
                DIMS,
                windows.iter().flatten().cloned().collect::<Vec<_>>(),
            )
            .unwrap();
            let mut expected: Vec<(TupleId, f64)> = probabilistic_skyline(&union, Q, mask)
                .unwrap()
                .into_iter()
                .map(|e| (e.tuple.id(), e.probability))
                .collect();
            expected.sort_by_key(|(id, _)| *id);
            let got: Vec<(TupleId, f64)> =
                maintainer.skyline().into_iter().map(|e| (e.tuple.id(), e.probability)).collect();
            assert_eq!(
                got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                expected.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                "diverged at step {step}"
            );
            for ((_, p), (_, e)) in got.iter().zip(&expected) {
                assert!((p - e).abs() < 1e-6, "step {step}: {p} vs {e}");
            }
        }
    }
}
