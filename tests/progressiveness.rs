//! Progressiveness properties (paper Section 7.5): results must stream out
//! during execution, monotonically in both bandwidth and time, and e-DSUD's
//! bandwidth-per-result curve must sit below DSUD's.

use dsud_core::{Cluster, QueryConfig, QueryOutcome};
use dsud_data::{SpatialDistribution, WorkloadSpec};

fn run(spatial: SpatialDistribution, seed: u64) -> (QueryOutcome, QueryOutcome) {
    let sites =
        WorkloadSpec::new(3_000, 3).spatial(spatial).seed(seed).generate_partitioned(10).unwrap();
    let config = QueryConfig::new(0.3).unwrap();
    let mut a = Cluster::local(3, sites.clone()).unwrap();
    let dsud = a.run_dsud(&config).unwrap();
    let mut b = Cluster::local(3, sites).unwrap();
    let edsud = b.run_edsud(&config).unwrap();
    (dsud, edsud)
}

fn assert_monotone(outcome: &QueryOutcome, label: &str) {
    let events = outcome.progress.events();
    assert_eq!(events.len(), outcome.skyline.len(), "{label}: one event per result");
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.reported, i + 1, "{label}: contiguous ranks");
        assert!(e.probability >= 0.3, "{label}: only qualified results reported");
    }
    for w in events.windows(2) {
        assert!(
            w[0].tuples_transmitted <= w[1].tuples_transmitted,
            "{label}: bandwidth must be nondecreasing"
        );
        assert!(w[0].elapsed <= w[1].elapsed, "{label}: time must be nondecreasing");
    }
}

#[test]
fn progress_is_monotone_on_independent_data() {
    let (dsud, edsud) = run(SpatialDistribution::Independent, 1);
    assert_monotone(&dsud, "DSUD/indep");
    assert_monotone(&edsud, "e-DSUD/indep");
}

#[test]
fn progress_is_monotone_on_anticorrelated_data() {
    let (dsud, edsud) = run(SpatialDistribution::Anticorrelated, 2);
    assert_monotone(&dsud, "DSUD/anticorr");
    assert_monotone(&edsud, "e-DSUD/anticorr");
}

#[test]
fn first_result_arrives_early() {
    let (dsud, edsud) = run(SpatialDistribution::Anticorrelated, 3);
    for (out, label) in [(&dsud, "DSUD"), (&edsud, "e-DSUD")] {
        let first = out.progress.bandwidth_at(1).expect("at least one result");
        let total = out.tuples_transmitted();
        assert!(
            first * 4 <= total,
            "{label}: first result after {first} of {total} tuples is not progressive"
        );
    }
}

#[test]
fn edsud_curve_dominates_dsud_curve() {
    let (dsud, edsud) = run(SpatialDistribution::Anticorrelated, 4);
    let k = dsud.progress.len().min(edsud.progress.len());
    assert!(k > 5, "need a meaningful number of results, got {k}");
    // Compare at the quartiles of the shared prefix: for the same number of
    // reported skylines, e-DSUD must have used no more bandwidth.
    for frac in [4, 2, 1] {
        let at = (k / frac).max(1);
        let d = dsud.progress.bandwidth_at(at).unwrap();
        let e = edsud.progress.bandwidth_at(at).unwrap();
        assert!(e <= d, "at {at} results: e-DSUD used {e} tuples, DSUD {d}");
    }
}

#[test]
fn reported_stream_matches_final_answer() {
    let (_, edsud) = run(SpatialDistribution::Independent, 5);
    let from_events: Vec<_> = edsud.progress.events().iter().map(|e| e.id).collect();
    let from_skyline: Vec<_> = edsud.skyline.iter().map(|e| e.tuple.id()).collect();
    assert_eq!(from_events, from_skyline);
}

/// A limited query returns exactly the prefix of the unlimited run's report
/// stream — progressive top-k.
#[test]
fn limit_returns_a_prefix_of_the_full_stream() {
    let sites = WorkloadSpec::new(2_000, 3)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(6)
        .generate_partitioned(8)
        .unwrap();
    let full_cfg = QueryConfig::new(0.3).unwrap();
    let mut a = Cluster::local(3, sites.clone()).unwrap();
    let full = a.run_edsud(&full_cfg).unwrap();
    assert!(full.skyline.len() > 10, "need a non-trivial answer");

    for k in [1usize, 5, 10] {
        let mut b = Cluster::local(3, sites.clone()).unwrap();
        let limited = b.run_edsud(&full_cfg.limit(k)).unwrap();
        assert_eq!(limited.skyline.len(), k);
        let expected: Vec<_> = full.skyline[..k].iter().map(|e| e.tuple.id()).collect();
        let got: Vec<_> = limited.skyline.iter().map(|e| e.tuple.id()).collect();
        assert_eq!(got, expected, "k={k}");
        // Early termination must save bandwidth.
        assert!(limited.tuples_transmitted() <= full.tuples_transmitted());
    }

    // Same prefix property for DSUD.
    let mut c = Cluster::local(3, sites.clone()).unwrap();
    let dsud_full = c.run_dsud(&full_cfg).unwrap();
    let mut d = Cluster::local(3, sites).unwrap();
    let dsud_limited = d.run_dsud(&full_cfg.limit(3)).unwrap();
    assert_eq!(
        dsud_limited.skyline.iter().map(|e| e.tuple.id()).collect::<Vec<_>>(),
        dsud_full.skyline[..3].iter().map(|e| e.tuple.id()).collect::<Vec<_>>()
    );
}

/// A limit larger than the answer is equivalent to no limit.
#[test]
fn oversized_limit_is_harmless() {
    let sites = WorkloadSpec::new(500, 2).seed(8).generate_partitioned(4).unwrap();
    let cfg = QueryConfig::new(0.3).unwrap();
    let mut a = Cluster::local(2, sites.clone()).unwrap();
    let full = a.run_edsud(&cfg).unwrap();
    let mut b = Cluster::local(2, sites).unwrap();
    let limited = b.run_edsud(&cfg.limit(10_000)).unwrap();
    assert_eq!(full.skyline.len(), limited.skyline.len());
}
