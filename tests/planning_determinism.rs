//! The planning contract: `--plan sketch` is a pure *scheduling*
//! optimization. Against the static schedule it must preserve the skyline
//! (ids, bit-exact probabilities, report order), the progressive result
//! sequence, and the run statistics — the plan phase only resizes
//! `--batch auto` rounds, and the batching contract
//! (`tests/batching_determinism.rs`) proves round size never changes the
//! answer. On a flat topology sketch frames are zero-tuple control
//! traffic, so even `tuples_transmitted()` must match exactly; on trees
//! the round schedule changes which frames aggregators can merge, so
//! re-shipped tuple counts may legitimately move while answers hold.
//!
//! Pinned across the full execution matrix: transports × wire layouts ×
//! topologies × pool sizes, for both DSUD and e-DSUD, with explicit batch
//! sizes (where planning must be inert) and `--batch auto` (where it
//! actually steers). The suite also pins the plan phase's *cost ceiling*:
//! at most one sketch frame per site per query, and fewer (not more)
//! candidate-round frames whenever the planner deepens auto rounds.

use dsud_core::{
    BatchSize, Cluster, LinkConfig, PipelineDepth, PlanMode, QueryConfig, QueryOutcome, Recorder,
    SiteOptions, Topology, Transport, UncertainTuple, WireFormat,
};
use dsud_data::WorkloadSpec;
use dsud_uncertain::TupleId;

const N: usize = 1_200;
const DIMS: usize = 3;
/// Nine sites keep every tree fanout in the matrix non-degenerate (same
/// shape as the topology suite) while giving the planner a real backlog:
/// the static auto clamp sees at most nine queued candidates per round,
/// so a sketch plan that widens rounds past it is observable in frames.
const SITES: usize = 9;
const Q: f64 = 0.3;

/// Wire layout under test: `DSUD_WIRE=columnar|legacy` (legacy default),
/// same convention as the other determinism suites.
fn wire_from_env() -> WireFormat {
    std::env::var("DSUD_WIRE").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
}

fn sites(wire: WireFormat) -> (Vec<Vec<UncertainTuple>>, SiteOptions) {
    let data = WorkloadSpec::new(N, DIMS)
        .seed(42)
        .generate_partitioned(SITES)
        .expect("workload generates");
    (data, SiteOptions { wire, ..SiteOptions::default() })
}

/// Everything planning must preserve everywhere: the skyline and the
/// progressive result sequence, bit-exact.
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>) {
    (
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect(),
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect(),
    )
}

#[allow(clippy::too_many_arguments)]
fn run(
    plan: PlanMode,
    batch: BatchSize,
    topology: Topology,
    wire: WireFormat,
    transport: Transport,
    pool: usize,
    edsud: bool,
) -> QueryOutcome {
    threadpool::set_pool_size(pool);
    let (data, options) = sites(wire);
    let mut cluster = Cluster::with_topology(
        DIMS,
        data,
        options,
        Recorder::default(),
        transport,
        LinkConfig::default(),
        topology,
        None,
    )
    .expect("cluster builds");
    let config = QueryConfig::new(Q)
        .expect("valid threshold")
        .batch_size(batch)
        .pipeline_depth(PipelineDepth::Auto)
        .wire_format(wire)
        .plan_mode(plan);
    let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
    threadpool::set_pool_size(0);
    outcome.expect("query runs")
}

#[test]
fn dsud_sketch_plan_is_bit_identical_across_the_execution_matrix() {
    let wire = wire_from_env();
    for batch in [BatchSize::Auto, BatchSize::Fixed(1), BatchSize::Fixed(4)] {
        for topology in [Topology::Flat, Topology::Auto] {
            // Tuple bandwidth is topology-dependent (aggregators re-ship
            // tuples), so the static reference is taken per topology; the
            // planning contract is plan-vs-static at a fixed shape.
            let reference =
                run(PlanMode::Static, batch, topology, wire, Transport::Inline, 1, false);
            assert!(!reference.skyline.is_empty(), "workload must produce a non-trivial skyline");
            let want = fingerprint(&reference);
            for (transport, pools) in [
                (Transport::Inline, &[1usize, 8][..]),
                (Transport::Threaded, &[8][..]),
                (Transport::Tcp, &[8][..]),
            ] {
                for &pool in pools {
                    let at = format!("batch {batch} {topology} {transport} pool {pool}");
                    let outcome =
                        run(PlanMode::Sketch, batch, topology, wire, transport, pool, false);
                    assert_eq!(fingerprint(&outcome), want, "{at}");
                    assert_eq!(outcome.stats, reference.stats, "{at}");
                    if matches!(topology, Topology::Flat) {
                        // Sketch frames carry zero tuples, so on a flat
                        // fabric the paper's bandwidth measure is exact.
                        assert_eq!(
                            outcome.tuples_transmitted(),
                            reference.tuples_transmitted(),
                            "{at}"
                        );
                    }
                    let plan = outcome.plan.as_ref().expect("sketch runs carry a summary");
                    // Cost ceiling: one sketch frame per site per query —
                    // a tree root legitimately sees fewer (its aggregators
                    // pre-merge) but never more.
                    assert!(
                        plan.frames as usize <= SITES,
                        "{at}: {} sketch frames for {SITES} sites",
                        plan.frames
                    );
                }
            }
        }
    }
}

#[test]
fn edsud_sketch_plan_is_bit_identical_on_every_transport() {
    let wire = wire_from_env();
    for batch in [BatchSize::Auto, BatchSize::Fixed(4)] {
        for topology in [Topology::Flat, Topology::Auto] {
            let reference =
                run(PlanMode::Static, batch, topology, wire, Transport::Inline, 1, true);
            assert!(!reference.skyline.is_empty());
            let want = fingerprint(&reference);
            for transport in [Transport::Inline, Transport::Threaded, Transport::Tcp] {
                let at = format!("batch {batch} {topology} {transport}");
                let outcome = run(PlanMode::Sketch, batch, topology, wire, transport, 8, true);
                assert_eq!(fingerprint(&outcome), want, "{at}");
                assert_eq!(outcome.stats, reference.stats, "{at}");
                if matches!(topology, Topology::Flat) {
                    assert_eq!(
                        outcome.tuples_transmitted(),
                        reference.tuples_transmitted(),
                        "{at}"
                    );
                }
            }
        }
    }
}

/// A static run must stay byte-for-byte what it was before the planner
/// existed: no plan summary, no sketch frames, no counter movement.
#[test]
fn static_plan_ships_no_sketch_traffic() {
    let wire = wire_from_env();
    for edsud in [false, true] {
        let outcome = run(
            PlanMode::Static,
            BatchSize::Auto,
            Topology::Flat,
            wire,
            Transport::Inline,
            1,
            edsud,
        );
        assert!(outcome.plan.is_none(), "static runs carry no plan summary");
    }
}

/// The whole point of the planner: with `--batch auto` on a deep backlog,
/// the sketched cap widens rounds past the static clamp, so the *frame*
/// count on the meter must drop even after paying for the plan phase —
/// while the answer fingerprint (tuples included) holds still.
#[test]
fn sketch_plan_cuts_auto_round_frames_on_both_wire_layouts() {
    for wire in [WireFormat::Legacy, WireFormat::Columnar] {
        for edsud in [false, true] {
            let algo = if edsud { "edsud" } else { "dsud" };
            let stat = run(
                PlanMode::Static,
                BatchSize::Auto,
                Topology::Flat,
                wire,
                Transport::Inline,
                1,
                edsud,
            );
            let plan = run(
                PlanMode::Sketch,
                BatchSize::Auto,
                Topology::Flat,
                wire,
                Transport::Inline,
                1,
                edsud,
            );
            assert_eq!(fingerprint(&plan), fingerprint(&stat), "{algo} {wire}");
            assert_eq!(plan.tuples_transmitted(), stat.tuples_transmitted(), "{algo} {wire}");
            let summary = plan.plan.as_ref().expect("sketch run carries a summary");
            assert!(
                summary.planned_batch.is_some(),
                "{algo} {wire}: a healthy gather must produce a cap"
            );
            let static_msgs = stat.traffic.total().messages;
            let plan_msgs = plan.traffic.total().messages;
            assert!(
                plan_msgs < static_msgs,
                "{algo} {wire}: sketch plan shipped {plan_msgs} frames vs {static_msgs} \
                 static — deeper rounds must cut the count, plan phase included"
            );
        }
    }
}
