//! The allocation-free steady state, enforced at the allocator: once a
//! batched round has warmed the site's scratch and the coordinator's
//! decode buffers, driving the *library data path* — columnar frame in,
//! columnar reply out, survival fold on the coordinator — must perform
//! zero heap allocations. This is the harness the zero-copy wire layout
//! exists for: the footprint tests in `dsud-core` watch buffer capacities,
//! this test watches `malloc` itself.
//!
//! Scope: the test drives `Service::handle_frame` and
//! `wire::decode_survivals_into` directly (the library data path). Real
//! transports add channel/socket frame shipping on top, which necessarily
//! allocates the owned reply frame; that overhead is bounded per *round*,
//! not per tuple, and is covered by the footprint assertions in the
//! transport tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dsud_core::{LocalSite, SiteOptions};
use dsud_net::{wire, Message, Service, TupleBlock, TupleMsg};
use dsud_uncertain::{Probability, TupleId, UncertainTuple};

/// A shim around the system allocator that counts allocations so tests
/// can assert a code region performs none. Counting is always on; the
/// assertions difference two readings around the region under test.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn tuple(site: u32, seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
    UncertainTuple::new(TupleId::new(site, seq), values, Probability::new(p).unwrap()).unwrap()
}

/// One warm site plus one encoded columnar feedback frame of `k` probes.
fn warm_site_and_frame(k: u64) -> (LocalSite, Vec<u8>) {
    let tuples: Vec<_> = (0..256)
        .map(|i| tuple(0, i, vec![(i % 16) as f64 + 1.0, (i / 16) as f64 + 1.0], 0.6))
        .collect();
    let mut site = LocalSite::new(0, 2, tuples, SiteOptions::default()).unwrap();
    site.handle(Message::Start { q: 0.01, mask: dsud_uncertain::SubspaceMask::full(2).unwrap() });
    let batch: Vec<TupleMsg> = (0..k)
        .map(|j| TupleMsg::new(&tuple(1, j, vec![4.0 + j as f64, 12.0 - j as f64], 0.5), 0.5))
        .collect();
    let frame = Message::FeedbackBatchC(TupleBlock::from_msgs(&batch)).encode().as_ref().to_vec();
    (site, frame)
}

/// The site half: a warm `LocalSite` answering columnar feedback frames
/// into a reused reply buffer must not allocate at all.
#[test]
fn warm_site_rounds_allocate_nothing() {
    let (mut site, frame) = warm_site_and_frame(8);
    let mut out = bytes::BytesMut::new();
    // Warm-up: sizes the multi-probe scratch, the gathered probe rows,
    // the survival vector, and the reply buffer.
    for _ in 0..3 {
        site.handle_frame(&frame, &mut out);
    }
    let before = allocations();
    for _ in 0..64 {
        site.handle_frame(&frame, &mut out);
    }
    let after = allocations();
    assert_eq!(after - before, 0, "warm columnar rounds must not touch the allocator (site side)");
    // Sanity: the replies stayed real.
    assert!(matches!(Message::decode_slice(&out), Some(Message::SurvivalBatchReplyC { .. })));
}

/// The coordinator half: decoding a columnar survival reply into a reused
/// vector and folding the factors must not allocate either.
#[test]
fn warm_coordinator_fold_allocates_nothing() {
    let (mut site, frame) = warm_site_and_frame(8);
    let mut reply = bytes::BytesMut::new();
    site.handle_frame(&frame, &mut reply);

    let mut survivals: Vec<f64> = Vec::new();
    let mut globals = [1.0f64; 8];
    // Warm-up sizes the survival vector once.
    wire::decode_survivals_into(&reply, &mut survivals).expect("reply decodes");

    let before = allocations();
    for _ in 0..64 {
        let pruned = wire::decode_survivals_into(&reply, &mut survivals).expect("reply decodes");
        for (g, s) in globals.iter_mut().zip(&survivals) {
            *g *= s;
        }
        assert!(pruned <= 256);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm survival folds must not touch the allocator (coordinator side)"
    );
    assert!(globals.iter().all(|g| (0.0..=1.0).contains(g)));
}

/// End to end in one loop: frame in, reply out, fold — the whole batched
/// round body the wire layout optimizes — at zero allocations per round
/// once warm, for both sides at once.
#[test]
fn warm_round_trip_allocates_nothing() {
    let (mut site, frame) = warm_site_and_frame(16);
    let mut reply = bytes::BytesMut::new();
    let mut survivals: Vec<f64> = Vec::new();
    for _ in 0..3 {
        site.handle_frame(&frame, &mut reply);
        wire::decode_survivals_into(&reply, &mut survivals).expect("reply decodes");
    }
    let before = allocations();
    let mut product = 1.0f64;
    for _ in 0..128 {
        site.handle_frame(&frame, &mut reply);
        wire::decode_survivals_into(&reply, &mut survivals).expect("reply decodes");
        for s in &survivals {
            product *= s;
        }
    }
    let after = allocations();
    assert_eq!(after - before, 0, "warm round trips must not touch the allocator");
    assert!(product.is_finite());
}
