//! The topology contract: `--topology tree:<F>` is a pure fan-out
//! optimization. Against the flat star it must preserve the skyline
//! (ids, bit-exact probabilities, report order), the progressive result
//! sequence, and the run statistics at every fanout, transport, wire
//! format, pool size, and pipeline depth — aggregators are stateless
//! scatter-gather proxies, so the root still folds survival products in
//! ascending site order and every f64 multiplication happens in the same
//! order as flat. Only the *root-link frame counts* may move (and they
//! must move down: merging frames is the whole point).
//!
//! The suite also pins the failure semantics: a root link that dies under
//! a seeded [`FaultPlan`] takes out exactly its subtree — every member
//! site quarantined, every survivor exact — and replays identically on
//! inline, threaded, and TCP transports.

use dsud_core::{
    Cluster, FailurePolicy, FaultKind, FaultPlan, LinkConfig, PipelineDepth, QueryConfig,
    QueryOutcome, Recorder, SiteOptions, Topology, Transport, UncertainTuple, WireFormat,
};
use dsud_data::WorkloadSpec;
use dsud_uncertain::TupleId;

const N: usize = 1_200;
const DIMS: usize = 3;
/// Nine sites make every fanout in the matrix non-degenerate: tree:2 is
/// two layers deep, tree:4 and auto (⌈√9⌉ = 3) mix group sizes, and
/// tree:8 splits 8 + 1 so the root holds one wide aggregator next to a
/// narrow one.
const SITES: usize = 9;
const Q: f64 = 0.3;

/// Wire layout under test: `DSUD_WIRE=columnar|legacy` (legacy default),
/// same convention as the other determinism suites.
fn wire_from_env() -> WireFormat {
    std::env::var("DSUD_WIRE").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
}

fn sites(wire: WireFormat) -> (Vec<Vec<UncertainTuple>>, SiteOptions) {
    let data = WorkloadSpec::new(N, DIMS)
        .seed(42)
        .generate_partitioned(SITES)
        .expect("workload generates");
    (data, SiteOptions { wire, ..SiteOptions::default() })
}

/// What the topology must preserve: the skyline and the progress
/// sequence, bit for bit. Traffic is deliberately absent — merged
/// aggregate frames legitimately change every root-link message count,
/// which is the optimization under test, not a defect.
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>) {
    (
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect(),
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect(),
    )
}

fn run(
    topology: Topology,
    wire: WireFormat,
    transport: Transport,
    pipeline: PipelineDepth,
    pool: usize,
    edsud: bool,
) -> QueryOutcome {
    threadpool::set_pool_size(pool);
    let (data, options) = sites(wire);
    let mut cluster = Cluster::with_topology(
        DIMS,
        data,
        options,
        Recorder::default(),
        transport,
        LinkConfig::default(),
        topology,
        None,
    )
    .expect("cluster builds");
    let config =
        QueryConfig::new(Q).expect("valid threshold").pipeline_depth(pipeline).wire_format(wire);
    let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
    threadpool::set_pool_size(0);
    outcome.expect("query runs")
}

const TOPOLOGIES: [Topology; 4] =
    [Topology::Tree(2), Topology::Tree(4), Topology::Tree(8), Topology::Auto];

#[test]
fn dsud_tree_topologies_are_bit_identical_across_the_execution_matrix() {
    let wire = wire_from_env();
    let reference = run(Topology::Flat, wire, Transport::Inline, PipelineDepth::Fixed(1), 1, false);
    assert!(!reference.skyline.is_empty(), "workload must produce a non-trivial skyline");
    let want = fingerprint(&reference);
    for topology in TOPOLOGIES {
        for pipeline in [PipelineDepth::Fixed(1), PipelineDepth::Auto] {
            for (transport, pools) in [
                (Transport::Inline, &[1usize, 8][..]),
                (Transport::Threaded, &[8][..]),
                (Transport::Tcp, &[8][..]),
            ] {
                for &pool in pools {
                    let at = format!("{topology} {transport} pipeline {pipeline} pool {pool}");
                    let outcome = run(topology, wire, transport, pipeline, pool, false);
                    assert_eq!(fingerprint(&outcome), want, "{at}");
                    assert_eq!(outcome.stats, reference.stats, "{at}");
                    // The paper's bandwidth measure may only *improve*: a
                    // broadcast feedback frame crosses each root link once
                    // instead of once per site, so root-link tuple counts
                    // drop with the frame counts. They must never grow.
                    assert!(
                        outcome.tuples_transmitted() <= reference.tuples_transmitted(),
                        "{at}: tree root links shipped {} tuples vs {} flat",
                        outcome.tuples_transmitted(),
                        reference.tuples_transmitted()
                    );
                }
            }
        }
    }
}

#[test]
fn edsud_tree_topologies_are_bit_identical_on_every_transport() {
    let wire = wire_from_env();
    let reference = run(Topology::Flat, wire, Transport::Inline, PipelineDepth::Auto, 1, true);
    assert!(!reference.skyline.is_empty());
    let want = fingerprint(&reference);
    for topology in TOPOLOGIES {
        for transport in [Transport::Inline, Transport::Threaded, Transport::Tcp] {
            let at = format!("{topology} {transport}");
            let outcome = run(topology, wire, transport, PipelineDepth::Auto, 8, true);
            assert_eq!(fingerprint(&outcome), want, "{at}");
            assert_eq!(outcome.stats, reference.stats, "{at}");
        }
    }
}

/// The whole point of the topology: the root-link *message* count must
/// get smaller, not just stay correct, on both wire layouts — the shared
/// meter observes only the root's own links, so under a tree it measures
/// exactly the merged traffic the aggregation layer exists to shrink.
#[test]
fn tree_topology_cuts_root_link_frames_under_both_wire_layouts() {
    for wire in [WireFormat::Legacy, WireFormat::Columnar] {
        let flat = run(Topology::Flat, wire, Transport::Inline, PipelineDepth::Fixed(1), 1, false);
        let tree =
            run(Topology::Tree(4), wire, Transport::Inline, PipelineDepth::Fixed(1), 1, false);
        assert_eq!(fingerprint(&tree), fingerprint(&flat), "{wire}");
        let flat_msgs = flat.traffic.total().messages;
        let tree_msgs = tree.traffic.total().messages;
        assert!(
            tree_msgs < flat_msgs,
            "{wire}: tree:4 shipped {tree_msgs} root-link frames vs {flat_msgs} flat — \
             merging must cut the count"
        );
    }
}

// ---------------------------------------------------------------------
// Seeded chaos under the tree: a dead aggregator link degrades exactly
// its subtree, and the whole transcript replays on every transport.
// ---------------------------------------------------------------------

/// Eight sites at fan-out 4: two root groups, `[0,1,2,3]` and
/// `[4,5,6,7]`. Chaos on a root link is keyed by the group's *first
/// member* site, so the victim plan is `seeded(seed, 0)` and the
/// survivor plan is `seeded(seed, 4)`.
const CHAOS_SITES: usize = 8;
const VICTIM_GROUP: [u32; 4] = [0, 1, 2, 3];
const SURVIVOR_GROUP: [u32; 4] = [4, 5, 6, 7];

/// Picks the first seed whose victim-link plan schedules a hard-fault
/// window long enough to defeat the whole retry budget — seeded windows
/// start within the first ~30 attempt ordinals, and the query makes far
/// more calls than that per root link, so the doomed call is reached (and
/// fails at the same deterministic ordinal) on every transport — while
/// every window on the survivor link is survivable: shorter than the
/// budget or merely slow, so the other group never degrades.
fn subtree_killing_seed() -> u64 {
    let budget = u64::from(LinkConfig::default().retry_budget);
    let attempts = budget + 1;
    let defeated = |seed: u64, site: u32| {
        FaultPlan::seeded(seed, site)
            .windows()
            .iter()
            .any(|w| w.len >= attempts && !matches!(w.kind, FaultKind::Slow(_)))
    };
    let survivable = |seed: u64, site: u32| {
        FaultPlan::seeded(seed, site)
            .windows()
            .iter()
            .all(|w| w.len <= budget || matches!(w.kind, FaultKind::Slow(_)))
    };
    (1..65_536)
        .find(|&seed| defeated(seed, VICTIM_GROUP[0]) && survivable(seed, SURVIVOR_GROUP[0]))
        .expect("some seed kills the first group's link and spares the second's")
}

fn chaos_run(transport: Transport) -> QueryOutcome {
    let data = WorkloadSpec::new(N, DIMS)
        .seed(42)
        .generate_partitioned(CHAOS_SITES)
        .expect("workload generates");
    let wire = wire_from_env();
    let mut cluster = Cluster::with_topology(
        DIMS,
        data,
        SiteOptions { wire, ..SiteOptions::default() },
        Recorder::default(),
        transport,
        LinkConfig::default(),
        Topology::Tree(4),
        Some(subtree_killing_seed()),
    )
    .expect("chaos cluster builds");
    let config = QueryConfig::new(Q)
        .expect("valid threshold")
        .failure_policy(FailurePolicy::Degrade)
        .wire_format(wire);
    cluster.run_dsud(&config).expect("degrade-policy query completes")
}

#[test]
fn dead_aggregator_link_degrades_exactly_its_subtree_on_every_transport() {
    let reference = chaos_run(Transport::Inline);
    assert!(
        reference.degraded,
        "the seeded plan kills the first root link outright — the answer must be \
         stamped as an upper bound"
    );
    let quarantined: Vec<u32> =
        reference.sites.iter().filter(|s| s.quarantined.is_some()).map(|s| s.site).collect();
    // The subtree degrades as a unit: every member of the victim group,
    // no member of the survivor group.
    assert_eq!(
        quarantined, VICTIM_GROUP,
        "a dead aggregator link must quarantine exactly its member sites"
    );
    for &site in &SURVIVOR_GROUP {
        assert!(
            reference.sites[site as usize].healthy(),
            "site {site} sits behind the healthy link and must stay exact"
        );
    }
    assert!(
        !reference.skyline.is_empty(),
        "the surviving subtree still produces answers (upper-bounded)"
    );

    // Same seed, same transcript: the quarantine falls on the same attempt
    // ordinal everywhere, so threaded and TCP replays are bit-identical.
    let want = fingerprint(&reference);
    for transport in [Transport::Threaded, Transport::Tcp] {
        let outcome = chaos_run(transport);
        assert_eq!(fingerprint(&outcome), want, "{transport}");
        assert!(outcome.degraded, "{transport}");
        let replay: Vec<u32> =
            outcome.sites.iter().filter(|s| s.quarantined.is_some()).map(|s| s.site).collect();
        assert_eq!(replay, quarantined, "{transport}: the quarantine set must replay exactly");
    }
}
