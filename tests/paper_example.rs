//! End-to-end reproduction of the paper's worked example (Section 5.3,
//! Table 2): a hotel booking system with three sites — Qingdao, Shanghai,
//! Xiamen — and threshold q = 0.3.
//!
//! The paper specifies each site's *local skyline* (tuples, existential
//! probabilities, local skyline probabilities); we reconstruct full local
//! databases consistent with those numbers by adding low-probability
//! "filler" dominators that produce exactly the quoted local probabilities
//! without qualifying for any skyline themselves.

use dsud_core::{
    BoundMode, Cluster, Probability, QueryConfig, SubspaceMask, TupleId, UncertainTuple,
};
use dsud_prtree::{bbs, PrTree};

fn tuple(site: u32, seq: u64, values: [f64; 2], p: f64) -> UncertainTuple {
    UncertainTuple::new(TupleId::new(site, seq), values.to_vec(), Probability::new(p).unwrap())
        .unwrap()
}

/// S1 (Qingdao): local skyline (6,6,0.7,0.65), (8,4,0.8,0.6), (3,8,0.8,0.5).
fn site_qingdao() -> Vec<UncertainTuple> {
    vec![
        tuple(0, 0, [6.0, 6.0], 0.7),
        tuple(0, 1, [8.0, 4.0], 0.8),
        tuple(0, 2, [3.0, 8.0], 0.8),
        // P_sky(6,6) = 0.7 (1−p) = 0.65.
        tuple(0, 3, [5.0, 5.0], 1.0 - 0.65 / 0.7),
        // P_sky(8,4) = 0.8 (1−p) = 0.6.
        tuple(0, 4, [7.0, 3.0], 0.25),
        // P_sky(3,8) = 0.8 (1−p)² = 0.5 with two sub-threshold fillers.
        tuple(0, 5, [2.0, 7.0], 1.0 - (0.5f64 / 0.8).sqrt()),
        tuple(0, 6, [2.5, 7.5], 1.0 - (0.5f64 / 0.8).sqrt()),
    ]
}

/// S2 (Shanghai): local skyline (6.5,7,0.8,0.65), (4,9,0.6,0.6), (9,5,0.7,0.6).
fn site_shanghai() -> Vec<UncertainTuple> {
    vec![
        tuple(1, 0, [6.5, 7.0], 0.8),
        tuple(1, 1, [4.0, 9.0], 0.6),
        tuple(1, 2, [9.0, 5.0], 0.7),
        // P_sky(6.5,7) = 0.8 (1−p) = 0.65.
        tuple(1, 3, [6.2, 6.8], 1.0 - 0.65 / 0.8),
        // P_sky(9,5) = 0.7 (1−p) = 0.6.
        tuple(1, 4, [8.5, 4.8], 1.0 - 0.6 / 0.7),
    ]
}

/// S3 (Xiamen): local skyline (6.4,7.5,0.9,0.8), (3.5,11,0.7,0.7), (10,4.5,0.7,0.7).
fn site_xiamen() -> Vec<UncertainTuple> {
    vec![
        tuple(2, 0, [6.4, 7.5], 0.9),
        tuple(2, 1, [3.5, 11.0], 0.7),
        tuple(2, 2, [10.0, 4.5], 0.7),
        // P_sky(6.4,7.5) = 0.9 (1−p) = 0.8.
        tuple(2, 3, [6.3, 7.4], 1.0 - 0.8 / 0.9),
    ]
}

fn full2() -> SubspaceMask {
    SubspaceMask::full(2).unwrap()
}

/// (values, existential probability, local skyline probability) rows.
type Table2aRows = Vec<([f64; 2], f64, f64)>;

/// The local skylines must reproduce Table 2(a) exactly.
#[test]
fn local_skylines_match_table_2a() {
    let cases: [(Vec<UncertainTuple>, Table2aRows); 3] = [
        (
            site_qingdao(),
            vec![([6.0, 6.0], 0.7, 0.65), ([8.0, 4.0], 0.8, 0.6), ([3.0, 8.0], 0.8, 0.5)],
        ),
        (
            site_shanghai(),
            vec![([6.5, 7.0], 0.8, 0.65), ([4.0, 9.0], 0.6, 0.6), ([9.0, 5.0], 0.7, 0.6)],
        ),
        (
            site_xiamen(),
            vec![([6.4, 7.5], 0.9, 0.8), ([3.5, 11.0], 0.7, 0.7), ([10.0, 4.5], 0.7, 0.7)],
        ),
    ];
    for (tuples, expected) in cases {
        let tree = PrTree::bulk_load(2, tuples).unwrap();
        let sky = bbs::local_skyline(&tree, 0.3, full2()).unwrap();
        assert_eq!(sky.len(), expected.len());
        for (got, (values, prob, local)) in sky.iter().zip(&expected) {
            assert_eq!(got.tuple.values(), values.as_slice());
            assert!((got.tuple.prob().get() - prob).abs() < 1e-12);
            assert!(
                (got.probability - local).abs() < 1e-12,
                "local skyline probability {} vs expected {local}",
                got.probability
            );
        }
    }
}

/// e-DSUD over the three cities returns exactly SKY(H) = {(6,6), (8,4), (3,8)}
/// with global probabilities 0.65, 0.6, 0.5.
#[test]
fn edsud_returns_papers_global_skyline() {
    let mut cluster =
        Cluster::local(2, vec![site_qingdao(), site_shanghai(), site_xiamen()]).unwrap();
    let outcome = cluster.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();

    let mut got: Vec<(Vec<f64>, f64)> =
        outcome.skyline.iter().map(|e| (e.tuple.values().to_vec(), e.probability)).collect();
    got.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    assert_eq!(got.len(), 3, "SKY(H) must hold exactly the three hotels: {got:?}");
    let expected = [(vec![3.0, 8.0], 0.5), (vec![6.0, 6.0], 0.65), (vec![8.0, 4.0], 0.6)];
    for ((values, prob), (evalues, eprob)) in got.iter().zip(&expected) {
        assert_eq!(values, evalues);
        assert!((prob - eprob).abs() < 1e-12, "{values:?}: {prob} vs {eprob}");
    }

    // Progressiveness: three reports, monotone bandwidth.
    assert_eq!(outcome.progress.len(), 3);
    let events = outcome.progress.events();
    for w in events.windows(2) {
        assert!(w[0].tuples_transmitted <= w[1].tuples_transmitted);
    }
}

/// DSUD agrees with e-DSUD on the answer set but spends at least as much
/// bandwidth.
#[test]
fn dsud_agrees_and_spends_no_less() {
    let sites = vec![site_qingdao(), site_shanghai(), site_xiamen()];
    let mut a = Cluster::local(2, sites.clone()).unwrap();
    let dsud = a.run_dsud(&QueryConfig::new(0.3).unwrap()).unwrap();
    let mut b = Cluster::local(2, sites).unwrap();
    let edsud = b.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();

    let ids = |o: &dsud_core::QueryOutcome| {
        let mut v: Vec<TupleId> = o.skyline.iter().map(|e| e.tuple.id()).collect();
        v.sort();
        v
    };
    assert_eq!(ids(&dsud), ids(&edsud));
    assert!(
        edsud.tuples_transmitted() <= dsud.tuples_transmitted(),
        "e-DSUD {} vs DSUD {}",
        edsud.tuples_transmitted(),
        dsud.tuples_transmitted()
    );
}

/// The BroadcastOnly ablation is still correct, just less frugal.
#[test]
fn broadcast_only_bound_is_correct_on_the_example() {
    let sites = vec![site_qingdao(), site_shanghai(), site_xiamen()];
    let mut cluster = Cluster::local(2, sites).unwrap();
    let config = QueryConfig::new(0.3).unwrap().bound_mode(BoundMode::BroadcastOnly);
    let outcome = cluster.run_edsud(&config).unwrap();
    assert_eq!(outcome.skyline.len(), 3);
}

/// The example over the threaded (one OS thread per site) transport.
#[test]
fn threaded_cluster_matches_local() {
    let sites = vec![site_qingdao(), site_shanghai(), site_xiamen()];
    let mut local = Cluster::local(2, sites.clone()).unwrap();
    let a = local.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();
    let mut threaded = Cluster::threaded(2, sites).unwrap();
    let b = threaded.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();
    assert_eq!(a.skyline.len(), b.skyline.len());
    assert_eq!(a.tuples_transmitted(), b.tuples_transmitted());
    assert_eq!(a.stats, b.stats);
}
