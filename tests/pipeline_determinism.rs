//! The pipelining contract: overlapping round `r`'s survival scatter with
//! round `r+1`'s refills (`--pipeline W`, W > 1) must never change the
//! answer. Skyline contents and order, exact probabilities (to the bit),
//! the progress sequence, tuple traffic, and the run statistics must all
//! match the `--pipeline 1` run at every window, pool size, and transport
//! — completions are folded in ascending site order regardless of arrival,
//! so only wall-clock time may shrink.
//!
//! Progress-event traffic stamps are legitimately excluded from the
//! comparison (same rationale as `batching_determinism.rs`): a pipelined
//! round has already metered the next round's refill request when it
//! reports its results, so the "tuples transmitted so far" watermark at
//! each report can differ even though the reported tuples and totals do
//! not.

use std::time::{Duration, Instant};

use dsud_core::{
    dsud, BatchSize, Cluster, FailurePolicy, LocalSite, PipelineDepth, QueryConfig, QueryOutcome,
    Recorder, SiteOptions, SubspaceMask, Transport, WireFormat,
};

/// Wire layout under test: `DSUD_WIRE=columnar|legacy` (legacy default),
/// so CI can run the whole determinism matrix under both layouts.
fn wire_from_env() -> WireFormat {
    std::env::var("DSUD_WIRE").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
}
use dsud_core::{BandwidthMeter, Link, LinkConfig};
use dsud_data::WorkloadSpec;
use dsud_net::{ChannelLink, DelayedService};
use dsud_uncertain::TupleId;

const N: usize = 1_500;
const DIMS: usize = 3;
const SITES: usize = 8;
const Q: f64 = 0.3;

fn sites() -> Vec<Vec<dsud_uncertain::UncertainTuple>> {
    WorkloadSpec::new(N, DIMS).seed(42).generate_partitioned(SITES).expect("workload generates")
}

/// Everything pipelining must preserve: the skyline (ids, bit-exact
/// probabilities, report order), the progress sequence (minus traffic
/// stamps), and the paper's bandwidth measure in tuples.
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>, u64) {
    let skyline: Vec<(TupleId, u64)> =
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect();
    let progress: Vec<(TupleId, u64)> =
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect();
    (skyline, progress, outcome.tuples_transmitted())
}

fn run(
    pipeline: PipelineDepth,
    batch: BatchSize,
    transport: Transport,
    pool: usize,
    edsud: bool,
) -> QueryOutcome {
    threadpool::set_pool_size(pool);
    let mut cluster = Cluster::with_transport(
        DIMS,
        sites(),
        SiteOptions::default(),
        Recorder::default(),
        transport,
    )
    .expect("cluster builds");
    let config = QueryConfig::new(Q)
        .expect("valid threshold")
        .batch_size(batch)
        .pipeline_depth(pipeline)
        .wire_format(wire_from_env());
    let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
    threadpool::set_pool_size(0);
    outcome.expect("query runs")
}

const WINDOWS: [PipelineDepth; 3] =
    [PipelineDepth::Fixed(2), PipelineDepth::Fixed(8), PipelineDepth::Auto];

/// The full determinism matrix from the issue: window {1, 2, 8, auto} ×
/// inline/threaded/tcp × pool {1, 2, 8}. Inline carries every pool size;
/// the thread-backed transports sample the extremes so the suite stays
/// under CI budget while still crossing the scheduler.
const MATRIX: [(Transport, &[usize]); 3] =
    [(Transport::Inline, &[1, 2, 8]), (Transport::Threaded, &[1, 8]), (Transport::Tcp, &[1, 8])];

#[test]
fn dsud_pipelined_outcome_is_bit_identical_to_sequential() {
    let reference = run(PipelineDepth::Fixed(1), BatchSize::Fixed(1), Transport::Inline, 1, false);
    assert!(!reference.skyline.is_empty(), "workload must produce a non-trivial skyline");
    for window in WINDOWS {
        for (transport, pools) in MATRIX {
            for &pool in pools {
                let outcome = run(window, BatchSize::Fixed(1), transport, pool, false);
                assert_eq!(
                    fingerprint(&outcome),
                    fingerprint(&reference),
                    "pipeline {window} {transport} pool {pool}"
                );
                assert_eq!(
                    outcome.stats, reference.stats,
                    "pipeline {window} {transport} pool {pool}"
                );
            }
        }
    }
}

#[test]
fn edsud_pipelined_outcome_is_bit_identical_to_sequential() {
    let reference = run(PipelineDepth::Fixed(1), BatchSize::Fixed(1), Transport::Inline, 1, true);
    assert!(!reference.skyline.is_empty());
    for window in WINDOWS {
        for (transport, pools) in MATRIX {
            for &pool in pools {
                let outcome = run(window, BatchSize::Fixed(1), transport, pool, true);
                assert_eq!(
                    fingerprint(&outcome),
                    fingerprint(&reference),
                    "pipeline {window} {transport} pool {pool}"
                );
                assert_eq!(
                    outcome.stats, reference.stats,
                    "pipeline {window} {transport} pool {pool}"
                );
            }
        }
    }
}

/// Pipelining composes with batching: the overlapped schedule coalesces
/// the same feedback frames, so a batched pipelined run matches the
/// batched sequential run bit for bit — including message counts.
#[test]
fn pipelining_composes_with_batching() {
    for edsud in [false, true] {
        let sequential =
            run(PipelineDepth::Fixed(1), BatchSize::Fixed(16), Transport::Inline, 1, edsud);
        for window in WINDOWS {
            for batch in [BatchSize::Fixed(16), BatchSize::Auto] {
                let pipelined = run(window, batch, Transport::Inline, 1, edsud);
                assert_eq!(
                    fingerprint(&pipelined),
                    fingerprint(&sequential),
                    "edsud={edsud} pipeline {window} batch {batch}"
                );
                assert_eq!(pipelined.stats, sequential.stats, "edsud={edsud} batch {batch}");
            }
        }
    }
}

/// `--limit` rounds fall back to the sequential schedule (the legacy path
/// never requests a refill for a round that may terminate the query), so
/// progressive runs must stay bit-identical too — including traffic.
#[test]
fn pipelining_preserves_limited_runs_exactly() {
    for edsud in [false, true] {
        threadpool::set_pool_size(1);
        let mut outcomes = Vec::new();
        for window in [PipelineDepth::Fixed(1), PipelineDepth::Fixed(8)] {
            let mut cluster = Cluster::with_transport(
                DIMS,
                sites(),
                SiteOptions::default(),
                Recorder::default(),
                Transport::Inline,
            )
            .expect("cluster builds");
            let config = QueryConfig::new(Q)
                .expect("valid threshold")
                .limit(4)
                .pipeline_depth(window)
                .wire_format(wire_from_env());
            let outcome =
                if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
            outcomes.push(outcome.expect("query runs"));
        }
        threadpool::set_pool_size(0);
        let (reference, pipelined) = (&outcomes[0], &outcomes[1]);
        assert_eq!(reference.skyline.len(), 4);
        assert_eq!(fingerprint(pipelined), fingerprint(reference), "edsud={edsud}");
        assert_eq!(pipelined.traffic.total(), reference.traffic.total(), "edsud={edsud}");
        assert_eq!(pipelined.stats, reference.stats, "edsud={edsud}");
    }
}

/// Wall-clock benefit, measured with an injected per-request delay on the
/// threaded transport. A sequential DSUD round pays the survival scatter
/// and the refill back to back (≈ 2δ); the pipelined round issues the
/// refill before the scatter and completes both together (≈ δ). The
/// asserted floor (1.3×) sits below the ≈ 2× theory to absorb scheduler
/// noise.
#[test]
fn overlapped_refills_cut_round_latency() {
    const DELAY: Duration = Duration::from_millis(3);
    const SPEEDUP_SITES: usize = 4;

    let data = WorkloadSpec::new(400, DIMS)
        .seed(7)
        .generate_partitioned(SPEEDUP_SITES)
        .expect("workload generates");
    let mask = SubspaceMask::full(DIMS).expect("full mask");

    let timed_run = |pipeline: PipelineDepth| -> (QueryOutcome, Duration) {
        let meter = BandwidthMeter::default();
        let mut links: Vec<Box<dyn Link>> = Vec::new();
        for (i, tuples) in data.clone().into_iter().enumerate() {
            let site = LocalSite::new(i as u32, DIMS, tuples, SiteOptions::default())
                .expect("site builds");
            links.push(Box::new(ChannelLink::spawn_with(
                DelayedService::new(site, DELAY),
                meter.clone(),
                LinkConfig::default(),
            )));
        }
        let started = Instant::now();
        let outcome = dsud::run_with_policy(
            &mut links,
            &meter,
            Q,
            mask,
            None,
            FailurePolicy::Strict,
            BatchSize::Fixed(1),
            pipeline,
            wire_from_env(),
            None,
        )
        .expect("query runs");
        (outcome, started.elapsed())
    };

    let (sequential, sequential_time) = timed_run(PipelineDepth::Fixed(1));
    let (pipelined, pipelined_time) = timed_run(PipelineDepth::Auto);

    assert_eq!(fingerprint(&pipelined), fingerprint(&sequential));
    assert!(
        sequential_time.as_secs_f64() >= 1.3 * pipelined_time.as_secs_f64(),
        "expected >= 1.3x speedup from overlap, got {:.0}ms sequential vs {:.0}ms pipelined",
        sequential_time.as_secs_f64() * 1e3,
        pipelined_time.as_secs_f64() * 1e3,
    );
}
