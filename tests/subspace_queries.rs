//! Subspace skyline queries (paper Section 4): the framework must answer a
//! query restricted to any subset of attributes by checking dominance only
//! on those dimensions — across all algorithms.

use dsud_core::{baseline, BandwidthMeter, Cluster, Error, QueryConfig};
use dsud_core::{probabilistic_skyline, SubspaceMask, TupleId, UncertainDb};
use dsud_data::{SpatialDistribution, WorkloadSpec};

fn sites_4d(seed: u64) -> Vec<Vec<dsud_core::UncertainTuple>> {
    WorkloadSpec::new(1_200, 4)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(seed)
        .generate_partitioned(6)
        .unwrap()
}

fn reference(
    sites: &[Vec<dsud_core::UncertainTuple>],
    q: f64,
    mask: SubspaceMask,
) -> Vec<(TupleId, f64)> {
    let union =
        UncertainDb::from_tuples(4, sites.iter().flatten().cloned().collect::<Vec<_>>()).unwrap();
    let mut out: Vec<(TupleId, f64)> = probabilistic_skyline(&union, q, mask)
        .unwrap()
        .into_iter()
        .map(|e| (e.tuple.id(), e.probability))
        .collect();
    out.sort_by_key(|(id, _)| *id);
    out
}

#[test]
fn subspace_results_match_centralized() {
    let sites = sites_4d(1);
    for dims in [vec![0], vec![1, 3], vec![0, 1, 2], vec![0, 1, 2, 3]] {
        let mask = SubspaceMask::from_dims(&dims).unwrap();
        let expected = reference(&sites, 0.3, mask);
        let config = QueryConfig::new(0.3).unwrap().subspace(mask);

        let mut c1 = Cluster::local(4, sites.clone()).unwrap();
        let edsud = c1.run_edsud(&config).unwrap();
        let mut got: Vec<(TupleId, f64)> =
            edsud.skyline.iter().map(|e| (e.tuple.id(), e.probability)).collect();
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(
            got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            expected.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            "e-DSUD on {dims:?}"
        );
        for ((_, p), (_, e)) in got.iter().zip(&expected) {
            assert!((p - e).abs() < 1e-9);
        }

        let mut c2 = Cluster::local(4, sites.clone()).unwrap();
        let dsud = c2.run_dsud(&config).unwrap();
        assert_eq!(dsud.skyline.len(), expected.len(), "DSUD on {dims:?}");

        let meter = BandwidthMeter::new();
        let base = baseline::run(&sites, 4, 0.3, mask, &meter).unwrap();
        assert_eq!(base.skyline.len(), expected.len(), "baseline on {dims:?}");
    }
}

#[test]
fn lower_dimensional_subspaces_are_cheaper() {
    let sites = sites_4d(2);
    let full = SubspaceMask::full(4).unwrap();
    let narrow = SubspaceMask::from_dims(&[0, 1]).unwrap();
    let mut c1 = Cluster::local(4, sites.clone()).unwrap();
    let wide = c1.run_edsud(&QueryConfig::new(0.3).unwrap().subspace(full)).unwrap();
    let mut c2 = Cluster::local(4, sites).unwrap();
    let thin = c2.run_edsud(&QueryConfig::new(0.3).unwrap().subspace(narrow)).unwrap();
    // Fewer dimensions ⇒ more dominance ⇒ smaller skylines and less traffic.
    assert!(thin.skyline.len() < wide.skyline.len());
    assert!(thin.tuples_transmitted() < wide.tuples_transmitted());
}

#[test]
fn invalid_subspace_is_rejected_before_any_traffic() {
    let sites = sites_4d(3);
    let mut cluster = Cluster::local(4, sites).unwrap();
    let bad = SubspaceMask::from_dims(&[7]).unwrap();
    let err = cluster.run_edsud(&QueryConfig::new(0.3).unwrap().subspace(bad));
    assert!(matches!(err, Err(Error::Subspace(_))));
    assert_eq!(cluster.meter().snapshot().total().messages, 0);
}

#[test]
fn single_dimension_subspace_has_tiny_skyline() {
    let sites = sites_4d(4);
    let mask = SubspaceMask::from_dims(&[2]).unwrap();
    let mut cluster = Cluster::local(4, sites).unwrap();
    let out = cluster.run_edsud(&QueryConfig::new(0.3).unwrap().subspace(mask)).unwrap();
    // In one dimension only near-minimum tuples can qualify.
    assert!(out.skyline.len() < 30, "got {}", out.skyline.len());
}
