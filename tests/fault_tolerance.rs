//! Robustness: a misbehaving site must surface as a protocol error at the
//! coordinator — never a panic, hang, or silently wrong answer.

use dsud_core::{dsud, edsud, BoundMode, Error, LocalSite, SiteOptions, SubspaceMask};
use dsud_core::{BandwidthMeter, Link};
use dsud_data::WorkloadSpec;
use dsud_net::{FaultMode, FaultyLink, LocalLink};

fn faulty_cluster(
    fault_site: usize,
    mode: FaultMode,
    healthy_calls: u64,
) -> (Vec<Box<dyn Link>>, BandwidthMeter) {
    let sites = WorkloadSpec::new(600, 2).seed(10).generate_partitioned(4).unwrap();
    let meter = BandwidthMeter::new();
    let mut links: Vec<Box<dyn Link>> = Vec::new();
    for (i, tuples) in sites.into_iter().enumerate() {
        let site = LocalSite::new(i as u32, 2, tuples, SiteOptions::default()).unwrap();
        let inner = LocalLink::new(site, meter.clone());
        if i == fault_site {
            links.push(Box::new(FaultyLink::new(inner, mode, healthy_calls)));
        } else {
            links.push(Box::new(inner));
        }
    }
    (links, meter)
}

#[test]
fn dsud_reports_wrong_reply_as_protocol_violation() {
    let (mut links, meter) = faulty_cluster(1, FaultMode::WrongReply, 3);
    let mask = SubspaceMask::full(2).unwrap();
    let err = dsud::run(&mut links, &meter, 0.3, mask, None);
    assert!(matches!(err, Err(Error::ProtocolViolation(_))), "got {err:?}");
}

#[test]
fn edsud_reports_wrong_reply_as_protocol_violation() {
    let (mut links, meter) = faulty_cluster(2, FaultMode::WrongReply, 5);
    let mask = SubspaceMask::full(2).unwrap();
    let err = edsud::run(&mut links, &meter, 0.3, mask, BoundMode::Paper, None);
    assert!(matches!(err, Err(Error::ProtocolViolation(_))), "got {err:?}");
}

#[test]
fn fault_on_first_contact_is_caught() {
    let (mut links, meter) = faulty_cluster(0, FaultMode::WrongReply, 0);
    let mask = SubspaceMask::full(2).unwrap();
    let err = dsud::run(&mut links, &meter, 0.3, mask, None);
    assert!(matches!(err, Err(Error::ProtocolViolation(_))));
}

#[test]
fn healthy_budget_large_enough_means_success() {
    // A fault scheduled after the query completes never fires.
    let (mut links, meter) = faulty_cluster(1, FaultMode::WrongReply, u64::MAX);
    let mask = SubspaceMask::full(2).unwrap();
    let outcome = edsud::run(&mut links, &meter, 0.3, mask, BoundMode::Paper, None).unwrap();
    assert!(!outcome.skyline.is_empty());
}

#[test]
fn corrupted_survival_values_are_rejected() {
    let (mut links, meter) = faulty_cluster(1, FaultMode::CorruptSurvival, 4);
    let mask = SubspaceMask::full(2).unwrap();
    let err = edsud::run(&mut links, &meter, 0.3, mask, BoundMode::Paper, None);
    assert!(
        matches!(err, Err(Error::ProtocolViolation("survival product out of range"))),
        "got {err:?}"
    );
}
