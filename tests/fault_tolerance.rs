//! Robustness: a misbehaving or dead site must surface as a typed error
//! under [`FailurePolicy::Strict`], or as a quarantine under
//! [`FailurePolicy::Degrade`] — never a panic, hang, or silently wrong
//! answer — on every transport and at every thread-pool size.
//!
//! Fault schedules are injected by [`FaultyLink`], which counts calls to
//! itself and short-circuits *before* the wrapped transport, so the same
//! schedule replays identically on inline, threaded, and TCP links. The
//! "killed site" tests instead panic the real site service mid-query, so
//! the failure travels through the genuine transport machinery.

use std::time::Duration;

use dsud_core::{
    dsud, edsud, BatchSize, BoundMode, Error, LocalSite, PipelineDepth, SiteOptions, SubspaceMask,
    WireFormat,
};
use dsud_core::{
    BandwidthMeter, Cluster, Counter, FailurePolicy, FaultKind, FaultPlan, Link, LinkConfig,
    LinkError, QuarantineReason, QueryConfig, QueryOutcome, Recorder, RetryLink, SessionOptions,
    SessionServer, Transport,
};
use dsud_data::WorkloadSpec;
use dsud_net::{tcp, ChannelLink, FaultMode, FaultyLink, LocalLink, Message, Service};
use dsud_uncertain::TupleId;

const DIMS: usize = 2;
const SITES: usize = 4;
const ALL_TRANSPORTS: [Transport; 3] = [Transport::Inline, Transport::Threaded, Transport::Tcp];

fn site_data() -> Vec<Vec<dsud_uncertain::UncertainTuple>> {
    WorkloadSpec::new(600, DIMS).seed(10).generate_partitioned(SITES).unwrap()
}

fn mask() -> SubspaceMask {
    SubspaceMask::full(DIMS).unwrap()
}

/// Short deadlines so swallowed requests fail fast, zero backoff so retry
/// sleeps never slow the suite down, budget 2 so `Stall(2)` is recoverable.
fn fast_config() -> LinkConfig {
    LinkConfig {
        request_timeout: Duration::from_millis(500),
        retry_budget: 2,
        backoff: Duration::ZERO,
    }
}

fn boxed<L: Link + 'static>(
    inner: L,
    fault: Option<(FaultMode, u64)>,
    cfg: LinkConfig,
    recorder: &Recorder,
) -> Box<dyn Link> {
    match fault {
        Some((mode, healthy_calls)) => Box::new(RetryLink::with_recorder(
            FaultyLink::new(inner, mode, healthy_calls),
            cfg,
            recorder.clone(),
        )),
        None => Box::new(RetryLink::with_recorder(inner, cfg, recorder.clone())),
    }
}

/// A 4-site cluster over the given transport, with `fault` (if any)
/// injected between the retry layer and the transport at `fault_site`.
/// The returned servers must stay alive for the duration of the query.
fn faulty_cluster(
    transport: Transport,
    fault: Option<(usize, FaultMode, u64)>,
    recorder: &Recorder,
) -> (Vec<Box<dyn Link>>, BandwidthMeter, Vec<tcp::SiteServer>) {
    let meter = BandwidthMeter::with_recorder(recorder.clone());
    let cfg = fast_config();
    let mut links: Vec<Box<dyn Link>> = Vec::new();
    let mut servers = Vec::new();
    for (i, tuples) in site_data().into_iter().enumerate() {
        let site = LocalSite::new(i as u32, DIMS, tuples, SiteOptions::default()).unwrap();
        let mode = fault.and_then(|(fs, m, h)| (fs == i).then_some((m, h)));
        let link = match transport {
            Transport::Inline => boxed(LocalLink::new(site, meter.clone()), mode, cfg, recorder),
            Transport::Threaded => {
                boxed(ChannelLink::spawn_with(site, meter.clone(), cfg), mode, cfg, recorder)
            }
            Transport::Tcp => {
                let server = tcp::spawn_site(site).expect("site server starts");
                let link = tcp::TcpLink::connect_with(server.addr(), meter.clone(), cfg)
                    .expect("link connects");
                servers.push(server);
                boxed(link, mode, cfg, recorder)
            }
        };
        links.push(link);
    }
    (links, meter, servers)
}

fn skyline_fingerprint(outcome: &QueryOutcome) -> Vec<(TupleId, u64)> {
    outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect()
}

// --- strict mode: transport failures become typed SiteFailed errors -------

#[test]
fn strict_drop_is_site_failed_on_every_transport() {
    for transport in ALL_TRANSPORTS {
        let recorder = Recorder::disabled();
        let (mut links, meter, _servers) =
            faulty_cluster(transport, Some((1, FaultMode::Drop, 3)), &recorder);
        let err = dsud::run_with_policy(
            &mut links,
            &meter,
            0.3,
            mask(),
            None,
            FailurePolicy::Strict,
            BatchSize::Fixed(1),
            PipelineDepth::Fixed(1),
            WireFormat::Legacy,
            None,
        );
        match err {
            Err(Error::SiteFailed { site: 1, source: LinkError::Timeout }) => {}
            other => panic!("{transport:?}: expected SiteFailed(Timeout) at site 1, got {other:?}"),
        }
    }
}

#[test]
fn strict_disconnect_is_site_failed_on_every_transport() {
    for transport in ALL_TRANSPORTS {
        let recorder = Recorder::disabled();
        let (mut links, meter, _servers) =
            faulty_cluster(transport, Some((2, FaultMode::Disconnect, 5)), &recorder);
        let err = edsud::run_with_synopses(
            &mut links,
            &meter,
            0.3,
            mask(),
            BoundMode::Paper,
            None,
            None,
            FailurePolicy::Strict,
            BatchSize::Fixed(1),
            PipelineDepth::Fixed(1),
            WireFormat::Legacy,
            None,
        );
        match err {
            Err(Error::SiteFailed { site: 2, source: LinkError::Disconnected }) => {}
            other => {
                panic!("{transport:?}: expected SiteFailed(Disconnected) at site 2, got {other:?}")
            }
        }
    }
}

// --- degrade mode: the query survives and names what it lost -------------

#[test]
fn degrade_quarantines_the_failed_site_and_completes() {
    for transport in ALL_TRANSPORTS {
        for fault in [FaultMode::Drop, FaultMode::Disconnect] {
            let recorder = Recorder::enabled();
            let (mut links, meter, _servers) =
                faulty_cluster(transport, Some((1, fault, 3)), &recorder);
            let outcome = dsud::run_with_policy(
                &mut links,
                &meter,
                0.3,
                mask(),
                None,
                FailurePolicy::Degrade,
                BatchSize::Fixed(1),
                PipelineDepth::Fixed(1),
                WireFormat::Legacy,
                None,
            )
            .unwrap_or_else(|e| panic!("{transport:?}/{fault:?}: degrade mode failed: {e}"));
            assert!(outcome.degraded, "{transport:?}/{fault:?}: outcome not marked degraded");
            assert!(!outcome.skyline.is_empty(), "{transport:?}/{fault:?}: empty skyline");
            assert_eq!(outcome.sites.len(), SITES);
            for (i, status) in outcome.sites.iter().enumerate() {
                if i == 1 {
                    assert!(
                        matches!(status.quarantined, Some(QuarantineReason::Transport(_))),
                        "{transport:?}/{fault:?}: site 1 status {status:?}"
                    );
                } else {
                    assert!(status.healthy(), "{transport:?}/{fault:?}: site {i} not healthy");
                }
            }
            assert_eq!(recorder.counter(Counter::QuarantinedSites), 1);
        }
    }
}

// --- a stall within the retry budget is invisible -------------------------

#[test]
fn stall_within_budget_recovers_the_exact_healthy_answer() {
    for transport in ALL_TRANSPORTS {
        let healthy_rec = Recorder::enabled();
        let (mut links, meter, _servers) = faulty_cluster(transport, None, &healthy_rec);
        let healthy = edsud::run_with_synopses(
            &mut links,
            &meter,
            0.3,
            mask(),
            BoundMode::Paper,
            None,
            None,
            FailurePolicy::Strict,
            BatchSize::Fixed(1),
            PipelineDepth::Fixed(1),
            WireFormat::Legacy,
            None,
        )
        .unwrap();

        // Stall(2) swallows two attempts; budget 2 grants two retries, so
        // the third attempt lands and the service never saw the stalls.
        let stalled_rec = Recorder::enabled();
        let (mut links, meter, _servers) =
            faulty_cluster(transport, Some((1, FaultMode::Stall(2), 4)), &stalled_rec);
        let stalled = edsud::run_with_synopses(
            &mut links,
            &meter,
            0.3,
            mask(),
            BoundMode::Paper,
            None,
            None,
            FailurePolicy::Strict,
            BatchSize::Fixed(1),
            PipelineDepth::Fixed(1),
            WireFormat::Legacy,
            None,
        )
        .unwrap_or_else(|e| panic!("{transport:?}: stall within budget failed: {e}"));

        assert!(!stalled.degraded, "{transport:?}: recovered run marked degraded");
        assert_eq!(
            skyline_fingerprint(&stalled),
            skyline_fingerprint(&healthy),
            "{transport:?}: stalled run answer diverged"
        );
        assert_eq!(
            stalled.traffic.tuples_transmitted(),
            healthy.traffic.tuples_transmitted(),
            "{transport:?}: swallowed attempts must not be metered"
        );
        assert_eq!(stalled_rec.counter(Counter::LinkRetries), 2, "{transport:?}");
        assert_eq!(stalled_rec.counter(Counter::LinkTimeouts), 2, "{transport:?}");
        assert_eq!(stalled_rec.counter(Counter::QuarantinedSites), 0, "{transport:?}");
    }
}

// --- protocol misbehavior (wrong replies, corrupt values) -----------------

#[test]
fn strict_wrong_reply_is_a_protocol_violation_naming_the_site() {
    let recorder = Recorder::disabled();
    let (mut links, meter, _servers) =
        faulty_cluster(Transport::Inline, Some((1, FaultMode::WrongReply, 3)), &recorder);
    let err = dsud::run_with_policy(
        &mut links,
        &meter,
        0.3,
        mask(),
        None,
        FailurePolicy::Strict,
        BatchSize::Fixed(1),
        PipelineDepth::Fixed(1),
        WireFormat::Legacy,
        None,
    );
    assert!(matches!(err, Err(Error::ProtocolViolation { site: 1, .. })), "got {err:?}");
}

#[test]
fn degrade_wrong_reply_quarantines_with_a_protocol_reason() {
    let recorder = Recorder::enabled();
    let (mut links, meter, _servers) =
        faulty_cluster(Transport::Inline, Some((2, FaultMode::WrongReply, 5)), &recorder);
    let outcome = edsud::run_with_synopses(
        &mut links,
        &meter,
        0.3,
        mask(),
        BoundMode::Paper,
        None,
        None,
        FailurePolicy::Degrade,
        BatchSize::Fixed(1),
        PipelineDepth::Fixed(1),
        WireFormat::Legacy,
        None,
    )
    .unwrap();
    assert!(outcome.degraded);
    assert!(
        matches!(outcome.sites[2].quarantined, Some(QuarantineReason::Protocol(_))),
        "site 2 status {:?}",
        outcome.sites[2]
    );
}

#[test]
fn fault_on_first_contact_is_caught() {
    let recorder = Recorder::disabled();
    let (mut links, meter, _servers) =
        faulty_cluster(Transport::Inline, Some((0, FaultMode::WrongReply, 0)), &recorder);
    let err = dsud::run_with_policy(
        &mut links,
        &meter,
        0.3,
        mask(),
        None,
        FailurePolicy::Strict,
        BatchSize::Fixed(1),
        PipelineDepth::Fixed(1),
        WireFormat::Legacy,
        None,
    );
    assert!(matches!(err, Err(Error::ProtocolViolation { site: 0, .. })), "got {err:?}");
}

#[test]
fn healthy_budget_large_enough_means_success() {
    // A fault scheduled after the query completes never fires.
    let recorder = Recorder::disabled();
    let (mut links, meter, _servers) =
        faulty_cluster(Transport::Inline, Some((1, FaultMode::WrongReply, u64::MAX)), &recorder);
    let outcome = edsud::run_with_synopses(
        &mut links,
        &meter,
        0.3,
        mask(),
        BoundMode::Paper,
        None,
        None,
        FailurePolicy::Strict,
        BatchSize::Fixed(1),
        PipelineDepth::Fixed(1),
        WireFormat::Legacy,
        None,
    )
    .unwrap();
    assert!(!outcome.skyline.is_empty());
    assert!(!outcome.degraded);
    assert!(outcome.sites.iter().all(dsud_core::SiteStatus::healthy));
}

#[test]
fn corrupted_survival_values_are_rejected() {
    let recorder = Recorder::disabled();
    let (mut links, meter, _servers) =
        faulty_cluster(Transport::Inline, Some((1, FaultMode::CorruptSurvival, 4)), &recorder);
    let err = edsud::run_with_synopses(
        &mut links,
        &meter,
        0.3,
        mask(),
        BoundMode::Paper,
        None,
        None,
        FailurePolicy::Strict,
        BatchSize::Fixed(1),
        PipelineDepth::Fixed(1),
        WireFormat::Legacy,
        None,
    );
    assert!(
        matches!(
            err,
            Err(Error::ProtocolViolation { site: 1, what: "survival product out of range" })
        ),
        "got {err:?}"
    );
}

// --- a really dead site: the service panics mid-query ---------------------

/// Wraps a site service and panics after `remaining` handled messages —
/// the worker thread (threaded) or accept loop (TCP) genuinely dies, so
/// the failure exercises the real transport error path, not an injected one.
struct PanicAfter<S> {
    inner: S,
    remaining: u64,
}

impl<S: Service> Service for PanicAfter<S> {
    fn handle(&mut self, msg: Message) -> Message {
        if self.remaining == 0 {
            panic!("site killed mid-query (injected by fault_tolerance test)");
        }
        self.remaining -= 1;
        self.inner.handle(msg)
    }
}

fn killed_site_cluster(
    transport: Transport,
    killed: usize,
    after: u64,
    recorder: &Recorder,
) -> (Vec<Box<dyn Link>>, BandwidthMeter, Vec<tcp::SiteServer>) {
    let meter = BandwidthMeter::with_recorder(recorder.clone());
    let cfg = fast_config();
    let mut links: Vec<Box<dyn Link>> = Vec::new();
    let mut servers = Vec::new();
    for (i, tuples) in site_data().into_iter().enumerate() {
        let site = LocalSite::new(i as u32, DIMS, tuples, SiteOptions::default()).unwrap();
        let link: Box<dyn Link> = match transport {
            Transport::Threaded if i == killed => {
                let doomed = PanicAfter { inner: site, remaining: after };
                boxed(ChannelLink::spawn_with(doomed, meter.clone(), cfg), None, cfg, recorder)
            }
            Transport::Tcp if i == killed => {
                let doomed = PanicAfter { inner: site, remaining: after };
                let server = tcp::spawn_site(doomed).expect("site server starts");
                let link = tcp::TcpLink::connect_with(server.addr(), meter.clone(), cfg)
                    .expect("link connects");
                servers.push(server);
                boxed(link, None, cfg, recorder)
            }
            Transport::Inline | Transport::Threaded => {
                boxed(ChannelLink::spawn_with(site, meter.clone(), cfg), None, cfg, recorder)
            }
            Transport::Tcp => {
                let server = tcp::spawn_site(site).expect("site server starts");
                let link = tcp::TcpLink::connect_with(server.addr(), meter.clone(), cfg)
                    .expect("link connects");
                servers.push(server);
                boxed(link, None, cfg, recorder)
            }
        };
        links.push(link);
    }
    (links, meter, servers)
}

#[test]
fn killing_a_site_mid_query_is_site_failed_under_strict() {
    for transport in [Transport::Threaded, Transport::Tcp] {
        let recorder = Recorder::disabled();
        let (mut links, meter, _servers) = killed_site_cluster(transport, 1, 3, &recorder);
        let err = dsud::run_with_policy(
            &mut links,
            &meter,
            0.3,
            mask(),
            None,
            FailurePolicy::Strict,
            BatchSize::Fixed(1),
            PipelineDepth::Fixed(1),
            WireFormat::Legacy,
            None,
        );
        match err {
            Err(Error::SiteFailed { site: 1, .. }) => {}
            other => panic!("{transport:?}: expected SiteFailed at site 1, got {other:?}"),
        }
    }
}

#[test]
fn killing_a_site_mid_query_degrades_and_names_it() {
    for transport in [Transport::Threaded, Transport::Tcp] {
        let recorder = Recorder::enabled();
        let (mut links, meter, _servers) = killed_site_cluster(transport, 1, 3, &recorder);
        let outcome = dsud::run_with_policy(
            &mut links,
            &meter,
            0.3,
            mask(),
            None,
            FailurePolicy::Degrade,
            BatchSize::Fixed(1),
            PipelineDepth::Fixed(1),
            WireFormat::Legacy,
            None,
        )
        .unwrap_or_else(|e| panic!("{transport:?}: degrade mode failed: {e}"));
        assert!(outcome.degraded, "{transport:?}: outcome not marked degraded");
        assert!(
            matches!(outcome.sites[1].quarantined, Some(QuarantineReason::Transport(_))),
            "{transport:?}: site 1 status {:?}",
            outcome.sites[1]
        );
        assert!(!outcome.skyline.is_empty(), "{transport:?}: empty skyline");
        assert_eq!(recorder.counter(Counter::QuarantinedSites), 1, "{transport:?}");
    }
}

// --- fault accounting is deterministic ------------------------------------

/// Retry, timeout, and quarantine counters are a pure function of the
/// fault schedule: the same schedule must produce bit-identical counters
/// and answers at every pool size and on every transport.
#[test]
fn retry_accounting_is_identical_across_pool_sizes_and_transports() {
    fn run_once(pool: usize, transport: Transport) -> (u64, u64, u64, Vec<(TupleId, u64)>) {
        threadpool::set_pool_size(pool);
        let recorder = Recorder::enabled();
        let (mut links, meter, _servers) =
            faulty_cluster(transport, Some((1, FaultMode::Drop, 6)), &recorder);
        let outcome = dsud::run_with_policy(
            &mut links,
            &meter,
            0.3,
            mask(),
            None,
            FailurePolicy::Degrade,
            BatchSize::Fixed(1),
            PipelineDepth::Fixed(1),
            WireFormat::Legacy,
            None,
        )
        .unwrap();
        threadpool::set_pool_size(0);
        (
            recorder.counter(Counter::LinkRetries),
            recorder.counter(Counter::LinkTimeouts),
            recorder.counter(Counter::QuarantinedSites),
            skyline_fingerprint(&outcome),
        )
    }

    let reference = run_once(1, Transport::Inline);
    assert_eq!(reference.2, 1, "exactly one site quarantined");
    for pool in [2, 8] {
        assert_eq!(run_once(pool, Transport::Inline), reference, "pool {pool} diverged");
    }
    for transport in [Transport::Threaded, Transport::Tcp] {
        assert_eq!(run_once(1, transport), reference, "{transport:?} diverged");
        assert_eq!(run_once(8, transport), reference, "{transport:?} at pool 8 diverged");
    }
}

// --- a site killed mid-served-query ---------------------------------------

/// The session-layer version of the mid-query kill: a seeded fault plan
/// kills a site while the `dsud serve` session machinery is executing a
/// query. Under `FailurePolicy::Degrade` the victim query is stamped
/// `degraded` and names its quarantined site, and — once the fault
/// windows drain — the *same served query* comes back bit-identical to a
/// deployment that never faulted. Sequential and fully deterministic:
/// each query advances the per-link attempt ordinals, so which query dies
/// is a pure function of the seed.
#[test]
fn site_killed_mid_served_query_degrades_then_recovers_exactly() {
    // First seed whose plans beat the retry budget outright: a hard-fault
    // window at least `retry_budget + 1` attempts long swallows one whole
    // request, so its owning query sees the site fail mid-flight.
    let attempts = u64::from(LinkConfig::default().retry_budget) + 1;
    let seed = (1..256)
        .find(|&seed| {
            (0..SITES as u32).any(|site| {
                FaultPlan::seeded(seed, site)
                    .windows()
                    .iter()
                    .any(|w| w.len >= attempts && !matches!(w.kind, FaultKind::Slow(_)))
            })
        })
        .expect("some seed in 1..256 produces a long hard-fault window");

    let reference = {
        let server = SessionServer::new(
            Cluster::local(DIMS, site_data()).expect("cluster builds"),
            SessionOptions::default(),
        );
        let cfg = QueryConfig::new(0.3).expect("valid threshold");
        skyline_fingerprint(&server.run_edsud(&cfg, false).expect("reference runs").outcome)
    };

    for transport in ALL_TRANSPORTS {
        let cluster = Cluster::with_transport_chaos(
            DIMS,
            site_data(),
            SiteOptions::default(),
            Recorder::enabled(),
            transport,
            LinkConfig::default(),
            seed,
        )
        .expect("cluster builds");
        // Cache off so the repeated query always exercises the links.
        let server = SessionServer::new(
            cluster,
            SessionOptions { cache_capacity: 0, ..SessionOptions::default() },
        );
        let cfg =
            QueryConfig::new(0.3).expect("valid threshold").failure_policy(FailurePolicy::Degrade);

        let mut saw_degraded = false;
        let mut recovered = false;
        for _ in 0..64 {
            let outcome = server.run_edsud(&cfg, false).expect("degrade never errors").outcome;
            if outcome.degraded {
                saw_degraded = true;
                assert!(
                    outcome.sites.iter().any(|s| s.quarantined.is_some()),
                    "{transport:?}: degraded outcome must name its quarantined site"
                );
                assert!(!outcome.skyline.is_empty(), "{transport:?}: degraded skyline empty");
            } else {
                assert_eq!(
                    skyline_fingerprint(&outcome),
                    reference,
                    "{transport:?}: non-degraded served answer diverged from clean reference"
                );
                if saw_degraded {
                    recovered = true;
                    break;
                }
            }
        }
        assert!(saw_degraded, "{transport:?}: the seeded kill never claimed a victim query");
        assert!(recovered, "{transport:?}: served queries never recovered the exact answer");
    }
}
