//! Bandwidth accounting invariants: the orderings the paper's evaluation
//! relies on must hold on deterministic seeded workloads, and the meter's
//! decomposition must be internally consistent.

use dsud_core::{baseline, BandwidthMeter, Cluster, QueryConfig, SiteOptions, SubspaceMask};
use dsud_data::{SpatialDistribution, WorkloadSpec};

fn run_pair(
    n: usize,
    dims: usize,
    m: usize,
    q: f64,
    seed: u64,
    spatial: SpatialDistribution,
) -> (dsud_core::QueryOutcome, dsud_core::QueryOutcome) {
    let sites =
        WorkloadSpec::new(n, dims).spatial(spatial).seed(seed).generate_partitioned(m).unwrap();
    let config = QueryConfig::new(q).unwrap();
    let mut a = Cluster::local(dims, sites.clone()).unwrap();
    let dsud = a.run_dsud(&config).unwrap();
    let mut b = Cluster::local(dims, sites).unwrap();
    let edsud = b.run_edsud(&config).unwrap();
    (dsud, edsud)
}

#[test]
fn edsud_never_exceeds_dsud_on_seeded_workloads() {
    for (seed, spatial) in [
        (1, SpatialDistribution::Independent),
        (2, SpatialDistribution::Anticorrelated),
        (3, SpatialDistribution::Independent),
        (4, SpatialDistribution::Anticorrelated),
    ] {
        let (dsud, edsud) = run_pair(2_000, 3, 10, 0.3, seed, spatial);
        assert!(
            edsud.tuples_transmitted() <= dsud.tuples_transmitted(),
            "seed {seed}: e-DSUD {} > DSUD {}",
            edsud.tuples_transmitted(),
            dsud.tuples_transmitted()
        );
    }
}

#[test]
fn both_beat_the_ship_everything_baseline() {
    let n = 3_000;
    let sites = WorkloadSpec::new(n, 3).seed(5).generate_partitioned(10).unwrap();
    let mask = SubspaceMask::full(3).unwrap();
    let meter = BandwidthMeter::new();
    let base = baseline::run(&sites, 3, 0.3, mask, &meter).unwrap();
    assert_eq!(base.tuples_transmitted(), n as u64);

    let config = QueryConfig::new(0.3).unwrap();
    let mut cluster = Cluster::local(3, sites).unwrap();
    let edsud = cluster.run_edsud(&config).unwrap();
    assert!(edsud.tuples_transmitted() < n as u64 / 2);
}

#[test]
fn ceiling_lower_bounds_everything() {
    for seed in [7, 8] {
        let (dsud, edsud) = run_pair(2_000, 3, 12, 0.3, seed, SpatialDistribution::Anticorrelated);
        let floor = baseline::ceiling(edsud.skyline.len(), 12);
        assert!(edsud.tuples_transmitted() >= floor);
        assert!(dsud.tuples_transmitted() >= floor);
    }
}

#[test]
fn traffic_decomposition_is_consistent() {
    let (dsud, edsud) = run_pair(1_500, 2, 8, 0.3, 9, SpatialDistribution::Independent);
    for out in [&dsud, &edsud] {
        let t = &out.traffic;
        assert_eq!(
            t.tuples_transmitted(),
            t.upload.tuples + t.feedback.tuples + t.maintenance.tuples
        );
        // Every broadcast reaches m−1 sites and elicits one reply each.
        assert_eq!(t.feedback.messages, t.reply.messages);
        assert_eq!(t.feedback.tuples, out.stats.broadcasts * 7);
        // Bytes flow wherever messages flow.
        assert!(t.upload.bytes > 0);
        assert!(t.total().bytes >= t.total().tuples * 30);
    }
    // DSUD broadcasts every fetched candidate; e-DSUD expunges some.
    assert!(edsud.stats.expunged > 0, "expected expunges on this workload");
    assert!(edsud.stats.broadcasts <= dsud.stats.broadcasts);
}

#[test]
fn pruning_reduces_uploads() {
    let sites = WorkloadSpec::new(2_000, 3)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(12)
        .generate_partitioned(10)
        .unwrap();
    let config = QueryConfig::new(0.3).unwrap();
    let mut with = Cluster::local(3, sites.clone()).unwrap();
    let on = with.run_dsud(&config).unwrap();
    let mut without = Cluster::local_with_options(
        3,
        sites,
        SiteOptions { pruning: false, ..SiteOptions::default() },
    )
    .unwrap();
    let off = without.run_dsud(&config).unwrap();
    assert!(
        on.traffic.upload.tuples <= off.traffic.upload.tuples,
        "pruning on {} vs off {}",
        on.traffic.upload.tuples,
        off.traffic.upload.tuples
    );
    assert!(on.stats.pruned_at_sites > 0);
    assert_eq!(off.stats.pruned_at_sites, 0);
}

#[test]
fn bandwidth_grows_with_sites() {
    let mut last = 0;
    for m in [4, 8, 16, 32] {
        let sites = WorkloadSpec::new(2_000, 3).seed(20).generate_partitioned(m).unwrap();
        let mut cluster = Cluster::local(3, sites).unwrap();
        let out = cluster.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();
        assert!(
            out.tuples_transmitted() > last,
            "m={m}: {} should exceed {last}",
            out.tuples_transmitted()
        );
        last = out.tuples_transmitted();
    }
}

#[test]
fn bandwidth_shrinks_with_threshold() {
    let sites = WorkloadSpec::new(2_000, 3)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(21)
        .generate_partitioned(10)
        .unwrap();
    let mut previous = u64::MAX;
    for q in [0.3, 0.5, 0.7, 0.9] {
        let mut cluster = Cluster::local(3, sites.clone()).unwrap();
        let out = cluster.run_edsud(&QueryConfig::new(q).unwrap()).unwrap();
        assert!(
            out.tuples_transmitted() <= previous,
            "q={q}: {} should not exceed {previous}",
            out.tuples_transmitted()
        );
        previous = out.tuples_transmitted();
    }
}
