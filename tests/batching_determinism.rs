//! The batching contract: coalescing `K` candidates per feedback round
//! (`--batch K`) must never change the answer. Skyline contents and order,
//! exact probabilities (to the bit), per-site prune counters, and tuple
//! traffic must all match the `--batch 1` run at every batch size, pool
//! size, and transport — only *message* and *byte* counts may shrink.
//!
//! Progress-event traffic stamps are legitimately excluded from the
//! comparison: a batched round reports its results after the round's
//! coalesced frames, so the "tuples transmitted so far" watermark at each
//! report differs even though the reported tuples and totals do not.

use dsud_core::{
    BatchSize, Cluster, QueryConfig, QueryOutcome, Recorder, SiteOptions, Transport, WireFormat,
};
use dsud_data::WorkloadSpec;
use dsud_uncertain::TupleId;

/// Wire layout under test: `DSUD_WIRE=columnar|legacy` (legacy default),
/// so CI can run the whole determinism matrix under both layouts.
fn wire_from_env() -> WireFormat {
    std::env::var("DSUD_WIRE").ok().and_then(|v| v.parse().ok()).unwrap_or_default()
}

const N: usize = 1_500;
const DIMS: usize = 3;
const SITES: usize = 8;
const Q: f64 = 0.3;

fn sites() -> Vec<Vec<dsud_uncertain::UncertainTuple>> {
    WorkloadSpec::new(N, DIMS).seed(42).generate_partitioned(SITES).expect("workload generates")
}

/// Everything batching must preserve: the skyline (ids, bit-exact
/// probabilities, report order), the progress sequence (minus traffic
/// stamps), and the paper's bandwidth measure in tuples.
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>, u64) {
    let skyline: Vec<(TupleId, u64)> =
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect();
    let progress: Vec<(TupleId, u64)> =
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect();
    (skyline, progress, outcome.tuples_transmitted())
}

fn run(batch: BatchSize, transport: Transport, pool: usize, edsud: bool) -> QueryOutcome {
    threadpool::set_pool_size(pool);
    let mut cluster = Cluster::with_transport(
        DIMS,
        sites(),
        SiteOptions::default(),
        Recorder::default(),
        transport,
    )
    .expect("cluster builds");
    let config = QueryConfig::new(Q)
        .expect("valid threshold")
        .batch_size(batch)
        .wire_format(wire_from_env());
    let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
    threadpool::set_pool_size(0);
    outcome.expect("query runs")
}

const BATCHES: [BatchSize; 3] = [BatchSize::Fixed(4), BatchSize::Fixed(16), BatchSize::Auto];

#[test]
fn dsud_batched_outcome_is_bit_identical_to_unbatched() {
    let reference = run(BatchSize::Fixed(1), Transport::Inline, 1, false);
    assert!(!reference.skyline.is_empty(), "workload must produce a non-trivial skyline");
    for batch in BATCHES {
        for (transport, pools) in [
            (Transport::Inline, &[1usize, 2, 8][..]),
            (Transport::Threaded, &[2][..]),
            (Transport::Tcp, &[2][..]),
        ] {
            for &pool in pools {
                let outcome = run(batch, transport, pool, false);
                assert_eq!(
                    fingerprint(&outcome),
                    fingerprint(&reference),
                    "batch {batch} {transport} pool {pool}"
                );
                assert_eq!(outcome.stats, reference.stats, "batch {batch} {transport} pool {pool}");
            }
        }
    }
}

#[test]
fn edsud_batched_outcome_is_bit_identical_to_unbatched() {
    let reference = run(BatchSize::Fixed(1), Transport::Inline, 1, true);
    assert!(!reference.skyline.is_empty());
    for batch in BATCHES {
        for (transport, pools) in [
            (Transport::Inline, &[1usize, 2, 8][..]),
            (Transport::Threaded, &[2][..]),
            (Transport::Tcp, &[2][..]),
        ] {
            for &pool in pools {
                let outcome = run(batch, transport, pool, true);
                assert_eq!(
                    fingerprint(&outcome),
                    fingerprint(&reference),
                    "batch {batch} {transport} pool {pool}"
                );
                assert_eq!(outcome.stats, reference.stats, "batch {batch} {transport} pool {pool}");
            }
        }
    }
}

/// The per-round message saving is `O(K·m) → O(m + K)`, so it grows with
/// the site count; measure it at the paper's Table 3 scale (`m = 32` here,
/// `m = 60` in the benchmarks) rather than the 8-site determinism matrix.
fn run_wide(batch: BatchSize, edsud: bool) -> QueryOutcome {
    let sites =
        WorkloadSpec::new(N, DIMS).seed(42).generate_partitioned(32).expect("workload generates");
    let mut cluster = Cluster::with_transport(
        DIMS,
        sites,
        SiteOptions::default(),
        Recorder::default(),
        Transport::Inline,
    )
    .expect("cluster builds");
    let config = QueryConfig::new(Q)
        .expect("valid threshold")
        .batch_size(batch)
        .wire_format(wire_from_env());
    let outcome = if edsud { cluster.run_edsud(&config) } else { cluster.run_dsud(&config) };
    outcome.expect("query runs")
}

#[test]
fn batching_cuts_messages_at_least_five_fold() {
    for edsud in [false, true] {
        let unbatched = run_wide(BatchSize::Fixed(1), edsud);
        let batched = run_wide(BatchSize::Fixed(16), edsud);
        assert_eq!(fingerprint(&batched), fingerprint(&unbatched));

        let m1 = unbatched.traffic.total();
        let m16 = batched.traffic.total();
        // e-DSUD's traffic is dominated by expunge refills — one
        // RequestNext/Upload pair per expunged candidate, which ships no
        // feedback and so cannot be coalesced — hence its overall ratio
        // sits below DSUD's even though its feedback frames shrink just
        // as much.
        let floor = if edsud { 2 } else { 5 };
        assert!(
            m16.messages * floor <= m1.messages,
            "edsud={edsud}: {} batched messages vs {} unbatched (need {floor}x)",
            m16.messages,
            m1.messages
        );
        assert!(
            m16.bytes < m1.bytes,
            "edsud={edsud}: {} batched bytes vs {} unbatched",
            m16.bytes,
            m1.bytes
        );
        // The paper's tuple measure is untouched: the same tuples flow,
        // just in fewer frames.
        assert_eq!(m16.tuples, m1.tuples, "edsud={edsud}");
    }
}

#[test]
fn auto_batching_tracks_queue_depth() {
    // With 8 sites the queue never exceeds 8 candidates, so `auto` rounds
    // coalesce up to 8; outcomes still match the fixed-16 run exactly.
    let auto = run(BatchSize::Auto, Transport::Inline, 1, false);
    let fixed = run(BatchSize::Fixed(16), Transport::Inline, 1, false);
    assert_eq!(fingerprint(&auto), fingerprint(&fixed));
    assert_eq!(auto.stats, fixed.stats);
}
