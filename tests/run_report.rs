//! End-to-end observability: a small in-process DSUD / e-DSUD run must
//! produce a complete, serializable run report.

use dsud_core::{Cluster, Counter, QueryConfig, Recorder, RunReport, SiteOptions};
use dsud_uncertain::{Probability, TupleId, UncertainTuple};

/// Deterministic workload: `sites × per_site` tuples in `[0, 100)^2` with
/// probabilities in `[0.05, 1.0]`.
fn workload(sites: usize, per_site: usize) -> Vec<Vec<UncertainTuple>> {
    let mut state = 0x5eed_1234_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    (0..sites)
        .map(|s| {
            (0..per_site)
                .map(|i| {
                    let values = vec![next() * 100.0, next() * 100.0];
                    let p = Probability::new((next() * 0.95 + 0.05).min(1.0)).unwrap();
                    UncertainTuple::new(TupleId::new(s as u32, i as u64), values, p).unwrap()
                })
                .collect()
        })
        .collect()
}

fn instrumented_run(edsud: bool) -> (RunReport, usize) {
    let recorder = Recorder::enabled();
    let mut cluster =
        Cluster::local_instrumented(2, workload(4, 50), SiteOptions::default(), recorder.clone())
            .expect("valid workload");
    let config = QueryConfig::new(0.3).expect("valid threshold");
    let outcome = if edsud {
        cluster.run_edsud(&config).expect("query succeeds")
    } else {
        cluster.run_dsud(&config).expect("query succeeds")
    };
    let name = if edsud { "edsud" } else { "dsud" };
    (recorder.report(name).expect("recorder is enabled"), outcome.skyline.len())
}

fn assert_report_is_complete(report: &RunReport, skyline_len: usize) {
    assert_eq!(report.schema_version, dsud_obs::SCHEMA_VERSION);
    assert!(report.counters.bytes_sent > 0, "a distributed run moves bytes");
    assert!(report.counters.messages > 0);
    assert!(report.counters.tuples_shipped > 0);
    assert!(report.counters.rounds >= 1, "at least one coordinator round");
    assert!(report.counters.feedback_broadcasts >= 1);
    assert!(report.counters.local_skyline_size >= 1, "sites computed local skylines");
    assert!(report.counters.prtree_nodes_visited >= 1, "BBS visited the trees");
    assert_eq!(report.counters.progressive_results as usize, skyline_len);
    assert_eq!(report.progressive.len(), skyline_len);

    // Progressive timestamps and cumulative bandwidth are monotone.
    for pair in report.progressive.windows(2) {
        assert!(pair[0].at_us <= pair[1].at_us, "timestamps go forward");
        assert!(pair[0].tuples_transmitted <= pair[1].tuples_transmitted);
    }

    // Cluster assembly and the query each open a root span; the span tree
    // is well-formed.
    assert_eq!(report.spans[0].name, "cluster:build");
    assert_eq!(report.spans[0].parent, None);
    let query = report
        .spans
        .iter()
        .position(|s| s.name.starts_with("query:"))
        .expect("the query opens a span");
    assert_eq!(report.spans[query].parent, None);
    assert!(report.spans.iter().any(|s| s.name == "round"));
    assert!(report.spans.iter().any(|s| s.name == "server-delivery"));

    // Per-phase totals aggregate the span tree by label (name-sorted).
    for name in ["cluster:build", "round", "server-delivery"] {
        let phase = report
            .phases
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("phase total for {name}"));
        let spans = report.spans.iter().filter(|s| s.name == name).count();
        assert_eq!(phase.count as usize, spans, "{name}");
    }
    assert!(report.phases.windows(2).all(|w| w[0].name < w[1].name), "phases sorted by name");
    for (i, span) in report.spans.iter().enumerate() {
        if let Some(parent) = span.parent {
            assert!(parent < i, "parents precede children");
        }
        let end = span.end_us.expect("all spans closed after the run");
        assert!(end >= span.start_us);
    }
}

#[test]
fn dsud_run_produces_a_complete_report() {
    let (report, skyline_len) = instrumented_run(false);
    assert_eq!(report.algorithm, "dsud");
    assert_report_is_complete(&report, skyline_len);
}

#[test]
fn edsud_run_produces_a_complete_report() {
    let (report, skyline_len) = instrumented_run(true);
    assert_eq!(report.algorithm, "edsud");
    assert_report_is_complete(&report, skyline_len);
    assert!(report.spans.iter().any(|s| s.name == "expunge"));
}

/// The expunge span is opened once per coordinator round — not once per
/// expunge probe. A batched e-DSUD run expunges many candidates per round,
/// so a per-probe span would overshoot the round count immediately.
#[test]
fn expunge_spans_are_per_round_not_per_probe() {
    use dsud_core::BatchSize;
    let recorder = Recorder::enabled();
    let mut cluster =
        Cluster::local_instrumented(2, workload(4, 50), SiteOptions::default(), recorder.clone())
            .expect("valid workload");
    let config = QueryConfig::new(0.3).expect("valid threshold").batch_size(BatchSize::Auto);
    cluster.run_edsud(&config).expect("query succeeds");
    let report = recorder.report("edsud").expect("recorder is enabled");

    let expunge_spans = report.spans.iter().filter(|s| s.name == "expunge").count();
    let round_spans = report.spans.iter().filter(|s| s.name == "round").count();
    assert!(expunge_spans >= 1, "the workload must exercise expunge");
    assert!(
        expunge_spans <= round_spans,
        "{expunge_spans} expunge spans for {round_spans} rounds — the span must be per round"
    );
    assert!(
        report.counters.expunged > expunge_spans as u64,
        "{} expunged candidates across {expunge_spans} spans — the workload must expunge \
         more than once per round for this test to bite",
        report.counters.expunged
    );
}

/// A pipelined run stamps the schema-5 counters: the configured window,
/// the number of overlapped rounds, and the overlap wall-clock total.
#[test]
fn pipelined_runs_report_overlap_counters() {
    use dsud_core::PipelineDepth;
    for edsud in [false, true] {
        let recorder = Recorder::enabled();
        let mut cluster = Cluster::local_instrumented(
            2,
            workload(4, 50),
            SiteOptions::default(),
            recorder.clone(),
        )
        .expect("valid workload");
        let config =
            QueryConfig::new(0.3).expect("valid threshold").pipeline_depth(PipelineDepth::Fixed(4));
        let name = if edsud {
            cluster.run_edsud(&config).expect("query succeeds");
            "edsud"
        } else {
            cluster.run_dsud(&config).expect("query succeeds");
            "dsud"
        };
        let report = recorder.report(name).expect("recorder is enabled");
        assert_eq!(report.counters.pipeline_depth, 4, "{name}");
        assert!(report.counters.overlapped_rounds > 0, "{name} overlapped no rounds");
        assert!(
            report.counters.overlapped_rounds <= report.counters.rounds,
            "{name}: at most one overlap per round"
        );
        assert!(report.spans.iter().any(|s| s.name == "overlap"), "{name} opened overlap spans");

        // The sequential run reports the degenerate window and no overlap.
        let recorder = Recorder::enabled();
        let mut cluster = Cluster::local_instrumented(
            2,
            workload(4, 50),
            SiteOptions::default(),
            recorder.clone(),
        )
        .expect("valid workload");
        let config = QueryConfig::new(0.3).expect("valid threshold");
        if edsud {
            cluster.run_edsud(&config).expect("query succeeds");
        } else {
            cluster.run_dsud(&config).expect("query succeeds");
        }
        let report = recorder.report(name).expect("recorder is enabled");
        assert_eq!(report.counters.pipeline_depth, 1, "{name}");
        assert_eq!(report.counters.overlapped_rounds, 0, "{name}");
        assert_eq!(report.counters.refill_overlap_us, 0, "{name}");
    }
}

#[test]
fn report_round_trips_through_serde_json() {
    let (report, _) = instrumented_run(true);
    let json = serde_json::to_string_pretty(&report).unwrap();
    let back: RunReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
    assert!(json.contains(&format!("\"schema_version\": {}", dsud_obs::SCHEMA_VERSION)));
}

#[test]
fn uninstrumented_clusters_report_nothing() {
    let mut cluster = Cluster::local(2, workload(3, 30)).expect("valid workload");
    let outcome = cluster.run_dsud(&QueryConfig::new(0.3).unwrap()).expect("query succeeds");
    assert!(outcome.traffic.total().bytes > 0, "the run itself still happened");
    assert!(!cluster.recorder().is_enabled());
    assert_eq!(cluster.recorder().counter(Counter::Rounds), 0);
    assert!(cluster.recorder().report("dsud").is_none());
}

#[test]
fn instrumented_and_plain_runs_agree() {
    let config = QueryConfig::new(0.3).unwrap();
    let mut plain = Cluster::local(2, workload(4, 50)).unwrap();
    let mut instrumented = Cluster::local_instrumented(
        2,
        workload(4, 50),
        SiteOptions::default(),
        Recorder::enabled(),
    )
    .unwrap();
    let a = plain.run_dsud(&config).unwrap();
    let b = instrumented.run_dsud(&config).unwrap();
    let ids =
        |o: &dsud_core::QueryOutcome| o.skyline.iter().map(|e| e.tuple.id()).collect::<Vec<_>>();
    assert_eq!(ids(&a), ids(&b), "observability must not change the answer");
    assert_eq!(a.tuples_transmitted(), b.tuples_transmitted());
}
