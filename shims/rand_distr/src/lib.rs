//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides [`Normal`] and [`LogNormal`] sampling via the Box–Muller
//! transform, which is all this workspace's data generators need.
//! Built for a hermetic environment with no crates.io access.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that can be sampled given an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid normal distribution parameters")
    }
}

impl std::error::Error for NormalError {}

fn box_muller<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Standard normal via Box–Muller; u1 is kept away from 0 so ln() is finite.
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution; errs on non-finite or negative `std_dev`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * box_muller(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates the distribution; errs on non-finite or negative `sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NormalError> {
        Ok(LogNormal { norm: Normal::new(mu, sigma)? })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_roughly_match() {
        let mut rng = StdRng::seed_from_u64(11);
        let dist = Normal::new(2.0, 0.5).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "sd {}", var.sqrt());
    }

    #[test]
    fn lognormal_positive() {
        let mut rng = StdRng::seed_from_u64(12);
        let dist = LogNormal::new(0.0, 1.0).unwrap();
        assert!((0..1000).all(|_| dist.sample(&mut rng) > 0.0));
    }

    #[test]
    fn rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
