//! Offline stand-in for the `bytes` crate.
//!
//! The workspace is built in a hermetic environment without access to
//! crates.io, so this shim provides the (small) subset of the real crate's
//! API that `dsud-net` uses: [`Bytes`] as a cheaply cloneable, consumable
//! byte buffer, [`BytesMut`] as a growable builder, and the big-endian
//! [`Buf`]/[`BufMut`] accessors. Semantics match the real crate for this
//! subset; swap the workspace dependency back to crates.io to drop it.

#![forbid(unsafe_code)]

use std::ops::Range;
use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer with a consuming read cursor.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Remaining (unconsumed) length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a sub-buffer of the remaining bytes (shares the allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow");
        let mut out = [0u8; N];
        out.copy_from_slice(&self.data[self.start..self.start + N]);
        self.start += N;
        out
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// A growable byte buffer used to assemble wire frames.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty builder with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clears the buffer, keeping the allocation for reuse.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian read accessors over a consumable buffer.
pub trait Buf {
    /// Number of unconsumed bytes.
    fn remaining(&self) -> usize;

    /// Whether any unconsumed bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;
    /// Consumes a big-endian `u16`.
    fn get_u16(&mut self) -> u16;
    /// Consumes a big-endian `u32`.
    fn get_u32(&mut self) -> u32;
    /// Consumes a big-endian `u64`.
    fn get_u64(&mut self) -> u64;
    /// Consumes a big-endian `f64`.
    fn get_f64(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_array())
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_array())
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_array())
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        take_slice_array::<1>(self)[0]
    }

    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(take_slice_array(self))
    }

    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(take_slice_array(self))
    }

    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(take_slice_array(self))
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_be_bytes(take_slice_array(self))
    }
}

fn take_slice_array<const N: usize>(buf: &mut &[u8]) -> [u8; N] {
    assert!(buf.len() >= N, "buffer underflow");
    let mut out = [0u8; N];
    out.copy_from_slice(&buf[..N]);
    *buf = &buf[N..];
    out
}

/// Big-endian write accessors over a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, bytes: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_slice(&mut self, bytes: &[u8]) {
        (**self).put_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u16(0x0102);
        b.put_u32(0xdeadbeef);
        b.put_u64(42);
        b.put_f64(1.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u16(), 0x0102);
        assert_eq!(bytes.get_u32(), 0xdeadbeef);
        assert_eq!(bytes.get_u64(), 42);
        assert_eq!(bytes.get_f64(), 1.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_shares_and_bounds() {
        let bytes = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = bytes.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        assert_eq!(s.slice(0..0).len(), 0);
    }
}
