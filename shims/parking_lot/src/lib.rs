//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`/`RwLock` to present the poison-free
//! `parking_lot` API surface used by this workspace (`lock()`/`read()`/
//! `write()` returning guards directly). Built because the workspace is
//! compiled in a hermetic environment without crates.io access.

#![forbid(unsafe_code)]

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Poison-free mutex mirroring `parking_lot::Mutex` for the subset used here.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot has none).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader–writer lock mirroring `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
