//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of `rand` 0.8 that this workspace uses:
//! [`RngCore`]/[`Rng`] with `gen`, `gen_range`, and `gen_bool`,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256++
//! seeded via splitmix64 — deterministic but *not* the same stream as
//! the real `StdRng`), and [`seq::SliceRandom::shuffle`]. Built for a
//! hermetic environment with no crates.io access; everything is
//! deterministic given a seed, which is all the workspace relies on.

#![forbid(unsafe_code)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper bits of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`].
pub trait FromRng {
    /// Draws a uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling; bias is negligible for
                // the small ranges this workspace draws from.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + v as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == 0 && end as u64 == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample(rng)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::from_rng(rng) * (end - start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    ///
    /// Stream differs from the real `StdRng` (ChaCha12); the workspace only
    /// requires determinism per seed, not stream compatibility.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<f64>()).collect()
        };
        let b: Vec<f64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.gen::<f64>()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..10usize);
            assert!((3..10).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.gen_range(0.5..2.0f64);
            assert!((0.5..2.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
