//! Offline shim: deterministic scoped data-parallelism over std threads.
//!
//! The workspace's compute hot paths (centralized skyline probabilities,
//! STR bulk loading, coordinator fan-out) are data-parallel over
//! independent items, but must stay *bit-for-bit deterministic*: the
//! distributed protocols are tested against sequential reference
//! implementations, so a parallel run may not reorder a single float
//! operation. This shim therefore offers only work-stealing-free
//! primitives whose output is a pure function of the input:
//!
//! * [`parallel_map`] / [`parallel_map_vec`] — split the input into
//!   *contiguous* chunks, one per worker, and concatenate the per-chunk
//!   results in input order. Each output element is produced by exactly
//!   the same closure invocation as in a sequential map.
//! * [`par_sort_by`] — chunk-local stable sorts followed by left-preferring
//!   stable merges; the result equals `slice::sort_by` (a stable sort's
//!   output is unique), for every pool size.
//! * [`scope`] — re-export of [`std::thread::scope`] for ad-hoc structured
//!   concurrency.
//!
//! The pool size comes from, in priority order: a programmatic
//! [`set_pool_size`] override (tests and benchmarks), the `DSUD_THREADS`
//! environment variable, and [`std::thread::available_parallelism`].
//! `DSUD_THREADS=1` (or `set_pool_size(1)`) is the documented sequential
//! fallback: every primitive then runs inline on the caller's stack.
//!
//! No threads are kept alive between calls: workers are scoped
//! [`std::thread`]s, so the shim needs no shutdown story and cannot leak.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};

pub use std::thread::scope;

/// Upper bound on the pool size; protects against absurd `DSUD_THREADS`
/// values.
pub const MAX_THREADS: usize = 64;

/// `0` means "no override"; set via [`set_pool_size`].
static POOL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the pool size for the whole process, taking precedence over
/// `DSUD_THREADS`. Passing `0` clears the override.
///
/// Intended for tests and benchmarks that compare thread counts without
/// mutating the process environment (which would race with other tests).
pub fn set_pool_size(n: usize) {
    POOL_OVERRIDE.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

/// The number of worker threads parallel operations may use.
///
/// Resolution order: [`set_pool_size`] override, then the `DSUD_THREADS`
/// environment variable, then [`std::thread::available_parallelism`];
/// always at least 1 and at most [`MAX_THREADS`].
pub fn pool_size() -> usize {
    let overridden = POOL_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden.clamp(1, MAX_THREADS);
    }
    if let Ok(var) = std::env::var("DSUD_THREADS") {
        if let Ok(n) = var.trim().parse::<usize>() {
            if n > 0 {
                return n.clamp(1, MAX_THREADS);
            }
        }
    }
    std::thread::available_parallelism().map(usize::from).unwrap_or(1).clamp(1, MAX_THREADS)
}

/// Inputs shorter than this are always mapped inline: spawning costs more
/// than the work saved.
const MIN_ITEMS_TO_SPAWN: usize = 32;

/// Maps `f` over `items`, returning results in input order.
///
/// `f` receives the item's index and a reference to it. The input is split
/// into contiguous chunks, one per pool worker; with a pool of 1 (or a
/// small input) the map runs inline. Either way the result is exactly
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`.
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = pool_size().min(items.len());
    if workers <= 1 || items.len() < MIN_ITEMS_TO_SPAWN {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut out = Vec::with_capacity(items.len());
    scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(w, slice)| {
                let f = &f;
                s.spawn(move || {
                    slice.iter().enumerate().map(|(j, t)| f(w * chunk + j, t)).collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });
    out
}

/// Consuming variant of [`parallel_map`]: moves each item into `f`.
///
/// Results come back in input order, exactly as
/// `items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect()`.
///
/// # Panics
///
/// Propagates a panic from `f`.
pub fn parallel_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = pool_size().min(items.len());
    if workers <= 1 || items.len() < MIN_ITEMS_TO_SPAWN {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let chunks = split_into_chunks(items, chunk);
    let mut out = Vec::new();
    scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(w, slab)| {
                let f = &f;
                s.spawn(move || {
                    slab.into_iter()
                        .enumerate()
                        .map(|(j, t)| f(w * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });
    out
}

/// Sorts in parallel with the exact result of a sequential stable
/// [`slice::sort_by`].
///
/// Contiguous chunks are stable-sorted on the pool, then merged pairwise
/// with ties preferring the left (earlier-index) run. A stable sort's
/// output is uniquely determined — elements ordered by `(key, original
/// index)` — so the result is identical for every pool size, including the
/// sequential fallback.
///
/// # Panics
///
/// Propagates a panic from `cmp` (e.g. on incomparable keys).
pub fn par_sort_by<T, F>(items: &mut Vec<T>, cmp: F)
where
    T: Send,
    F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
{
    const MIN_ITEMS_TO_SORT_PARALLEL: usize = 4096;
    let workers = pool_size();
    if workers <= 1 || items.len() < MIN_ITEMS_TO_SORT_PARALLEL {
        items.sort_by(|a, b| cmp(a, b));
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let mut runs = split_into_chunks(std::mem::take(items), chunk);
    scope(|s| {
        for run in &mut runs {
            let cmp = &cmp;
            s.spawn(move || run.sort_by(|a, b| cmp(a, b)));
        }
    });
    // Merge adjacent runs until one remains; each round merges pairs on
    // the pool. Left-preferring merges keep the overall sort stable.
    while runs.len() > 1 {
        let mut paired: Vec<(Vec<T>, Option<Vec<T>>)> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut it = runs.into_iter();
        while let Some(left) = it.next() {
            paired.push((left, it.next()));
        }
        runs = if paired.len() > 1 {
            let mut merged = Vec::with_capacity(paired.len());
            scope(|s| {
                let handles: Vec<_> = paired
                    .into_iter()
                    .map(|(left, right)| {
                        let cmp = &cmp;
                        s.spawn(move || match right {
                            Some(right) => merge_stable(left, right, cmp),
                            None => left,
                        })
                    })
                    .collect();
                for h in handles {
                    merged.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
                }
            });
            merged
        } else {
            paired
                .into_iter()
                .map(|(left, right)| match right {
                    Some(right) => merge_stable(left, right, &cmp),
                    None => left,
                })
                .collect()
        };
    }
    *items = runs.pop().unwrap_or_default();
}

/// Splits a vector into owned contiguous chunks of at most `chunk` items.
fn split_into_chunks<T>(mut items: Vec<T>, chunk: usize) -> Vec<Vec<T>> {
    let mut chunks = Vec::with_capacity(items.len().div_ceil(chunk.max(1)));
    while items.len() > chunk {
        let tail = items.split_off(chunk);
        chunks.push(std::mem::replace(&mut items, tail));
    }
    chunks.push(items);
    chunks
}

/// Stable two-way merge preferring the left run on ties.
fn merge_stable<T, F>(left: Vec<T>, right: Vec<T>, cmp: &F) -> Vec<T>
where
    F: Fn(&T, &T) -> std::cmp::Ordering,
{
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut l = left.into_iter().peekable();
    let mut r = right.into_iter().peekable();
    loop {
        match (l.peek(), r.peek()) {
            (Some(a), Some(b)) => {
                if cmp(b, a) == std::cmp::Ordering::Less {
                    out.push(r.next().expect("peeked"));
                } else {
                    out.push(l.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(l.next().expect("peeked")),
            (None, Some(_)) => out.push(r.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that touch the global pool override.
    static POOL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_pool<R>(n: usize, f: impl FnOnce() -> R) -> R {
        let _guard = POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_size(n);
        let out = f();
        set_pool_size(0);
        out
    }

    #[test]
    fn pool_size_is_at_least_one() {
        assert!(pool_size() >= 1);
        assert!(pool_size() <= MAX_THREADS);
    }

    #[test]
    fn override_wins_and_clears() {
        with_pool(3, || assert_eq!(pool_size(), 3));
    }

    #[test]
    fn map_matches_sequential_for_every_pool_size() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, x)| x * 2 + i as u64).collect();
        for n in [1, 2, 3, 8] {
            let got = with_pool(n, || parallel_map(&items, |i, x| x * 2 + i as u64));
            assert_eq!(got, expected, "pool size {n}");
        }
    }

    #[test]
    fn map_vec_consumes_in_order() {
        let items: Vec<String> = (0..500).map(|i| format!("s{i}")).collect();
        let expected = items.clone();
        for n in [1, 4] {
            let got = with_pool(n, || parallel_map_vec(items.clone(), |_, s| s));
            assert_eq!(got, expected, "pool size {n}");
        }
    }

    #[test]
    fn small_inputs_run_inline() {
        let got = with_pool(8, || parallel_map(&[1, 2, 3], |_, x| x + 1));
        assert_eq!(got, vec![2, 3, 4]);
        assert!(with_pool(8, || parallel_map(&[] as &[i32], |_, x| *x)).is_empty());
    }

    #[test]
    fn sort_equals_stable_sort_for_every_pool_size() {
        // Keys collide on purpose: stability is the whole contract.
        let items: Vec<(u32, usize)> =
            (0..10_000).map(|i| (((i * 2654435761usize) % 97) as u32, i)).collect();
        let mut expected = items.clone();
        expected.sort_by(|a, b| a.0.cmp(&b.0));
        for n in [1, 2, 5, 8] {
            let mut got = items.clone();
            with_pool(n, || par_sort_by(&mut got, |a, b| a.0.cmp(&b.0)));
            assert_eq!(got, expected, "pool size {n}");
        }
    }

    #[test]
    fn sort_handles_small_and_empty() {
        let mut v: Vec<i32> = vec![];
        par_sort_by(&mut v, |a, b| a.cmp(b));
        assert!(v.is_empty());
        let mut v = vec![3, 1, 2];
        par_sort_by(&mut v, |a, b| a.cmp(b));
        assert_eq!(v, vec![1, 2, 3]);
    }
}
