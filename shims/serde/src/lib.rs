//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this hermetic build environment, so
//! this shim provides a small value-tree model instead of serde's
//! visitor-based architecture: [`Serialize`] renders a type into a
//! [`Value`], [`Deserialize`] reads one back, and the sibling `serde_json`
//! shim converts [`Value`] to and from JSON text. The derive macros
//! (re-exported from the local `serde_derive` shim) follow serde's data
//! model for the shapes this workspace uses: externally-tagged enums,
//! transparent single-field tuple structs, `#[serde(skip)]`, and
//! `#[serde(try_from = "T", into = "T")]`.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed/rendered data tree, mirroring the JSON data model.
///
/// Maps preserve insertion order as a `Vec` of pairs, which keeps
/// serialization deterministic and field order stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (negative JSON numbers).
    I64(i64),
    /// Unsigned integer (non-negative JSON integers).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Borrows the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field by name in a map's entries.
pub fn get_field<'a>(map: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// (De)serialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Types readable from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads an instance from a data tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// The value used when a struct field is absent (`Some(None)` for
    /// `Option<T>`, `None` — i.e. an error — for required fields).
    fn missing() -> Option<Self> {
        None
    }
}

// --- primitives ------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) if *n <= i64::MAX as u64 => *n as i64,
                    Value::F64(f)
                        if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 =>
                    {
                        *f as i64
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// --- references / containers ----------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::custom("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! serde_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$i.to_value()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected sequence"))?;
                const LEN: usize = 0 $(+ { let _ = $i; 1 })+;
                if seq.len() != LEN {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($t::from_value(&seq[$i])?,)+))
            }
        }
    )*};
}
serde_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

/// JSON objects require string keys; these key types render to strings.
pub trait MapKey: Sized {
    /// Renders the key.
    fn to_key(&self) -> String;
    /// Parses the key.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the string is not a valid key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }

    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }

            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom("invalid integer map key"))
            }
        }
    )*};
}
map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_value())).collect())
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

// --- std types with serde-conventional encodings ---------------------------

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            ("nanos".to_string(), Value::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map().ok_or_else(|| Error::custom("expected {secs, nanos} map"))?;
        let secs = get_field(m, "secs")
            .map(u64::from_value)
            .transpose()?
            .ok_or_else(|| Error::custom("missing field `secs`"))?;
        let nanos = get_field(m, "nanos")
            .map(u32::from_value)
            .transpose()?
            .ok_or_else(|| Error::custom("missing field `nanos`"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_semantics() {
        assert_eq!(<Option<u32> as Deserialize>::missing(), Some(None));
        assert_eq!(<u32 as Deserialize>::missing(), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(u32::from_value(&Value::U64(7)).unwrap(), 7);
        assert_eq!(f64::from_value(&Value::U64(7)).unwrap(), 7.0);
        assert_eq!(i64::from_value(&Value::I64(-7)).unwrap(), -7);
        assert!(u32::from_value(&Value::I64(-7)).is_err());
    }

    #[test]
    fn duration_round_trip() {
        let d = std::time::Duration::new(3, 250);
        let v = d.to_value();
        assert_eq!(std::time::Duration::from_value(&v).unwrap(), d);
    }
}
