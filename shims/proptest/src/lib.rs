//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest used by this workspace's property
//! tests: [`strategy::Strategy`] with `prop_map`/`prop_flat_map`, range and
//! tuple strategies, [`strategy::Just`], [`arbitrary::any`],
//! `prop::collection::{vec, btree_set}`, the [`proptest!`] /
//! [`prop_oneof!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros, and
//! [`test_runner::ProptestConfig`]. Unlike real proptest there is no
//! shrinking — failures report the raw generated inputs — and generation
//! is deterministic per test name and case index so failures reproduce.

#![forbid(unsafe_code)]

/// Deterministic RNG and run configuration.
pub mod test_runner {
    /// Number of generated cases per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64-seeded xoshiro256++ generator.
    ///
    /// Seeded from the test's module path and case index, so every run of a
    /// property test sees the same inputs (no shrinking is implemented).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for one (test, case) pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in test_name.bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut seed);
            }
            TestRng { s }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            ((self.next_u64() as u128 * n as u128) >> 64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }

        /// Builds a dependent second-stage strategy from each value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { base: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed arms — backs [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms`.
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len());
            (self.arms[i])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    (start..end + 1).generate(rng)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.unit_f64() * (end - start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident : $i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A:0)
        (A:0, B:1)
        (A:0, B:1, C:2)
        (A:0, B:1, C:2, D:3)
        (A:0, B:1, C:2, D:3, E:4)
        (A:0, B:1, C:2, D:3, E:4, F:5)
    }
}

/// `any::<T>()` strategies over a type's full value range.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait ArbitraryValue {
        /// Draws a full-range value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Collection size specifications: a fixed size or a (half-open or
    /// inclusive) range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive maximum.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.min == self.max {
                self.min
            } else {
                self.min + rng.below(self.max - self.min + 1)
            }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// Strategy generating `BTreeSet`s of an element strategy.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            // The element domain may be smaller than the target size; cap
            // the attempts and accept what distinct values were found.
            for _ in 0..target.max(1) * 50 {
                if set.len() >= target {
                    break;
                }
                set.insert(self.elem.generate(rng));
            }
            assert!(
                set.len() >= self.size.min,
                "btree_set strategy could not reach minimum size {}",
                self.size.min
            );
            set
        }
    }

    /// Generates sets whose cardinality is drawn from `size`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { elem, size: size.into() }
    }
}

/// The glob-imported surface: traits, config, macros, and `prop::` alias.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Lets `prop::collection::vec` resolve after `use proptest::prelude::*`.
    pub use crate as prop;
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniformly picks one of several strategies each draw.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        $crate::strategy::Union::new(vec![
            $({
                let s = $arm;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs. No shrinking: a failing case panics with the raw inputs.
#[macro_export]
macro_rules! proptest {
    (@cfg $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..10, y in 0.25f64..=0.75) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((0.25..=0.75).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u32..5, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert!(v.iter().all(|x| *x < 5));
        }

        #[test]
        fn oneof_and_maps(v in prop_oneof![Just(1u8), (2u8..4).prop_map(|x| x)]) {
            prop_assert!((1u8..=3).contains(&v));
        }

        #[test]
        fn btree_set_sizes(s in prop::collection::btree_set(0usize..4, 1..=4)) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
        }
    }
}
