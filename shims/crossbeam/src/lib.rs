//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{bounded, unbounded}` backed by
//! `std::sync::mpsc`, with a clonable [`channel::Sender`]. Only the
//! surface used by `dsud-net`'s in-process transport is implemented;
//! built because the workspace compiles without crates.io access.

#![forbid(unsafe_code)]

/// Multi-producer channels backed by `std::sync::mpsc`.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned when the sending side has disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the deadline.
        Timeout,
        /// The sending side has disconnected and the channel is empty.
        Disconnected,
    }

    /// Clonable sending half of a channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued, erring if disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of a channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives, erring if disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            self.inner.try_recv().map_err(|_| RecvError)
        }

        /// Blocks until a message arrives or `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates a channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = bounded::<u32>(1);
        let handle = std::thread::spawn(move || {
            tx.send(5).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 5);
        handle.join().unwrap();
        assert!(rx.recv().is_err());
    }
}
