//! Offline stand-in for the `criterion` crate.
//!
//! Provides the benchmark-declaration surface the workspace's benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `warm_up_time` / `measurement_time` /
//! `bench_function` / `bench_with_input`, [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros) with a simple
//! wall-clock mean instead of criterion's statistical analysis. Timing
//! numbers are indicative only; the harness exists so `cargo bench`
//! compiles and runs in a hermetic environment.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Discourages the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark registry entry point.
#[derive(Debug)]
pub struct Criterion {
    /// `cargo bench ... -- --test`: run every benchmark body exactly once
    /// with no warm-up or sampling, as a smoke test (mirrors criterion's
    /// own `--test` flag; what CI runs).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { test_mode: std::env::args().any(|a| a == "--test") }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            criterion: self,
        }
    }
}

/// A named benchmark identifier (`function_id/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to record.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a benchmark with no input parameter.
    pub fn bench_function<F>(&mut self, id: impl BenchId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_id(), |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl BenchId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_id(), |b| f(b, input));
        self
    }

    /// Ends the group (provided for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut body: impl FnMut(&mut Bencher)) {
        if self.criterion.test_mode {
            let mut bencher = Bencher {
                samples: Vec::new(),
                sample_size: 1,
                warm_up_time: Duration::ZERO,
                measurement_time: Duration::ZERO,
            };
            body(&mut bencher);
            println!("Testing {}/{id} ... ok", self.name);
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        body(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("{}/{id:<40} (no samples)", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{}/{id:<40} mean {mean:>12.3?}  min {min:>12.3?}  max {max:>12.3?}  ({} samples)",
            self.name,
            samples.len()
        );
    }
}

/// Accepts both `&str`/`String` and [`BenchmarkId`] as benchmark names.
pub trait BenchId {
    /// Rendered benchmark label.
    fn into_id(self) -> String;
}

impl BenchId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl BenchId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl BenchId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `f` for warm-up, then records wall-clock samples until the
    /// sample count or measurement budget is exhausted.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
        }
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
            if run_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Declares a benchmark entry function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running each [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_each_body_exactly_once() {
        let mut c = Criterion { test_mode: true };
        let mut runs = 0;
        let mut group = c.benchmark_group("smoke");
        group.bench_function("once", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1, "no warm-up, one sample");
    }

    #[test]
    fn records_samples() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
