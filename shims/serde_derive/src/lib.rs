//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against the
//! local `serde` shim's value-tree model (`Serialize::to_value` /
//! `Deserialize::from_value`) without `syn`/`quote`: the item is parsed by
//! walking raw [`proc_macro::TokenTree`]s and the impl is emitted as a
//! string re-parsed into a [`TokenStream`].
//!
//! Supported shapes (everything this workspace derives on): named / tuple /
//! unit structs, enums with unit / newtype / tuple / struct variants
//! (serde's externally-tagged encoding), single-field tuple structs as
//! transparent newtypes, the container attribute
//! `#[serde(try_from = "T", into = "T")]`, and the field attributes
//! `#[serde(skip)]` and `#[serde(default)]` (an absent field fills in as
//! `Default::default()`). Generic types are rejected at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for the annotated type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for the annotated type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
    /// `#[serde(try_from = "T")]` proxy type, if any.
    try_from: Option<String>,
    /// `#[serde(into = "T")]` proxy type, if any.
    into: Option<String>,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    /// `None` for tuple-struct fields.
    name: Option<String>,
    ty: String,
    skip: bool,
    /// `#[serde(default)]`: an absent field deserializes to
    /// `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(Vec<String>),
    Struct(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// One parsed `#[...]` attribute: the path ident plus its argument tokens.
struct Attr {
    path: String,
    args: Vec<TokenTree>,
}

fn collect_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<Attr> {
    let mut attrs = Vec::new();
    while let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() != '#' {
            break;
        }
        *i += 1;
        let group = match tokens.get(*i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("expected [...] after #, got {other:?}"),
        };
        *i += 1;
        let inner: Vec<TokenTree> = group.stream().into_iter().collect();
        let path = match inner.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => String::new(),
        };
        let args = match inner.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                g.stream().into_iter().collect()
            }
            _ => Vec::new(),
        };
        attrs.push(Attr { path, args });
    }
    attrs
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn strip_quotes(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Extracts `try_from` / `into` proxies from `#[serde(...)]` container attrs.
fn container_serde_attrs(attrs: &[Attr]) -> (Option<String>, Option<String>) {
    let (mut try_from, mut into) = (None, None);
    for attr in attrs.iter().filter(|a| a.path == "serde") {
        let mut j = 0;
        while j < attr.args.len() {
            if let TokenTree::Ident(id) = &attr.args[j] {
                let key = id.to_string();
                if key == "try_from" || key == "into" {
                    // pattern: ident '=' literal
                    if let Some(TokenTree::Literal(lit)) = attr.args.get(j + 2) {
                        let ty = strip_quotes(&lit.to_string());
                        if key == "try_from" {
                            try_from = Some(ty);
                        } else {
                            into = Some(ty);
                        }
                        j += 3;
                        continue;
                    }
                } else {
                    panic!("unsupported container #[serde({key} ...)] in shim derive");
                }
            }
            j += 1;
        }
    }
    (try_from, into)
}

/// Parses field-level serde attrs: `(skip, default)`.
fn field_serde_attrs(attrs: &[Attr]) -> (bool, bool) {
    let (mut skip, mut default) = (false, false);
    for attr in attrs.iter().filter(|a| a.path == "serde") {
        for tok in &attr.args {
            if let TokenTree::Ident(id) = tok {
                match id.to_string().as_str() {
                    "skip" => skip = true,
                    "default" => default = true,
                    other => panic!("unsupported field #[serde({other})] in shim derive"),
                }
            }
        }
    }
    (skip, default)
}

/// Collects a type as a string: tokens up to a top-level `,`, tracking
/// angle-bracket depth so commas inside `HashMap<K, V>` don't split.
fn collect_type(tokens: &[TokenTree], i: &mut usize) -> String {
    let mut depth = 0i32;
    let mut out = String::new();
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => break,
                _ => {}
            }
        }
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&tok.to_string());
        *i += 1;
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = collect_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        let ty = collect_type(&tokens, &mut i);
        i += 1; // consume trailing comma if present
        let (skip, default) = field_serde_attrs(&attrs);
        fields.push(Field { name: Some(name), ty, skip, default });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = collect_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let ty = collect_type(&tokens, &mut i);
        i += 1; // consume trailing comma if present
        let (skip, default) = field_serde_attrs(&attrs);
        fields.push(Field { name: None, ty, skip, default });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Variant attrs (e.g. #[default]) carry no serde meaning here.
        let _ = collect_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let tys = parse_tuple_fields(g.stream()).into_iter().map(|f| f.ty).collect();
                i += 1;
                VariantKind::Tuple(tys)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("explicit enum discriminants are not supported by the shim derive")
            }
            other => panic!("unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = collect_attrs(&tokens, &mut i);
    let (try_from, into) = container_serde_attrs(&attrs);
    skip_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum keyword, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the shim serde derive (type `{name}`)");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(parse_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde traits for `{other}` items"),
    };
    Item { name, kind, try_from, into }
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.into {
        format!(
            "let proxy: {proxy} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&proxy)"
        )
    } else {
        match &item.kind {
            Kind::NamedStruct(fields) => ser_named_map("self.", fields),
            Kind::TupleStruct(fields) if fields.len() == 1 => {
                "::serde::Serialize::to_value(&self.0)".to_string()
            }
            Kind::TupleStruct(fields) => {
                let elems: Vec<String> = (0..fields.len())
                    .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", elems.join(", "))
            }
            Kind::UnitStruct => "::serde::Value::Null".to_string(),
            Kind::Enum(variants) => {
                let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
                format!("match self {{ {} }}", arms.join("\n"))
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

/// Map-construction snippet for named fields reachable via `prefix` (either
/// `self.` for structs or the empty prefix for match-arm bindings).
fn ser_named_map(prefix: &str, fields: &[Field]) -> String {
    let mut out = String::from("{ let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        let n = f.name.as_ref().expect("named field");
        out.push_str(&format!(
            "m.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&{prefix}{n})));\n"
        ));
    }
    out.push_str("::serde::Value::Map(m) }");
    out
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vn = &v.name;
    match &v.kind {
        VariantKind::Unit => {
            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
        }
        VariantKind::Tuple(tys) if tys.len() == 1 => format!(
            "{name}::{vn}(f0) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
             ::serde::Serialize::to_value(f0))]),"
        ),
        VariantKind::Tuple(tys) => {
            let binds: Vec<String> = (0..tys.len()).map(|i| format!("f{i}")).collect();
            let elems: Vec<String> =
                (0..tys.len()).map(|i| format!("::serde::Serialize::to_value(f{i})")).collect();
            format!(
                "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                 ::serde::Value::Seq(vec![{elems}]))]),",
                binds = binds.join(", "),
                elems = elems.join(", "),
            )
        }
        VariantKind::Struct(fields) => {
            let binds: Vec<String> =
                fields.iter().map(|f| f.name.clone().expect("named field")).collect();
            let inner = ser_named_map("", fields);
            format!(
                "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), \
                 {inner})]),",
                binds = binds.join(", "),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = if let Some(proxy) = &item.try_from {
        format!(
            "let proxy: {proxy} = ::serde::Deserialize::from_value(v)?;\n\
             ::std::convert::TryFrom::try_from(proxy).map_err(::serde::Error::custom)"
        )
    } else {
        match &item.kind {
            Kind::NamedStruct(fields) => {
                let ctor = de_named_ctor(name, fields);
                format!(
                    "let m = v.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                     ::std::result::Result::Ok({ctor})"
                )
            }
            Kind::TupleStruct(fields) if fields.len() == 1 => {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
            }
            Kind::TupleStruct(fields) => {
                let n = fields.len();
                let elems: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                    .collect();
                format!(
                    "let seq = v.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                     if seq.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                     ::std::result::Result::Ok({name}({elems}))",
                    elems = elems.join(", "),
                )
            }
            Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
            Kind::Enum(variants) => de_enum_body(name, variants),
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> \
             {{\n{body}\n}}\n\
         }}"
    )
}

/// Struct-literal construction from a bound `m: &[(String, Value)]`.
fn de_named_ctor(path: &str, fields: &[Field]) -> String {
    let mut out = format!("{path} {{\n");
    for f in fields {
        let n = f.name.as_ref().expect("named field");
        if f.skip {
            out.push_str(&format!("{n}: ::std::default::Default::default(),\n"));
        } else if f.default {
            out.push_str(&format!(
                "{n}: match ::serde::get_field(m, \"{n}\") {{\n\
                     ::std::option::Option::Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                     ::std::option::Option::None => ::std::default::Default::default(),\n\
                 }},\n"
            ));
        } else {
            let ty = &f.ty;
            out.push_str(&format!(
                "{n}: match ::serde::get_field(m, \"{n}\") {{\n\
                     ::std::option::Option::Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                     ::std::option::Option::None => <{ty} as ::serde::Deserialize>::missing()\
                         .ok_or_else(|| ::serde::Error::custom(\"missing field `{n}`\"))?,\n\
                 }},\n"
            ));
        }
    }
    out.push('}');
    out
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name))
        .collect();
    let map_arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.kind {
                VariantKind::Unit => {
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                }
                VariantKind::Tuple(tys) if tys.len() == 1 => format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                     ::serde::Deserialize::from_value(inner)?)),"
                ),
                VariantKind::Tuple(tys) => {
                    let n = tys.len();
                    let elems: Vec<String> = (0..n)
                        .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                        .collect();
                    format!(
                        "\"{vn}\" => {{\n\
                         let seq = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\
                         \"expected sequence for {name}::{vn}\"))?;\n\
                         if seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::Error::custom(\"wrong tuple length for {name}::{vn}\")); }}\n\
                         ::std::result::Result::Ok({name}::{vn}({elems}))\n}}",
                        elems = elems.join(", "),
                    )
                }
                VariantKind::Struct(fields) => {
                    let ctor = de_named_ctor(&format!("{name}::{vn}"), fields);
                    format!(
                        "\"{vn}\" => {{\n\
                         let m = inner.as_map().ok_or_else(|| ::serde::Error::custom(\
                         \"expected map for {name}::{vn}\"))?;\n\
                         ::std::result::Result::Ok({ctor})\n}}"
                    )
                }
            }
        })
        .collect();
    format!(
        "match v {{\n\
         ::serde::Value::Str(tag) => match tag.as_str() {{\n\
             {unit_arms}\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
             format!(\"unknown variant `{{other}}` for {name}\"))),\n\
         }},\n\
         ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
             let (tag, inner) = &entries[0];\n\
             let _ = inner;\n\
             match tag.as_str() {{\n\
                 {map_arms}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))),\n\
             }}\n\
         }}\n\
         _ => ::std::result::Result::Err(::serde::Error::custom(\
         \"expected string or single-entry map for enum {name}\")),\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        map_arms = map_arms.join("\n"),
    )
}
