//! Offline stand-in for the `serde_json` crate.
//!
//! Converts the local `serde` shim's [`Value`] tree to and from JSON text:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], and [`from_str`] /
//! [`from_slice`]. The emitted JSON matches real `serde_json` for the data
//! shapes this workspace serializes (externally-tagged enums, transparent
//! newtypes, `{secs, nanos}` durations).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON conversion error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float (JSON has no
/// representation for NaN or infinities).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0)?;
    Ok(out)
}

/// Serializes `value` as compact JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON, or shape mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(Error::new)?;
    from_str(s)
}

// --- writer ----------------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<&str>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float is not representable in JSON"));
            }
            // Keep a decimal point so the value reads back as a float,
            // matching serde_json's `1.0` formatting.
            if f.fract() == 0.0 && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_sequence(out, items.len(), indent, depth, '[', ']', |out, i, indent, depth| {
                write_value(out, &items[i], indent, depth)
            })?;
        }
        Value::Map(entries) => {
            write_sequence(
                out,
                entries.len(),
                indent,
                depth,
                '{',
                '}',
                |out, i, indent, depth| {
                    let (k, val) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_value(out, val, indent, depth)
                },
            )?;
        }
    }
    Ok(())
}

fn write_sequence(
    out: &mut String,
    len: usize,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, Option<&str>, usize) -> Result<(), Error>,
) -> Result<(), Error> {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, i, indent, depth + 1)?;
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", char::from(byte), self.pos)))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.consume_keyword("null") => Ok(Value::Null),
            Some(b't') if self.consume_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.consume_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(char::from),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex).map_err(Error::new)?;
                            let code = u32::from_str_radix(hex, 16).map_err(Error::new)?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape {:?}",
                                other.map(char::from)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences included).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).map_err(Error::new)?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(Error::new)
        } else {
            text.parse::<u64>().map(Value::U64).map_err(Error::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = Value::Map(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::Seq(vec![Value::F64(1.5), Value::Null])),
            ("c".to_string(), Value::Str("x\"y\n".to_string())),
        ]);
        let text = to_string(&ValueWrap(v.clone())).unwrap();
        assert_eq!(text, r#"{"a":1,"b":[1.5,null],"c":"x\"y\n"}"#);
        let back: ValueWrap = from_str(&text).unwrap();
        assert_eq!(back.0, v);
    }

    #[test]
    fn floats_keep_decimal_point() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn pretty_is_indented() {
        let v = ValueWrap(Value::Map(vec![("k".to_string(), Value::U64(1))]));
        assert_eq!(to_string_pretty(&v).unwrap(), "{\n  \"k\": 1\n}");
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let back: Vec<f64> = from_str("[-1.5, 2e3]").unwrap();
        assert_eq!(back, vec![-1.5, 2000.0]);
        let ints: Vec<i64> = from_str("[-3, 4]").unwrap();
        assert_eq!(ints, vec![-3, 4]);
    }

    /// Identity wrapper so tests can round-trip raw [`Value`] trees.
    struct ValueWrap(Value);

    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for ValueWrap {
        fn from_value(v: &Value) -> Result<Self, serde::Error> {
            Ok(ValueWrap(v.clone()))
        }
    }
}
