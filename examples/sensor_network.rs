//! The paper's other motivating domain (Section 1): "distributed sensor
//! networks with imprecise measurements". Twenty gateway sites each hold
//! readings from their sensors — (response latency ms, energy drain mJ,
//! error rate ‰) — and a reading's existential probability models its
//! delivery confidence. The operator asks for the globally best readings,
//! first over all three metrics, then over a (latency, error) subspace —
//! and wants the first few answers immediately, over real site threads.
//!
//! ```sh
//! cargo run --release --example sensor_network
//! ```

use dsud_core::{Cluster, QueryConfig, SubspaceMask};
use dsud_data::{ProbabilityLaw, SpatialDistribution, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m, dims) = (30_000, 20, 3);
    // Sensor metrics cluster anticorrelated: fast responses burn energy.
    // Delivery confidence is gaussian around 0.7 (most packets arrive).
    let sites = WorkloadSpec::new(n, dims)
        .spatial(SpatialDistribution::Anticorrelated)
        .probability_law(ProbabilityLaw::Gaussian { mean: 0.7, std_dev: 0.2 })
        .seed(99)
        .generate_partitioned(m)?;

    // Each gateway runs on its own OS thread, like a real deployment.
    let mut cluster = Cluster::threaded(dims, sites)?;

    println!("full-space query (latency, energy, error), q = 0.5:");
    let full = cluster.run_edsud(&QueryConfig::new(0.5)?)?;
    println!(
        "  {} qualified readings for {} transmitted tuples",
        full.skyline.len(),
        full.tuples_transmitted()
    );
    if let Some(first) = full.progress.time_to_first() {
        println!("  first answer after {first:?} ({} total)", full.progress.len());
    }

    // The operator only cares about latency and error rate this time, and
    // wants just the five best-supported readings.
    println!("\nsubspace query (latency, error) with a top-5 limit:");
    let config = QueryConfig::new(0.5)?.subspace(SubspaceMask::from_dims(&[0, 2])?).limit(5);
    let top5 = cluster.run_edsud(&config)?;
    for entry in &top5.skyline {
        let v = entry.tuple.values();
        println!(
            "  gateway {}  latency={:.3} error={:.3}  P_gsky={:.3}",
            entry.tuple.id().site.0,
            v[0],
            v[2],
            entry.probability
        );
    }
    println!(
        "  stopped after {} transmitted tuples (full run would cost more)",
        top5.tuples_transmitted()
    );
    Ok(())
}
