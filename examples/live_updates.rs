//! Continuous maintenance (paper Section 5.4): keep the global skyline
//! fresh while trades keep arriving and being voided at the local sites,
//! comparing the incremental strategy against naive recomputation.
//!
//! ```sh
//! cargo run --release --example live_updates
//! ```

use dsud_core::update::{Maintainer, UpdateOp};
use dsud_core::{BoundMode, Cluster, Probability, SubspaceMask, TupleId, UncertainTuple};
use dsud_data::WorkloadSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, m, dims, q) = (20_000, 8, 2, 0.3);
    let data = WorkloadSpec::new(n, dims).seed(7).generate_partitioned(m)?;
    let mask = SubspaceMask::full(dims)?;

    let mut cluster = Cluster::local(dims, data.clone())?;
    let meter = cluster.meter().clone();
    let (mut maintainer, bootstrap) =
        Maintainer::bootstrap(cluster.links_mut(), &meter, q, mask, BoundMode::Paper)?;
    println!(
        "bootstrap: {} skyline tuples for {} transmitted tuples\n",
        bootstrap.skyline.len(),
        bootstrap.tuples_transmitted()
    );

    let mut rng = StdRng::seed_from_u64(99);
    let mut next_seq = 1_000_000u64;
    for round in 1..=5 {
        // A mixed batch: 30 inserts, 10 deletes of random existing tuples.
        let mut ops = Vec::new();
        for _ in 0..30 {
            let site = rng.gen_range(0..m) as u32;
            let values: Vec<f64> = (0..dims).map(|_| rng.gen::<f64>()).collect();
            let p = Probability::clamped(rng.gen::<f64>());
            ops.push(UpdateOp::Insert(
                UncertainTuple::new(TupleId::new(site, next_seq), values, p)
                    .expect("generated tuples are valid"),
            ));
            next_seq += 1;
        }
        for _ in 0..10 {
            let site = rng.gen_range(0..m);
            let victim = &data[site][rng.gen_range(0..data[site].len())];
            ops.push(UpdateOp::Delete(victim.clone()));
        }

        let before = meter.snapshot();
        for op in &ops {
            maintainer.apply_incremental(cluster.links_mut(), op)?;
        }
        let cost = meter.snapshot().since(&before).tuples_transmitted();
        println!(
            "round {round}: applied {} updates incrementally, skyline now {} tuples, \
             maintenance cost {} tuples",
            ops.len(),
            maintainer.skyline().len(),
            cost
        );
    }

    // Contrast: what one naive refresh costs right now.
    let before = meter.snapshot();
    maintainer.refresh_naive(cluster.links_mut(), &meter)?;
    let naive_cost = meter.snapshot().since(&before).tuples_transmitted();
    println!("\none naive from-scratch refresh would cost {naive_cost} tuples");
    Ok(())
}
