//! The paper's motivating scenario (Section 1): finding the "top deals" of
//! a stock across distributed exchange centers, where recording errors make
//! every trade uncertain. A deal is better when it has a lower price and a
//! higher volume; each recorded deal carries a confidence probability.
//!
//! Runs both DSUD and e-DSUD over a synthetic NYSE-style workload and
//! contrasts their bandwidth and progressiveness.
//!
//! ```sh
//! cargo run --release --example stock_exchange
//! ```

use dsud_core::{Cluster, QueryConfig};
use dsud_data::nyse::{NyseSpec, VOLUME_CAP};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 12;
    let spec = NyseSpec::new(100_000).seed(2024);
    println!("{} synthetic trades across {m} exchange centers, q = 0.3\n", spec.cardinality());

    let sites = spec.generate_partitioned(m)?;
    let config = QueryConfig::new(0.3)?;

    let mut dsud_cluster = Cluster::local(2, sites.clone())?;
    let dsud = dsud_cluster.run_dsud(&config)?;
    let mut edsud_cluster = Cluster::local(2, sites)?;
    let edsud = edsud_cluster.run_edsud(&config)?;

    println!("top deals (low price, high volume) with P_gsky >= 0.3:");
    for entry in edsud.skyline.iter().take(8) {
        let price = entry.tuple.values()[0];
        let volume = VOLUME_CAP - entry.tuple.values()[1];
        println!(
            "  exchange {}  ${:<6.2} x {:<8} shares  P_gsky={:.3}",
            entry.tuple.id().site.0,
            price,
            volume,
            entry.probability
        );
    }
    if edsud.skyline.len() > 8 {
        println!("  … and {} more", edsud.skyline.len() - 8);
    }

    println!("\n             {:>12} {:>12}", "DSUD", "e-DSUD");
    println!(
        "bandwidth    {:>12} {:>12}   (tuples transmitted)",
        dsud.tuples_transmitted(),
        edsud.tuples_transmitted()
    );
    println!("broadcasts   {:>12} {:>12}", dsud.stats.broadcasts, edsud.stats.broadcasts);
    println!("expunged     {:>12} {:>12}", dsud.stats.expunged, edsud.stats.expunged);

    println!("\nprogressiveness (tuples transmitted by the k-th reported deal):");
    let k_max = dsud.progress.len().min(edsud.progress.len());
    for k in [1, k_max / 2, k_max] {
        if k == 0 {
            continue;
        }
        println!(
            "  k={:<4} DSUD={:<8} e-DSUD={}",
            k,
            dsud.progress.bandwidth_at(k).unwrap_or(0),
            edsud.progress.bandwidth_at(k).unwrap_or(0)
        );
    }
    Ok(())
}
