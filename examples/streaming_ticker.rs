//! Continuous monitoring: a live trade ticker flows through a sliding
//! window and the "best deals right now" skyline is kept fresh after every
//! arrival (the `dsud-stream` extension; see the paper's Section 2.2 for
//! the centralized sliding-window problem it implements).
//!
//! ```sh
//! cargo run --release --example streaming_ticker
//! ```

use dsud_data::nyse::NyseSpec;
use dsud_stream::SlidingSkyline;
use dsud_uncertain::{TupleId, UncertainTuple};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = 5_000;
    let mut sky = SlidingSkyline::new(2, window, 0.3)?;

    // A day of synthetic trades, streamed in arrival order.
    let rows = NyseSpec::new(50_000).seed(11).generate_rows()?;
    for (seq, (values, prob)) in rows.into_iter().enumerate() {
        let t = UncertainTuple::new(TupleId::new(0, seq as u64), values, prob)?;
        sky.push(t)?;
        if (seq + 1) % 10_000 == 0 {
            let answer = sky.skyline();
            println!(
                "after {:>6} trades: {:>2} deals qualify, candidate set {:>3} of window {}",
                seq + 1,
                answer.len(),
                sky.candidate_count(),
                sky.len()
            );
        }
    }

    let stats = sky.stats();
    println!(
        "\nstream stats: {} arrivals, {} expirations, {} candidates pruned early",
        stats.arrivals, stats.expirations, stats.pruned_candidates
    );
    println!("final top deals:");
    for entry in sky.skyline().iter().take(5) {
        println!(
            "  trade {}  price=${:.2}  P_sky={:.3}",
            entry.tuple.id(),
            entry.tuple.values()[0],
            entry.probability
        );
    }
    Ok(())
}
