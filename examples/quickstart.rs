//! Quickstart: generate a synthetic distributed uncertain database, run the
//! e-DSUD query, and inspect the answer and its communication cost.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsud_core::{Cluster, QueryConfig};
use dsud_data::{SpatialDistribution, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 50,000 three-dimensional tuples with uniform existential
    // probabilities, split uniformly across 20 sites.
    let sites = WorkloadSpec::new(50_000, 3)
        .spatial(SpatialDistribution::Anticorrelated)
        .seed(42)
        .generate_partitioned(20)?;

    let mut cluster = Cluster::local(3, sites)?;
    let config = QueryConfig::new(0.3)?;
    let outcome = cluster.run_edsud(&config)?;

    println!("global skyline (P_gsky >= 0.3): {} tuples", outcome.skyline.len());
    for entry in outcome.skyline.iter().take(10) {
        println!(
            "  {}  values={:?}  P_gsky={:.4}",
            entry.tuple.id(),
            entry.tuple.values(),
            entry.probability
        );
    }
    if outcome.skyline.len() > 10 {
        println!("  … and {} more", outcome.skyline.len() - 10);
    }

    let t = &outcome.traffic;
    println!("\nbandwidth: {} tuples transmitted", outcome.tuples_transmitted());
    println!("  uploads   : {} tuples in {} messages", t.upload.tuples, t.upload.messages);
    println!("  feedback  : {} tuples in {} messages", t.feedback.tuples, t.feedback.messages);
    println!("  wire bytes: {}", t.total().bytes);
    println!(
        "stats: {} broadcasts, {} expunged without broadcast, {} pruned at sites",
        outcome.stats.broadcasts, outcome.stats.expunged, outcome.stats.pruned_at_sites
    );
    println!(
        "versus ship-everything baseline: {} of {} tuples ({:.2}%)",
        outcome.tuples_transmitted(),
        cluster.total_tuples(),
        100.0 * outcome.tuples_transmitted() as f64 / cluster.total_tuples() as f64
    );
    Ok(())
}
