//! The paper's running example (Section 5.3): a hotel booking system with
//! three sites — Qingdao, Shanghai, and Xiamen — answering "which hotels
//! are cheap AND close to the beach, with global skyline probability at
//! least 0.3?".
//!
//! ```sh
//! cargo run --example hotel_booking
//! ```

use dsud_core::{Cluster, Probability, QueryConfig, TupleId, UncertainTuple};

fn hotel(site: u32, seq: u64, price: f64, distance: f64, p: f64) -> UncertainTuple {
    UncertainTuple::new(
        TupleId::new(site, seq),
        vec![price, distance],
        Probability::new(p).expect("example probabilities are valid"),
    )
    .expect("example values are valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cities = ["Qingdao", "Shanghai", "Xiamen"];

    // Each site's database, chosen so the local skylines match the paper's
    // Table 2(a); the extra low-confidence rows are the dominated bulk.
    let qingdao = vec![
        hotel(0, 0, 6.0, 6.0, 0.7),
        hotel(0, 1, 8.0, 4.0, 0.8),
        hotel(0, 2, 3.0, 8.0, 0.8),
        hotel(0, 3, 5.0, 5.0, 1.0 - 0.65 / 0.7),
        hotel(0, 4, 7.0, 3.0, 0.25),
        hotel(0, 5, 2.0, 7.0, 1.0 - (0.5f64 / 0.8).sqrt()),
        hotel(0, 6, 2.5, 7.5, 1.0 - (0.5f64 / 0.8).sqrt()),
    ];
    let shanghai = vec![
        hotel(1, 0, 6.5, 7.0, 0.8),
        hotel(1, 1, 4.0, 9.0, 0.6),
        hotel(1, 2, 9.0, 5.0, 0.7),
        hotel(1, 3, 6.2, 6.8, 1.0 - 0.65 / 0.8),
        hotel(1, 4, 8.5, 4.8, 1.0 - 0.6 / 0.7),
    ];
    let xiamen = vec![
        hotel(2, 0, 6.4, 7.5, 0.9),
        hotel(2, 1, 3.5, 11.0, 0.7),
        hotel(2, 2, 10.0, 4.5, 0.7),
        hotel(2, 3, 6.3, 7.4, 1.0 - 0.8 / 0.9),
    ];

    println!("hotel booking across {} cities, threshold q = 0.3\n", cities.len());
    let mut cluster = Cluster::local(2, vec![qingdao, shanghai, xiamen])?;
    let outcome = cluster.run_edsud(&QueryConfig::new(0.3)?)?;

    println!("qualified hotels (price, distance-to-beach):");
    for entry in &outcome.skyline {
        let city = cities[entry.tuple.id().site.0 as usize];
        println!(
            "  {:<9} price={:<4} distance={:<4} P_gsky={:.2}",
            city,
            entry.tuple.values()[0],
            entry.tuple.values()[1],
            entry.probability
        );
    }

    println!("\nhow the answer streamed out:");
    for e in outcome.progress.events() {
        println!(
            "  result #{} ({}) after {} transmitted tuples",
            e.reported, cities[e.id.site.0 as usize], e.tuples_transmitted
        );
    }

    println!(
        "\ntotal bandwidth: {} tuples ({} broadcast, {} expunged for free)",
        outcome.tuples_transmitted(),
        outcome.stats.broadcasts,
        outcome.stats.expunged
    );
    Ok(())
}
