//! Property-based validation of the PR-tree against linear-scan oracles,
//! across random data sets, node capacities, and mutation sequences.

use proptest::prelude::*;

use dsud_prtree::{bbs, MultiProbeScratch, PrTree};
use dsud_uncertain::{
    probabilistic_skyline, Probability, SubspaceMask, TupleId, UncertainDb, UncertainTuple,
};

fn arb_tuples(dims: usize, max_n: usize) -> impl Strategy<Value = Vec<UncertainTuple>> {
    prop::collection::vec((prop::collection::vec(0.0f64..100.0, dims), 0.01f64..=1.0), 1..=max_n)
        .prop_map(move |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, (values, p))| {
                    UncertainTuple::new(
                        TupleId::new(0, i as u64),
                        values,
                        Probability::new(p).unwrap(),
                    )
                    .unwrap()
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Window survival products equal the linear-scan definition for any
    /// probe point and node capacity.
    #[test]
    fn survival_product_matches_scan(
        tuples in arb_tuples(3, 120),
        probe in prop::collection::vec(0.0f64..100.0, 3),
        cap in 2usize..12,
    ) {
        let db = UncertainDb::from_tuples(3, tuples.clone()).unwrap();
        let tree = PrTree::bulk_load_with(3, tuples, cap).unwrap();
        let mask = SubspaceMask::full(3).unwrap();
        let expected = db.survival_product(&probe);
        let got = tree.survival_product(&probe, mask);
        prop_assert!((expected - got).abs() < 1e-9, "{expected} vs {got}");
    }

    /// The multi-probe traversal is bit-identical to K independent
    /// single-probe calls, on the full space and on random subspaces, for
    /// any node capacity — the invariant that makes batched feedback
    /// rounds safe.
    #[test]
    fn survival_products_equal_independent_calls(
        tuples in arb_tuples(3, 150),
        probe_rows in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 3), 1..24),
        dim_bits in 1u8..8,
        cap in 2usize..12,
    ) {
        let tree = PrTree::bulk_load_with(3, tuples, cap).unwrap();
        let dims: Vec<usize> = (0..3).filter(|d| dim_bits & (1 << d) != 0).collect();
        let mask = SubspaceMask::from_dims(&dims).unwrap();
        let probes: Vec<&[f64]> = probe_rows.iter().map(|p| p.as_slice()).collect();
        let mut scratch = MultiProbeScratch::default();
        let mut out = Vec::new();
        // Reuse the scratch across both masks to exercise buffer reuse.
        for m in [SubspaceMask::full(3).unwrap(), mask] {
            tree.survival_products(&probes, m, &mut scratch, &mut out);
            prop_assert_eq!(out.len(), probes.len());
            for (k, probe) in probes.iter().enumerate() {
                let single = tree.survival_product(probe, m);
                prop_assert_eq!(out[k].to_bits(), single.to_bits(),
                    "probe {} batched {} vs single {}", k, out[k], single);
            }
        }
    }

    /// BBS local skylines equal the naive threshold skyline.
    #[test]
    fn bbs_matches_naive(tuples in arb_tuples(2, 100), q in 0.05f64..=1.0) {
        let mask = SubspaceMask::full(2).unwrap();
        let db = UncertainDb::from_tuples(2, tuples.clone()).unwrap();
        let expected: Vec<TupleId> = probabilistic_skyline(&db, q, mask)
            .unwrap()
            .into_iter()
            .map(|e| e.tuple.id())
            .collect();
        let tree = PrTree::bulk_load(2, tuples).unwrap();
        let got: Vec<TupleId> = bbs::local_skyline(&tree, q, mask)
            .unwrap()
            .into_iter()
            .map(|e| e.tuple.id())
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// A mutation sequence (bulk load, deletes, re-inserts) leaves queries
    /// consistent with a database holding the same tuples.
    #[test]
    fn mutations_preserve_query_semantics(
        tuples in arb_tuples(2, 80),
        delete_mask in prop::collection::vec(any::<bool>(), 80),
        probe in prop::collection::vec(0.0f64..100.0, 2),
    ) {
        let mut tree = PrTree::bulk_load(2, tuples.clone()).unwrap();
        let mut kept: Vec<UncertainTuple> = Vec::new();
        for (i, t) in tuples.iter().enumerate() {
            if delete_mask.get(i).copied().unwrap_or(false) {
                prop_assert!(tree.remove(t.id(), t.values()).is_some());
            } else {
                kept.push(t.clone());
            }
        }
        tree.check_invariants();
        let db = UncertainDb::from_tuples(2, kept).unwrap();
        let mask = SubspaceMask::full(2).unwrap();
        let expected = db.survival_product(&probe);
        let got = tree.survival_product(&probe, mask);
        prop_assert!((expected - got).abs() < 1e-9);
        prop_assert_eq!(tree.len(), db.len());
    }

    /// The tree summary reflects exactly the stored population.
    #[test]
    fn summary_aggregates_are_exact(tuples in arb_tuples(3, 60)) {
        let tree = PrTree::bulk_load(3, tuples.clone()).unwrap();
        let s = tree.summary().unwrap();
        prop_assert_eq!(s.count, tuples.len());
        let p_min = tuples.iter().map(|t| t.prob().get()).fold(f64::INFINITY, f64::min);
        let p_max = tuples.iter().map(|t| t.prob().get()).fold(0.0, f64::max);
        prop_assert!((s.p_min - p_min).abs() < 1e-12);
        prop_assert!((s.p_max - p_max).abs() < 1e-12);
        let survival: f64 = tuples.iter().map(|t| t.prob().complement()).product();
        prop_assert!((s.survival - survival).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Range queries equal a linear scan for arbitrary boxes.
    #[test]
    fn range_query_matches_scan(
        tuples in arb_tuples(3, 100),
        corner_a in prop::collection::vec(0.0f64..100.0, 3),
        corner_b in prop::collection::vec(0.0f64..100.0, 3),
    ) {
        let lower: Vec<f64> =
            corner_a.iter().zip(&corner_b).map(|(a, b)| a.min(*b)).collect();
        let upper: Vec<f64> =
            corner_a.iter().zip(&corner_b).map(|(a, b)| a.max(*b)).collect();
        let tree = PrTree::bulk_load(3, tuples.clone()).unwrap();
        let mut got: Vec<u64> =
            tree.range_query(&lower, &upper).iter().map(|t| t.id().seq).collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = tuples
            .iter()
            .filter(|t| {
                t.values()
                    .iter()
                    .zip(lower.iter().zip(&upper))
                    .all(|(&v, (&lo, &hi))| lo <= v && v <= hi)
            })
            .map(|t| t.id().seq)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Region-constrained local skylines equal the filtered naive answer.
    #[test]
    fn region_skyline_matches_filtered_naive(
        tuples in arb_tuples(2, 80),
        origin in prop::collection::vec(0.0f64..100.0, 2),
        q in 0.05f64..=0.9,
    ) {
        use dsud_uncertain::dominates_in;
        let mask = SubspaceMask::full(2).unwrap();
        let db = UncertainDb::from_tuples(2, tuples.clone()).unwrap();
        let expected: Vec<TupleId> = probabilistic_skyline(&db, q, mask)
            .unwrap()
            .into_iter()
            .filter(|e| dominates_in(&origin, e.tuple.values(), mask))
            .map(|e| e.tuple.id())
            .collect();
        let tree = PrTree::bulk_load(2, tuples).unwrap();
        let got: Vec<TupleId> = bbs::local_skyline_in_region(&tree, q, mask, &origin)
            .unwrap()
            .into_iter()
            .map(|e| e.tuple.id())
            .collect();
        prop_assert_eq!(got, expected);
    }
}
