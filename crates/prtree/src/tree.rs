//! The PR-tree proper (paper Section 6.1, Fig. 5).
//!
//! An arena-allocated R-tree whose entries carry probability summaries
//! (`P1`/`P2` plus the subtree survival product). Construction is either
//! STR bulk loading or incremental insert/delete with quadratic splits —
//! the latter is what the Section 5.4 update maintenance relies on. Query
//! procedures: [`PrTree::survival_product`] (the dominator-window product
//! of Section 6.3, Fig. 6), [`PrTree::dominators`], and range scans; the
//! BBS local-skyline traversal lives in [`crate::bbs`].

use dsud_obs::{Counter, Recorder};
use dsud_uncertain::{ProbeSet, SubspaceMask, TupleId, UncertainTuple};

use crate::node::{Node, NodeBody};
use crate::{Error, Summary};

/// Default node fan-out (the paper's Fig. 5 uses capacity 3 for
/// illustration; real trees use a few dozen).
pub const DEFAULT_MAX_ENTRIES: usize = 32;

/// Reusable buffers for [`PrTree::survival_products`], the multi-probe
/// dominator-window traversal.
///
/// One level of buffers is kept per tree depth (the recursion reuses the
/// level of the node it is visiting), so after the first call at a given
/// depth the traversal allocates nothing. The buffers are cleared on
/// entry; reuse never changes results.
#[derive(Debug, Default)]
pub struct MultiProbeScratch {
    /// Probe indices still active at the traversal root.
    roots: Vec<u32>,
    /// Per-depth active sets and child partial products.
    levels: Vec<MultiProbeLevel>,
    /// Nodes visited by the current traversal.
    visited: u64,
}

impl MultiProbeScratch {
    /// Total reserved capacity, in buffer elements, across every internal
    /// buffer.
    ///
    /// This is a steady-state probe for tests and diagnostics: once a
    /// scratch has served a traversal at a given probe count and tree
    /// depth, serving further traversals no larger than that must leave
    /// the footprint unchanged — i.e. the reuse really is allocation-free.
    pub fn footprint(&self) -> usize {
        self.roots.capacity()
            + self.levels.capacity()
            + self.levels.iter().map(|l| l.active.capacity() + l.products.capacity()).sum::<usize>()
    }
}

#[derive(Debug, Default)]
struct MultiProbeLevel {
    /// Probes that must recurse into the child under consideration.
    active: Vec<u32>,
    /// The child's standalone subtree factor per probe.
    products: Vec<f64>,
}

/// A probabilistic R-tree over uncertain tuples.
///
/// Supports STR bulk loading, incremental insertion and deletion (needed by
/// the paper's Section 5.4 update maintenance), dominator-window survival
/// products (Section 6.3), and serves as the substrate for the BBS local
/// skyline procedure (Section 6.2, [`crate::bbs::local_skyline`]).
///
/// Nodes are arena-allocated inside the tree; all structural invariants
/// (summary freshness, entry counts) are maintained on every mutation and
/// checked by `debug_assert`s plus the `check_invariants` test helper.
#[derive(Debug, Clone)]
pub struct PrTree {
    dims: usize,
    max_entries: usize,
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    root: Option<usize>,
    len: usize,
    recorder: Recorder,
}

impl PrTree {
    /// Creates an empty tree of the given dimensionality with the default
    /// node capacity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensionality`] if `dims` is zero.
    pub fn new(dims: usize) -> Result<Self, Error> {
        Self::with_capacity(dims, DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with an explicit node capacity.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensionality`] for `dims == 0` or
    /// [`Error::InvalidCapacity`] for `max_entries < 2`.
    pub fn with_capacity(dims: usize, max_entries: usize) -> Result<Self, Error> {
        if dims == 0 {
            return Err(Error::InvalidDimensionality(dims));
        }
        if max_entries < 2 {
            return Err(Error::InvalidCapacity(max_entries));
        }
        Ok(PrTree {
            dims,
            max_entries,
            nodes: Vec::new(),
            free: Vec::new(),
            root: None,
            len: 0,
            recorder: Recorder::default(),
        })
    }

    /// Bulk loads a tree from tuples using Sort-Tile-Recursive packing.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if any tuple's dimensionality
    /// differs from `dims`.
    pub fn bulk_load(dims: usize, tuples: Vec<UncertainTuple>) -> Result<Self, Error> {
        Self::bulk_load_with(dims, tuples, DEFAULT_MAX_ENTRIES)
    }

    /// Bulk loads with an explicit node capacity.
    ///
    /// # Errors
    ///
    /// Same as [`PrTree::bulk_load`], plus [`Error::InvalidCapacity`].
    pub fn bulk_load_with(
        dims: usize,
        tuples: Vec<UncertainTuple>,
        max_entries: usize,
    ) -> Result<Self, Error> {
        let mut tree = Self::with_capacity(dims, max_entries)?;
        if let Some(bad) = tuples.iter().find(|t| t.dims() != dims) {
            return Err(Error::DimensionMismatch { expected: dims, actual: bad.dims() });
        }
        if tuples.is_empty() {
            return Ok(tree);
        }
        tree.len = tuples.len();

        // STR: recursively tile the points into leaf-sized groups, then
        // build each leaf (columnar batch + summary) on the pool. Arena
        // allocation stays sequential so node indices are deterministic;
        // the group order itself is pool-size independent (the parallel
        // sort is stable and slabs are processed in slab order).
        let groups = str_tiles(tuples, 0, dims, max_entries);
        let built = threadpool::parallel_map_vec(groups, |_, g| {
            let node = Node::leaf(g);
            let summary = node.summary().expect("STR groups are non-empty");
            (node, summary)
        });
        let mut level: Vec<(usize, Summary)> =
            built.into_iter().map(|(node, summary)| (tree.alloc(node), summary)).collect();

        // Pack upper levels from consecutive (already spatially clustered)
        // children until a single root remains.
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(max_entries));
            for chunk in level.chunks(max_entries) {
                let node = Node::internal(chunk.to_vec());
                let summary = node.summary().expect("chunks are non-empty");
                next.push((tree.alloc(node), summary));
            }
            level = next;
        }
        tree.root = Some(level[0].0);
        Ok(tree)
    }

    /// Attaches an observability recorder: BBS traversals over this tree
    /// will count visited nodes, pruned subtrees, and local-skyline sizes
    /// against it. The default recorder is disabled (no-op).
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.recorder = recorder;
    }

    /// The recorder attached to this tree (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Dimensionality of the indexed space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree stores no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Aggregate summary of the whole tree, or `None` if empty.
    pub fn summary(&self) -> Option<Summary> {
        self.root.and_then(|r| self.node(r).summary())
    }

    /// Inserts a tuple.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] for a tuple of the wrong
    /// dimensionality, or [`Error::DuplicateId`] if a tuple with the same
    /// id is already stored at the same point.
    pub fn insert(&mut self, tuple: UncertainTuple) -> Result<(), Error> {
        if tuple.dims() != self.dims {
            return Err(Error::DimensionMismatch { expected: self.dims, actual: tuple.dims() });
        }
        if self.get(tuple.id(), tuple.values()).is_some() {
            return Err(Error::DuplicateId);
        }
        match self.root {
            None => {
                let idx = self.alloc(Node::leaf(vec![tuple]));
                self.root = Some(idx);
            }
            Some(root) => {
                if let Some((split_idx, split_summary)) = self.insert_rec(root, tuple) {
                    // Root split: grow the tree by one level.
                    let old_summary = self.node(root).summary().expect("split roots are non-empty");
                    let new_root =
                        Node::internal(vec![(root, old_summary), (split_idx, split_summary)]);
                    let idx = self.alloc(new_root);
                    self.root = Some(idx);
                }
            }
        }
        self.len += 1;
        Ok(())
    }

    /// Removes the tuple with the given id located at `point`.
    ///
    /// Returns the removed tuple, or `None` if no such tuple exists. The
    /// point must match the tuple's stored values (callers in the update
    /// workflow always know the full tuple).
    pub fn remove(&mut self, id: TupleId, point: &[f64]) -> Option<UncertainTuple> {
        let root = self.root?;
        let removed = self.remove_rec(root, id, point)?;
        self.len -= 1;
        // Collapse trivial roots.
        while let Some(root) = self.root {
            match &self.node(root).body {
                NodeBody::Leaf(leaf) => {
                    if leaf.is_empty() {
                        self.dealloc(root);
                        self.root = None;
                    }
                    break;
                }
                NodeBody::Internal(children) => match children.len() {
                    0 => {
                        self.dealloc(root);
                        self.root = None;
                        break;
                    }
                    1 => {
                        let only = children[0].0;
                        self.dealloc(root);
                        self.root = Some(only);
                    }
                    _ => break,
                },
            }
        }
        Some(removed)
    }

    /// Looks up a tuple by id and location.
    pub fn get(&self, id: TupleId, point: &[f64]) -> Option<&UncertainTuple> {
        let root = self.root?;
        self.get_rec(root, id, point)
    }

    /// The survival product `∏ (1 − P(t))` over all stored tuples `t` that
    /// strictly dominate `point` on the masked dimensions.
    ///
    /// This is the paper's Section 6.3 window query (Fig. 6): subtrees whose
    /// MBR lies entirely inside the dominator window contribute their
    /// pre-aggregated product; only boundary nodes are opened.
    pub fn survival_product(&self, point: &[f64], mask: SubspaceMask) -> f64 {
        match self.root {
            None => 1.0,
            Some(root) => self.survival_rec(root, point, mask),
        }
    }

    /// The survival products of `K` probe points in a *single* shared
    /// traversal: each tree node is visited at most once no matter how many
    /// probes need it, and a subtree is skipped only when it is prunable
    /// (outside the dominator window, or fully inside it with its
    /// pre-aggregated product usable) for *every* still-active probe.
    ///
    /// `out` is cleared and filled so that `out[k]` is bit-identical to
    /// `self.survival_product(probes[k], mask)`: per probe, child subtree
    /// factors are multiplied in exactly the same nested order as the
    /// single-probe recursion, and leaf products come from the same
    /// columnar kernel. Batching changes how many nodes are touched, never
    /// what any probe observes.
    ///
    /// `scratch` holds the per-level active sets and partial products; it
    /// is reused across calls so steady-state traversals allocate nothing.
    /// When the tree's recorder is enabled, each visited node bumps
    /// [`Counter::MultiProbeNodeVisits`] once per traversal.
    ///
    /// `probes` is any [`ProbeSet`]: a slice of probe rows, or a flat
    /// row-major [`dsud_uncertain::ProbeRows`] buffer gathered from a
    /// columnar wire frame — the traversal only ever asks for probe `k` as
    /// a row, so the storage shape cannot affect results.
    pub fn survival_products<P: ProbeSet + ?Sized>(
        &self,
        probes: &P,
        mask: SubspaceMask,
        scratch: &mut MultiProbeScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.resize(probes.len(), 1.0);
        let Some(root) = self.root else { return };
        if probes.is_empty() {
            return;
        }
        scratch.visited = 0;
        scratch.roots.clear();
        scratch.roots.extend(0..probes.len() as u32);
        let roots = std::mem::take(&mut scratch.roots);
        self.survival_products_rec(root, probes, &roots, mask, out, scratch, 0);
        scratch.roots = roots;
        if self.recorder.is_enabled() {
            self.recorder.add(Counter::MultiProbeNodeVisits, scratch.visited);
        }
    }

    fn survival_products_rec<P: ProbeSet + ?Sized>(
        &self,
        idx: usize,
        probes: &P,
        active: &[u32],
        mask: SubspaceMask,
        out: &mut [f64],
        scratch: &mut MultiProbeScratch,
        depth: usize,
    ) {
        scratch.visited += 1;
        match &self.node(idx).body {
            // Per probe, the leaf product is the same columnar-kernel call
            // the single-probe recursion makes, so it is bit-identical.
            NodeBody::Leaf(leaf) => {
                for &k in active {
                    out[k as usize] = leaf.batch().survival_product(probes.probe(k as usize), mask);
                }
            }
            NodeBody::Internal(children) => {
                for &k in active {
                    out[k as usize] = 1.0;
                }
                if scratch.levels.len() <= depth {
                    scratch.levels.resize_with(depth + 1, MultiProbeLevel::default);
                }
                let mut level = std::mem::take(&mut scratch.levels[depth]);
                for (child, s) in children {
                    level.active.clear();
                    for &k in active {
                        let probe = probes.probe(k as usize);
                        if !s.mbr.may_contain_dominator(probe, mask) {
                            continue;
                        }
                        if s.mbr.fully_dominates(probe, mask) {
                            out[k as usize] *= s.survival;
                        } else {
                            level.active.push(k);
                        }
                    }
                    if !level.active.is_empty() {
                        // The child's subtree factor must be computed as a
                        // standalone nested product (starting at 1.0) and
                        // only then multiplied in — flattening the
                        // accumulation would change rounding.
                        level.products.clear();
                        level.products.resize(probes.len(), 1.0);
                        self.survival_products_rec(
                            *child,
                            probes,
                            &level.active,
                            mask,
                            &mut level.products,
                            scratch,
                            depth + 1,
                        );
                        for &k in &level.active {
                            out[k as usize] *= level.products[k as usize];
                        }
                    }
                }
                scratch.levels[depth] = level;
            }
        }
    }

    /// All stored tuples that strictly dominate `point` on the masked
    /// dimensions (the shaded window of the paper's Fig. 6).
    pub fn dominators(&self, point: &[f64], mask: SubspaceMask) -> Vec<&UncertainTuple> {
        let mut out = Vec::new();
        if let Some(root) = self.root {
            self.dominators_rec(root, point, mask, &mut out);
        }
        out
    }

    /// All stored tuples whose values lie inside the closed box
    /// `[lower, upper]` (componentwise). Complements the dominance-window
    /// queries for general spatial workloads.
    pub fn range_query(&self, lower: &[f64], upper: &[f64]) -> Vec<&UncertainTuple> {
        let mut out = Vec::new();
        let Some(root) = self.root else { return out };
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            match &self.node(idx).body {
                NodeBody::Leaf(leaf) => out.extend(leaf.tuples().iter().filter(|t| {
                    t.values()
                        .iter()
                        .zip(lower.iter().zip(upper))
                        .all(|(&v, (&lo, &hi))| lo <= v && v <= hi)
                })),
                NodeBody::Internal(children) => {
                    for (child, s) in children {
                        let intersects = s
                            .mbr
                            .lower()
                            .iter()
                            .zip(s.mbr.upper())
                            .zip(lower.iter().zip(upper))
                            .all(|((&blo, &bhi), (&lo, &hi))| blo <= hi && bhi >= lo);
                        if intersects {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
        out
    }

    /// Structural statistics: `(height, node_count)`. Height 0 means an
    /// empty tree; a lone leaf has height 1.
    pub fn shape(&self) -> (usize, usize) {
        fn walk(tree: &PrTree, idx: usize) -> (usize, usize) {
            match &tree.node(idx).body {
                NodeBody::Leaf(_) => (1, 1),
                NodeBody::Internal(children) => {
                    let mut height = 0;
                    let mut nodes = 1;
                    for (child, _) in children {
                        let (h, n) = walk(tree, *child);
                        height = height.max(h);
                        nodes += n;
                    }
                    (height + 1, nodes)
                }
            }
        }
        match self.root {
            None => (0, 0),
            Some(root) => walk(self, root),
        }
    }

    /// Iterates over every stored tuple (arbitrary order).
    pub fn iter(&self) -> Iter<'_> {
        Iter { tree: self, stack: self.root.into_iter().collect(), leaf: None }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    pub(crate) fn node(&self, idx: usize) -> &Node {
        self.nodes[idx].as_ref().expect("live node index")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node {
        self.nodes[idx].as_mut().expect("live node index")
    }

    pub(crate) fn root_index(&self) -> Option<usize> {
        self.root
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Some(node);
            idx
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    fn dealloc(&mut self, idx: usize) {
        self.nodes[idx] = None;
        self.free.push(idx);
    }

    /// Recursive insert; returns `Some((node, summary))` when this node was
    /// split and the new sibling must be linked into the parent.
    fn insert_rec(&mut self, idx: usize, tuple: UncertainTuple) -> Option<(usize, Summary)> {
        let is_leaf = matches!(self.node(idx).body, NodeBody::Leaf(_));
        if is_leaf {
            let max = self.max_entries;
            let NodeBody::Leaf(leaf) = &mut self.node_mut(idx).body else { unreachable!() };
            leaf.push(tuple);
            if leaf.len() <= max {
                return None;
            }
            // Split: sort on the widest dimension and halve.
            let mut moved = leaf.take_tuples();
            let dim = widest_dim(moved.iter().map(|t| t.values()), self.dims);
            moved.sort_by(|a, b| {
                a.values()[dim].partial_cmp(&b.values()[dim]).expect("finite values")
            });
            let right = moved.split_off(moved.len() / 2);
            let NodeBody::Leaf(leaf) = &mut self.node_mut(idx).body else { unreachable!() };
            leaf.set_tuples(moved);
            let right_node = Node::leaf(right);
            let right_summary = right_node.summary().expect("split halves are non-empty");
            let right_idx = self.alloc(right_node);
            Some((right_idx, right_summary))
        } else {
            // Choose the child whose MBR needs least enlargement.
            let chosen = {
                let NodeBody::Internal(children) = &self.node(idx).body else { unreachable!() };
                let mut best = 0;
                let mut best_cost = f64::INFINITY;
                for (pos, (_, s)) in children.iter().enumerate() {
                    let cost = s.mbr.enlargement_for(tuple.values());
                    if cost < best_cost {
                        best_cost = cost;
                        best = pos;
                    }
                }
                best
            };
            let child_idx = {
                let NodeBody::Internal(children) = &self.node(idx).body else { unreachable!() };
                children[chosen].0
            };
            let split = self.insert_rec(child_idx, tuple);
            // Refresh the chosen child's summary.
            let child_summary = self.node(child_idx).summary().expect("child is non-empty");
            let max = self.max_entries;
            let NodeBody::Internal(children) = &mut self.node_mut(idx).body else { unreachable!() };
            children[chosen].1 = child_summary;
            if let Some(entry) = split {
                children.push(entry);
            }
            if children.len() <= max {
                return None;
            }
            // Split the internal node on the widest dimension of child
            // MBR centers.
            let mut moved = std::mem::take(children);
            let dim = widest_dim(moved.iter().map(|(_, s)| s.mbr.lower()), self.dims);
            moved.sort_by(|a, b| {
                let ca = (a.1.mbr.lower()[dim] + a.1.mbr.upper()[dim]) / 2.0;
                let cb = (b.1.mbr.lower()[dim] + b.1.mbr.upper()[dim]) / 2.0;
                ca.partial_cmp(&cb).expect("finite values")
            });
            let right = moved.split_off(moved.len() / 2);
            let NodeBody::Internal(children) = &mut self.node_mut(idx).body else { unreachable!() };
            *children = moved;
            let right_node = Node::internal(right);
            let right_summary = right_node.summary().expect("split halves are non-empty");
            let right_idx = self.alloc(right_node);
            Some((right_idx, right_summary))
        }
    }

    fn remove_rec(&mut self, idx: usize, id: TupleId, point: &[f64]) -> Option<UncertainTuple> {
        let is_leaf = matches!(self.node(idx).body, NodeBody::Leaf(_));
        if is_leaf {
            let NodeBody::Leaf(leaf) = &mut self.node_mut(idx).body else { unreachable!() };
            let pos = leaf.tuples().iter().position(|t| t.id() == id)?;
            return Some(leaf.swap_remove(pos));
        }
        // Try each child whose MBR contains the point.
        let candidates: Vec<(usize, usize)> = {
            let NodeBody::Internal(children) = &self.node(idx).body else { unreachable!() };
            children
                .iter()
                .enumerate()
                .filter(|(_, (_, s))| s.mbr.contains_point(point))
                .map(|(pos, (child, _))| (pos, *child))
                .collect()
        };
        for (pos, child_idx) in candidates {
            if let Some(removed) = self.remove_rec(child_idx, id, point) {
                match self.node(child_idx).summary() {
                    Some(s) => {
                        let NodeBody::Internal(children) = &mut self.node_mut(idx).body else {
                            unreachable!()
                        };
                        children[pos].1 = s;
                    }
                    None => {
                        // Child became empty: unlink and free it.
                        self.dealloc(child_idx);
                        let NodeBody::Internal(children) = &mut self.node_mut(idx).body else {
                            unreachable!()
                        };
                        children.swap_remove(pos);
                    }
                }
                return Some(removed);
            }
        }
        None
    }

    fn get_rec(&self, idx: usize, id: TupleId, point: &[f64]) -> Option<&UncertainTuple> {
        match &self.node(idx).body {
            NodeBody::Leaf(leaf) => leaf.tuples().iter().find(|t| t.id() == id),
            NodeBody::Internal(children) => children
                .iter()
                .filter(|(_, s)| s.mbr.contains_point(point))
                .find_map(|(child, _)| self.get_rec(*child, id, point)),
        }
    }

    fn survival_rec(&self, idx: usize, point: &[f64], mask: SubspaceMask) -> f64 {
        match &self.node(idx).body {
            // The batch kernel multiplies complements in ascending row
            // order — exactly the order of the scalar filter/product loop
            // it replaced, so leaf products are bit-identical.
            NodeBody::Leaf(leaf) => leaf.batch().survival_product(point, mask),
            NodeBody::Internal(children) => {
                let mut product = 1.0;
                for (child, s) in children {
                    if !s.mbr.may_contain_dominator(point, mask) {
                        continue;
                    }
                    if s.mbr.fully_dominates(point, mask) {
                        product *= s.survival;
                    } else {
                        product *= self.survival_rec(*child, point, mask);
                    }
                }
                product
            }
        }
    }

    fn dominators_rec<'a>(
        &'a self,
        idx: usize,
        point: &[f64],
        mask: SubspaceMask,
        out: &mut Vec<&'a UncertainTuple>,
    ) {
        match &self.node(idx).body {
            NodeBody::Leaf(leaf) => {
                let mut rows = Vec::new();
                leaf.batch().dominators_of(point, mask, &mut rows);
                out.extend(rows.into_iter().map(|i| &leaf.tuples()[i]));
            }
            NodeBody::Internal(children) => {
                for (child, s) in children {
                    if s.mbr.may_contain_dominator(point, mask) {
                        self.dominators_rec(*child, point, mask, out);
                    }
                }
            }
        }
    }

    /// Verifies structural invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        let Some(root) = self.root else {
            assert_eq!(self.len, 0, "empty tree must have len 0");
            return;
        };
        let count = self.check_rec(root);
        assert_eq!(count, self.len, "stored len must match tuple count");
    }

    fn check_rec(&self, idx: usize) -> usize {
        match &self.node(idx).body {
            NodeBody::Leaf(leaf) => leaf.len(),
            NodeBody::Internal(children) => {
                assert!(!children.is_empty(), "internal nodes are never empty");
                let mut total = 0;
                for (child, summary) in children {
                    let fresh = self.node(*child).summary().expect("children are non-empty");
                    assert_eq!(&fresh.mbr, &summary.mbr, "stale MBR");
                    assert_eq!(fresh.count, summary.count, "stale count");
                    assert!(
                        (fresh.survival - summary.survival).abs() < 1e-9,
                        "stale survival product"
                    );
                    total += self.check_rec(*child);
                }
                total
            }
        }
    }
}

/// Iterator over all tuples of a [`PrTree`].
#[derive(Debug)]
pub struct Iter<'a> {
    tree: &'a PrTree,
    stack: Vec<usize>,
    leaf: Option<(usize, usize)>,
}

impl<'a> Iterator for Iter<'a> {
    type Item = &'a UncertainTuple;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((node, pos)) = self.leaf {
                let NodeBody::Leaf(leaf) = &self.tree.node(node).body else { unreachable!() };
                if pos < leaf.len() {
                    self.leaf = Some((node, pos + 1));
                    return Some(&leaf.tuples()[pos]);
                }
                self.leaf = None;
            }
            let idx = self.stack.pop()?;
            match &self.tree.node(idx).body {
                NodeBody::Leaf(_) => self.leaf = Some((idx, 0)),
                NodeBody::Internal(children) => {
                    self.stack.extend(children.iter().map(|(c, _)| *c));
                }
            }
        }
    }
}

impl<'a> IntoIterator for &'a PrTree {
    type Item = &'a UncertainTuple;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Finds the dimension with the greatest coordinate spread.
fn widest_dim<'a, I>(points: I, dims: usize) -> usize
where
    I: Iterator<Item = &'a [f64]>,
{
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for p in points {
        for d in 0..dims {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    (0..dims)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).expect("finite spreads"))
        .unwrap_or(0)
}

/// Sort-Tile-Recursive partitioning into groups of at most `cap` tuples.
///
/// The top-level sort runs on the [`threadpool`] (stable parallel merge
/// sort, identical output to `sort_by`), and the first round of slabs is
/// tiled concurrently. Group order and contents are independent of the
/// pool size.
fn str_tiles(
    mut items: Vec<UncertainTuple>,
    dim: usize,
    dims: usize,
    cap: usize,
) -> Vec<Vec<UncertainTuple>> {
    if items.len() <= cap {
        return vec![items];
    }
    threadpool::par_sort_by(&mut items, |a, b| {
        a.values()[dim].partial_cmp(&b.values()[dim]).expect("finite values")
    });
    if dim + 1 == dims {
        return items.chunks(cap).map(|c| c.to_vec()).collect();
    }
    let n_groups = items.len().div_ceil(cap);
    let remaining = (dims - dim) as f64;
    let n_slabs = (n_groups as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = items.len().div_ceil(n_slabs.max(1));
    let mut slabs = Vec::new();
    let mut rest = items;
    while !rest.is_empty() {
        let take = slab_size.min(rest.len());
        slabs.push(rest.drain(..take).collect::<Vec<UncertainTuple>>());
    }
    if dim == 0 {
        // Fan the independent slabs across the pool; recursion below the
        // first dimension stays sequential inside each worker.
        threadpool::parallel_map_vec(slabs, |_, slab| str_tiles(slab, dim + 1, dims, cap))
            .into_iter()
            .flatten()
            .collect()
    } else {
        slabs.into_iter().flat_map(|slab| str_tiles(slab, dim + 1, dims, cap)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{dominates, Probability, UncertainDb};

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn full(d: usize) -> SubspaceMask {
        SubspaceMask::full(d).unwrap()
    }

    /// Deterministic pseudo-random tuples (LCG; no external deps needed).
    fn random_tuples(n: usize, dims: usize, seed: u64) -> Vec<UncertainTuple> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                let values = (0..dims).map(|_| (next() * 1000.0).round() / 10.0).collect();
                let p = (next() * 0.99 + 0.005).clamp(0.005, 1.0);
                tuple(i as u64, values, p)
            })
            .collect()
    }

    #[test]
    fn empty_tree_behaviour() {
        let tree = PrTree::new(2).unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.survival_product(&[1.0, 1.0], full(2)), 1.0);
        assert!(tree.dominators(&[1.0, 1.0], full(2)).is_empty());
        assert!(tree.summary().is_none());
        assert_eq!(tree.iter().count(), 0);
        tree.check_invariants();
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PrTree::new(0).is_err());
        assert!(PrTree::with_capacity(2, 1).is_err());
        let mut tree = PrTree::new(2).unwrap();
        assert!(matches!(
            tree.insert(tuple(0, vec![1.0], 0.5)),
            Err(Error::DimensionMismatch { .. })
        ));
        assert!(matches!(
            PrTree::bulk_load(3, vec![tuple(0, vec![1.0, 2.0], 0.5)]),
            Err(Error::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_id() {
        let mut tree = PrTree::new(2).unwrap();
        tree.insert(tuple(5, vec![1.0, 2.0], 0.5)).unwrap();
        assert_eq!(tree.insert(tuple(5, vec![1.0, 2.0], 0.7)), Err(Error::DuplicateId));
    }

    #[test]
    fn bulk_load_indexes_everything() {
        for n in [0, 1, 5, 33, 200, 1111] {
            let tuples = random_tuples(n, 3, 42);
            let tree = PrTree::bulk_load(3, tuples.clone()).unwrap();
            assert_eq!(tree.len(), n);
            tree.check_invariants();
            let mut seen: Vec<u64> = tree.iter().map(|t| t.id().seq).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..n as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    fn survival_matches_linear_scan() {
        for dims in [2, 3, 4] {
            let tuples = random_tuples(500, dims, 7 + dims as u64);
            let db = UncertainDb::from_tuples(dims, tuples.clone()).unwrap();
            let tree = PrTree::bulk_load(dims, tuples).unwrap();
            let mask = full(dims);
            for probe in random_tuples(50, dims, 99) {
                let expected = db.survival_product(probe.values());
                let got = tree.survival_product(probe.values(), mask);
                assert!((expected - got).abs() < 1e-9, "dims {dims}: {expected} vs {got}");
            }
        }
    }

    #[test]
    fn survival_matches_on_subspaces() {
        let tuples = random_tuples(300, 4, 11);
        let db = UncertainDb::from_tuples(4, tuples.clone()).unwrap();
        let tree = PrTree::bulk_load(4, tuples).unwrap();
        for mask in [
            SubspaceMask::from_dims(&[0]).unwrap(),
            SubspaceMask::from_dims(&[1, 3]).unwrap(),
            SubspaceMask::from_dims(&[0, 1, 2]).unwrap(),
        ] {
            for probe in random_tuples(20, 4, 5) {
                let expected = db.survival_product_in(probe.values(), mask);
                let got = tree.survival_product(probe.values(), mask);
                assert!((expected - got).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn multi_probe_survivals_are_bit_identical_to_single_probe() {
        for dims in [2, 3, 4] {
            let tuples = random_tuples(600, dims, 21 + dims as u64);
            let tree = PrTree::bulk_load(dims, tuples).unwrap();
            let mask = full(dims);
            let probe_tuples = random_tuples(37, dims, 123);
            let probes: Vec<&[f64]> = probe_tuples.iter().map(|t| t.values()).collect();
            let mut scratch = MultiProbeScratch::default();
            let mut out = Vec::new();
            tree.survival_products(&probes, mask, &mut scratch, &mut out);
            assert_eq!(out.len(), probes.len());
            for (k, probe) in probes.iter().enumerate() {
                let single = tree.survival_product(probe, mask);
                assert_eq!(
                    out[k].to_bits(),
                    single.to_bits(),
                    "dims {dims}, probe {k}: batched {} vs single {single}",
                    out[k]
                );
            }
        }
    }

    #[test]
    fn multi_probe_survivals_match_on_subspaces() {
        let tuples = random_tuples(400, 4, 31);
        let tree = PrTree::bulk_load(4, tuples).unwrap();
        let probe_tuples = random_tuples(16, 4, 17);
        let probes: Vec<&[f64]> = probe_tuples.iter().map(|t| t.values()).collect();
        let mut scratch = MultiProbeScratch::default();
        let mut out = Vec::new();
        for mask in [
            SubspaceMask::from_dims(&[0]).unwrap(),
            SubspaceMask::from_dims(&[1, 3]).unwrap(),
            SubspaceMask::from_dims(&[0, 1, 2]).unwrap(),
        ] {
            tree.survival_products(&probes, mask, &mut scratch, &mut out);
            for (k, probe) in probes.iter().enumerate() {
                assert_eq!(out[k].to_bits(), tree.survival_product(probe, mask).to_bits());
            }
        }
    }

    #[test]
    fn multi_probe_on_empty_inputs() {
        let tree = PrTree::new(2).unwrap();
        let mut scratch = MultiProbeScratch::default();
        let mut out = vec![0.25; 3];
        // Empty tree: every probe survives with product 1.
        let probes: &[&[f64]] = &[&[1.0, 1.0], &[2.0, 2.0]];
        tree.survival_products(probes, full(2), &mut scratch, &mut out);
        assert_eq!(out, vec![1.0, 1.0]);
        // Empty probe set: output empties.
        let loaded = PrTree::bulk_load(2, random_tuples(50, 2, 3)).unwrap();
        loaded.survival_products(&Vec::<&[f64]>::new(), full(2), &mut scratch, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn multi_probe_shares_node_visits_and_counts_them() {
        use dsud_obs::Recorder;
        let mut tree = PrTree::bulk_load(3, random_tuples(2000, 3, 55)).unwrap();
        let rec = Recorder::enabled();
        tree.set_recorder(rec.clone());
        let probe_tuples = random_tuples(8, 3, 77);
        let probes: Vec<&[f64]> = probe_tuples.iter().map(|t| t.values()).collect();
        let mut scratch = MultiProbeScratch::default();
        let mut out = Vec::new();
        tree.survival_products(&probes, full(3), &mut scratch, &mut out);
        let shared = rec.counter(Counter::MultiProbeNodeVisits);
        assert!(shared >= 1, "traversal must visit at least the root");
        // Shared traversal can never visit more nodes than the probes
        // would visit independently, and each node at most once per call.
        let (_, node_count) = tree.shape();
        assert!(shared <= node_count as u64);
    }

    #[test]
    fn incremental_insert_matches_bulk_load() {
        let tuples = random_tuples(400, 2, 3);
        let bulk = PrTree::bulk_load(2, tuples.clone()).unwrap();
        let mut incr = PrTree::new(2).unwrap();
        for t in tuples.clone() {
            incr.insert(t).unwrap();
        }
        incr.check_invariants();
        assert_eq!(incr.len(), bulk.len());
        let mask = full(2);
        for probe in random_tuples(30, 2, 77) {
            let a = bulk.survival_product(probe.values(), mask);
            let b = incr.survival_product(probe.values(), mask);
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn remove_then_query_stays_consistent() {
        let tuples = random_tuples(300, 2, 5);
        let mut tree = PrTree::bulk_load(2, tuples.clone()).unwrap();
        // Remove every third tuple.
        let mut remaining = Vec::new();
        for (i, t) in tuples.iter().enumerate() {
            if i % 3 == 0 {
                let removed = tree.remove(t.id(), t.values()).expect("tuple is present");
                assert_eq!(removed.id(), t.id());
            } else {
                remaining.push(t.clone());
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), remaining.len());
        let db = UncertainDb::from_tuples(2, remaining).unwrap();
        let mask = full(2);
        for probe in random_tuples(30, 2, 123) {
            let expected = db.survival_product(probe.values());
            let got = tree.survival_product(probe.values(), mask);
            assert!((expected - got).abs() < 1e-9);
        }
    }

    #[test]
    fn remove_everything_empties_tree() {
        let tuples = random_tuples(100, 3, 9);
        let mut tree = PrTree::bulk_load(3, tuples.clone()).unwrap();
        for t in &tuples {
            assert!(tree.remove(t.id(), t.values()).is_some());
        }
        assert!(tree.is_empty());
        assert!(tree.root_index().is_none());
        tree.check_invariants();
        // And it can be refilled.
        for t in tuples {
            tree.insert(t).unwrap();
        }
        assert_eq!(tree.len(), 100);
        tree.check_invariants();
    }

    #[test]
    fn remove_missing_returns_none() {
        let tuples = random_tuples(50, 2, 21);
        let mut tree = PrTree::bulk_load(2, tuples).unwrap();
        assert!(tree.remove(TupleId::new(9, 9), &[1.0, 1.0]).is_none());
        assert_eq!(tree.len(), 50);
    }

    #[test]
    fn get_finds_stored_tuples() {
        let tuples = random_tuples(200, 2, 31);
        let tree = PrTree::bulk_load(2, tuples.clone()).unwrap();
        for t in &tuples {
            let found = tree.get(t.id(), t.values()).expect("tuple stored");
            assert_eq!(found, t);
        }
        assert!(tree.get(TupleId::new(1, 1), &[0.0, 0.0]).is_none());
    }

    #[test]
    fn range_query_matches_scan() {
        let tuples = random_tuples(400, 3, 51);
        let tree = PrTree::bulk_load(3, tuples.clone()).unwrap();
        for (lower, upper) in [
            (vec![0.0, 0.0, 0.0], vec![100.0, 100.0, 100.0]),
            (vec![20.0, 30.0, 10.0], vec![70.0, 60.0, 90.0]),
            (vec![99.0, 99.0, 99.0], vec![99.5, 99.5, 99.5]),
        ] {
            let mut got: Vec<u64> =
                tree.range_query(&lower, &upper).iter().map(|t| t.id().seq).collect();
            got.sort_unstable();
            let mut expected: Vec<u64> = tuples
                .iter()
                .filter(|t| {
                    t.values()
                        .iter()
                        .zip(lower.iter().zip(&upper))
                        .all(|(&v, (&lo, &hi))| lo <= v && v <= hi)
                })
                .map(|t| t.id().seq)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "box {lower:?}..{upper:?}");
        }
    }

    #[test]
    fn shape_reports_height_and_nodes() {
        let empty = PrTree::new(2).unwrap();
        assert_eq!(empty.shape(), (0, 0));
        let small = PrTree::bulk_load(2, random_tuples(5, 2, 1)).unwrap();
        assert_eq!(small.shape(), (1, 1));
        let big = PrTree::bulk_load_with(2, random_tuples(1000, 2, 2), 8).unwrap();
        let (height, nodes) = big.shape();
        assert!(height >= 3, "height {height}");
        assert!(nodes >= 1000 / 8, "nodes {nodes}");
    }

    #[test]
    fn bulk_load_is_pool_size_invariant() {
        let tuples = random_tuples(2000, 3, 123);
        threadpool::set_pool_size(1);
        let reference = PrTree::bulk_load(3, tuples.clone()).unwrap();
        threadpool::set_pool_size(0);
        let ref_order: Vec<u64> = reference.iter().map(|t| t.id().seq).collect();
        for pool in [2usize, 8] {
            threadpool::set_pool_size(pool);
            let tree = PrTree::bulk_load(3, tuples.clone()).unwrap();
            threadpool::set_pool_size(0);
            tree.check_invariants();
            assert_eq!(tree.shape(), reference.shape(), "pool {pool}");
            let order: Vec<u64> = tree.iter().map(|t| t.id().seq).collect();
            assert_eq!(order, ref_order, "pool {pool}");
        }
    }

    #[test]
    fn single_leaf_survival_is_bit_identical_to_scalar() {
        // With all tuples in one leaf, the tree product is exactly the
        // kernel's leaf product, which must equal the scalar loop with ==.
        let tuples = random_tuples(300, 3, 9);
        let tree = PrTree::bulk_load_with(3, tuples.clone(), 512).unwrap();
        assert_eq!(tree.shape(), (1, 1));
        let mask = full(3);
        for probe in random_tuples(40, 3, 31) {
            let scalar: f64 = tuples
                .iter()
                .filter(|t| dsud_uncertain::dominates_in(t.values(), probe.values(), mask))
                .map(|t| t.prob().complement())
                .product();
            let got = tree.survival_product(probe.values(), mask);
            assert_eq!(got.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn dominators_match_definition() {
        let tuples = random_tuples(200, 2, 17);
        let tree = PrTree::bulk_load(2, tuples.clone()).unwrap();
        let mask = full(2);
        let probe = [500.0, 500.0];
        let mut got: Vec<u64> = tree.dominators(&probe, mask).iter().map(|t| t.id().seq).collect();
        got.sort_unstable();
        let mut expected: Vec<u64> =
            tuples.iter().filter(|t| dominates(t.values(), &probe)).map(|t| t.id().seq).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }
}
