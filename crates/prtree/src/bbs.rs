//! Branch-and-Bound Skyline over the PR-tree (paper Section 6.2).
//!
//! The local skyline of an uncertain database, for threshold `q`, is the
//! set of tuples whose *local* skyline probability `P_sky(t, D_i)` is at
//! least `q` — a superset check that every global skyline answer must pass
//! (Corollary 1). The traversal expands entries in ascending `mindist`
//! order from the space origin and prunes any subtree whose best possible
//! skyline probability,
//!
//! ```text
//! bound(e) = P2(e) × ∏_{t' ≺ lower(e)} (1 − P(t'))
//! ```
//!
//! falls below `q`: every tuple `t` under `e` has `P(t) <= P2(e)` and is
//! dominated by at least the dominators of `e`'s lower corner, so `bound`
//! is a true upper bound. This generalizes the paper's single-dominator
//! pruning rule ("an object `a` dominates entry `b` and
//! `P2(b) × (1 − P(a)) < q`") to the full dominator window, pruning at
//! least as much.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dsud_obs::Counter;
use dsud_uncertain::{SkylineEntry, SubspaceMask};

use crate::node::NodeBody;
use crate::{Error, PrTree};

/// `f64` ordered by value; all keys are finite coordinate sums.
#[derive(Debug, Clone, Copy, PartialEq)]
struct MinDist(f64);

impl Eq for MinDist {}

impl PartialOrd for MinDist {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MinDist {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("mindist keys are finite")
    }
}

/// Reusable traversal buffers for the BBS procedures.
///
/// A site answering many queries (or re-evaluating after updates) can hold
/// one scratch and pass it to [`local_skyline_with`] /
/// [`local_skyline_in_region_with`] to amortize the heap, stack, and
/// dominated-row allocations across calls. The buffers are cleared on
/// entry, so reuse never changes results.
#[derive(Debug, Default)]
pub struct BbsScratch {
    heap: BinaryHeap<Reverse<(MinDist, usize)>>,
    stack: Vec<usize>,
    rows: Vec<usize>,
    multi: crate::tree::MultiProbeScratch,
}

impl BbsScratch {
    /// The multi-probe traversal buffers for
    /// [`PrTree::survival_products`](crate::PrTree::survival_products),
    /// so one site-held scratch serves both the BBS procedures and batched
    /// feedback rounds.
    pub fn multi_probe(&mut self) -> &mut crate::tree::MultiProbeScratch {
        &mut self.multi
    }

    /// Read-only footprint of the multi-probe buffers (see
    /// [`MultiProbeScratch::footprint`](crate::tree::MultiProbeScratch::footprint)),
    /// so callers holding a site-level scratch can assert that batched
    /// feedback reached its allocation-free steady state.
    pub fn multi_probe_footprint(&self) -> usize {
        self.multi.footprint()
    }
}

/// Computes the qualified local skyline `SKY(D_i)`: every tuple whose local
/// skyline probability is at least `q`, sorted in descending probability
/// (ties broken by tuple id).
///
/// # Errors
///
/// Returns [`Error::InvalidThreshold`] if `q` is outside `(0, 1]`, or
/// [`Error::Subspace`] if `mask` selects dimensions outside the tree's
/// space.
///
/// # Example
///
/// ```
/// use dsud_prtree::{bbs, PrTree};
/// use dsud_uncertain::{Probability, SubspaceMask, TupleId, UncertainTuple};
///
/// # fn main() -> Result<(), dsud_prtree::Error> {
/// let tree = PrTree::bulk_load(2, vec![
///     UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 1.0], Probability::new(0.9).unwrap()).unwrap(),
///     UncertainTuple::new(TupleId::new(0, 1), vec![2.0, 2.0], Probability::new(0.9).unwrap()).unwrap(),
/// ])?;
/// let sky = bbs::local_skyline(&tree, 0.3, SubspaceMask::full(2).unwrap())?;
/// // (2,2) survives with probability 0.9 × 0.1 = 0.09 < 0.3.
/// assert_eq!(sky.len(), 1);
/// assert_eq!(sky[0].tuple.values(), &[1.0, 1.0]);
/// # Ok(())
/// # }
/// ```
pub fn local_skyline(
    tree: &PrTree,
    q: f64,
    mask: SubspaceMask,
) -> Result<Vec<SkylineEntry>, Error> {
    local_skyline_with(tree, q, mask, &mut BbsScratch::default())
}

/// [`local_skyline`] with caller-provided [`BbsScratch`] buffers, for hot
/// paths that issue many traversals against the same tree.
///
/// # Errors
///
/// Same conditions as [`local_skyline`].
pub fn local_skyline_with(
    tree: &PrTree,
    q: f64,
    mask: SubspaceMask,
    scratch: &mut BbsScratch,
) -> Result<Vec<SkylineEntry>, Error> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(Error::InvalidThreshold(q));
    }
    mask.validate_for(tree.dims())?;

    let mut out = Vec::new();
    let Some(root) = tree.root_index() else {
        return Ok(out);
    };

    let heap = &mut scratch.heap;
    heap.clear();
    let root_mindist = tree.summary().map(|s| s.mbr.mindist(mask)).unwrap_or(0.0);
    heap.push(Reverse((MinDist(root_mindist), root)));

    let mut visited = 0u64;
    let mut pruned = 0u64;
    while let Some(Reverse((_, idx))) = heap.pop() {
        visited += 1;
        match &tree.node(idx).body {
            NodeBody::Leaf(leaf) => {
                for t in leaf.tuples() {
                    let p = t.prob().get() * tree.survival_product(t.values(), mask);
                    if p >= q {
                        out.push(SkylineEntry { tuple: t.clone(), probability: p });
                    }
                }
            }
            NodeBody::Internal(children) => {
                for (child, s) in children {
                    let bound = s.p_max * tree.survival_product(s.mbr.lower(), mask);
                    if bound >= q {
                        heap.push(Reverse((MinDist(s.mbr.mindist(mask)), *child)));
                    } else {
                        pruned += 1;
                    }
                }
            }
        }
    }

    let rec = tree.recorder();
    if rec.is_enabled() {
        rec.add(Counter::PrTreeNodesVisited, visited);
        rec.add(Counter::PrTreePrunedSubtrees, pruned);
        rec.add(Counter::LocalSkylineSize, out.len() as u64);
    }

    out.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
            .then_with(|| a.tuple.id().cmp(&b.tuple.id()))
    });
    Ok(out)
}

/// Region-constrained variant of [`local_skyline`]: only tuples strictly
/// dominated by `origin` (on the masked dimensions) are considered, but
/// their probabilities are still computed against the *whole* database.
///
/// This answers the re-evaluation query of the update-maintenance protocol
/// (paper Section 5.4): after a tuple `t` is deleted, only tuples inside
/// `t`'s dominance region can gain skyline probability, so only they need
/// re-examination.
///
/// # Errors
///
/// Same conditions as [`local_skyline`].
pub fn local_skyline_in_region(
    tree: &PrTree,
    q: f64,
    mask: SubspaceMask,
    origin: &[f64],
) -> Result<Vec<SkylineEntry>, Error> {
    local_skyline_in_region_with(tree, q, mask, origin, &mut BbsScratch::default())
}

/// [`local_skyline_in_region`] with caller-provided [`BbsScratch`] buffers.
///
/// # Errors
///
/// Same conditions as [`local_skyline`].
pub fn local_skyline_in_region_with(
    tree: &PrTree,
    q: f64,
    mask: SubspaceMask,
    origin: &[f64],
    scratch: &mut BbsScratch,
) -> Result<Vec<SkylineEntry>, Error> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(Error::InvalidThreshold(q));
    }
    mask.validate_for(tree.dims())?;

    let mut out = Vec::new();
    let Some(root) = tree.root_index() else {
        return Ok(out);
    };
    let BbsScratch { stack, rows, .. } = scratch;
    stack.clear();
    stack.push(root);
    let mut visited = 0u64;
    let mut pruned = 0u64;
    while let Some(idx) = stack.pop() {
        visited += 1;
        match &tree.node(idx).body {
            NodeBody::Leaf(leaf) => {
                // Batch kernel: one columnar pass finds the rows strictly
                // dominated by `origin`, in ascending row order (the same
                // order as the scalar loop it replaced).
                rows.clear();
                leaf.batch().dominated_by(origin, mask, rows);
                for &row in rows.iter() {
                    let t = &leaf.tuples()[row];
                    let p = t.prob().get() * tree.survival_product(t.values(), mask);
                    if p >= q {
                        out.push(SkylineEntry { tuple: t.clone(), probability: p });
                    }
                }
            }
            NodeBody::Internal(children) => {
                for (child, s) in children {
                    if !s.mbr.may_contain_dominated(origin, mask) {
                        continue;
                    }
                    let bound = s.p_max * tree.survival_product(s.mbr.lower(), mask);
                    if bound >= q {
                        stack.push(*child);
                    } else {
                        pruned += 1;
                    }
                }
            }
        }
    }
    let rec = tree.recorder();
    if rec.is_enabled() {
        rec.add(Counter::PrTreeNodesVisited, visited);
        rec.add(Counter::PrTreePrunedSubtrees, pruned);
    }
    out.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
            .then_with(|| a.tuple.id().cmp(&b.tuple.id()))
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{
        dominates_in, probabilistic_skyline, Probability, TupleId, UncertainDb, UncertainTuple,
    };

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn full(d: usize) -> SubspaceMask {
        SubspaceMask::full(d).unwrap()
    }

    fn random_tuples(n: usize, dims: usize, seed: u64) -> Vec<UncertainTuple> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                let values = (0..dims).map(|_| (next() * 1000.0).round() / 10.0).collect();
                let p = (next() * 0.99 + 0.005).clamp(0.005, 1.0);
                tuple(i as u64, values, p)
            })
            .collect()
    }

    fn assert_matches_naive(tuples: Vec<UncertainTuple>, dims: usize, q: f64, mask: SubspaceMask) {
        let db = UncertainDb::from_tuples(dims, tuples.clone()).unwrap();
        let expected = probabilistic_skyline(&db, q, mask).unwrap();
        let tree = PrTree::bulk_load(dims, tuples).unwrap();
        let got = local_skyline(&tree, q, mask).unwrap();
        assert_eq!(
            got.iter().map(|e| e.tuple.id()).collect::<Vec<_>>(),
            expected.iter().map(|e| e.tuple.id()).collect::<Vec<_>>(),
            "qualified set mismatch at q={q}"
        );
        for (g, e) in got.iter().zip(&expected) {
            assert!((g.probability - e.probability).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_naive_across_thresholds() {
        for q in [0.05, 0.3, 0.5, 0.7, 0.9, 1.0] {
            assert_matches_naive(random_tuples(400, 2, 42), 2, q, full(2));
        }
    }

    #[test]
    fn matches_naive_across_dimensionalities() {
        for dims in [2, 3, 4, 5] {
            assert_matches_naive(random_tuples(300, dims, 7), dims, 0.3, full(dims));
        }
    }

    #[test]
    fn matches_naive_on_subspaces() {
        let tuples = random_tuples(300, 4, 13);
        for mask in [
            SubspaceMask::from_dims(&[0]).unwrap(),
            SubspaceMask::from_dims(&[1, 2]).unwrap(),
            SubspaceMask::from_dims(&[0, 3]).unwrap(),
        ] {
            assert_matches_naive(tuples.clone(), 4, 0.3, mask);
        }
    }

    #[test]
    fn empty_tree_yields_empty_skyline() {
        let tree = PrTree::new(2).unwrap();
        assert!(local_skyline(&tree, 0.3, full(2)).unwrap().is_empty());
    }

    #[test]
    fn rejects_bad_threshold() {
        let tree = PrTree::new(2).unwrap();
        assert!(matches!(local_skyline(&tree, 0.0, full(2)), Err(Error::InvalidThreshold(_))));
        assert!(matches!(local_skyline(&tree, 1.1, full(2)), Err(Error::InvalidThreshold(_))));
        assert!(matches!(local_skyline(&tree, f64::NAN, full(2)), Err(Error::InvalidThreshold(_))));
    }

    #[test]
    fn rejects_bad_subspace() {
        let tree = PrTree::new(2).unwrap();
        let mask = SubspaceMask::from_dims(&[5]).unwrap();
        assert!(matches!(local_skyline(&tree, 0.3, mask), Err(Error::Subspace(_))));
    }

    #[test]
    fn results_sorted_descending() {
        let tuples = random_tuples(500, 3, 17);
        let tree = PrTree::bulk_load(3, tuples).unwrap();
        let sky = local_skyline(&tree, 0.1, full(3)).unwrap();
        assert!(!sky.is_empty());
        for pair in sky.windows(2) {
            assert!(pair[0].probability >= pair[1].probability);
        }
    }

    #[test]
    fn region_query_matches_filtered_naive() {
        let tuples = random_tuples(400, 3, 23);
        let db = UncertainDb::from_tuples(3, tuples.clone()).unwrap();
        let tree = PrTree::bulk_load(3, tuples).unwrap();
        let mask = full(3);
        let q = 0.2;
        for origin in [[200.0, 200.0, 200.0], [500.0, 100.0, 800.0], [950.0, 950.0, 950.0]] {
            let expected: Vec<TupleId> = probabilistic_skyline(&db, q, mask)
                .unwrap()
                .into_iter()
                .filter(|e| dominates_in(&origin, e.tuple.values(), mask))
                .map(|e| e.tuple.id())
                .collect();
            let got: Vec<TupleId> = local_skyline_in_region(&tree, q, mask, &origin)
                .unwrap()
                .into_iter()
                .map(|e| e.tuple.id())
                .collect();
            assert_eq!(got, expected, "origin {origin:?}");
        }
    }

    #[test]
    fn region_query_at_origin_of_space_is_everything() {
        let tuples = random_tuples(100, 2, 29);
        let db = UncertainDb::from_tuples(2, tuples.clone()).unwrap();
        let tree = PrTree::bulk_load(2, tuples).unwrap();
        let mask = full(2);
        // Every tuple has positive coordinates, so all are dominated by (−1,−1).
        let all = local_skyline_in_region(&tree, 0.3, mask, &[-1.0, -1.0]).unwrap();
        let expected = probabilistic_skyline(&db, 0.3, mask).unwrap();
        assert_eq!(all.len(), expected.len());
    }

    #[test]
    fn region_query_rejects_bad_threshold() {
        let tree = PrTree::new(2).unwrap();
        assert!(local_skyline_in_region(&tree, 0.0, full(2), &[1.0, 1.0]).is_err());
    }

    #[test]
    fn traversal_counters_reach_the_recorder() {
        use dsud_obs::Recorder;
        let mut tree = PrTree::bulk_load(2, random_tuples(200, 2, 99)).unwrap();
        let rec = Recorder::enabled();
        tree.set_recorder(rec.clone());
        let sky = local_skyline(&tree, 0.3, full(2)).unwrap();
        assert!(rec.counter(Counter::PrTreeNodesVisited) >= 1);
        assert_eq!(rec.counter(Counter::LocalSkylineSize), sky.len() as u64);
        // The region variant counts traversal work but not skyline size.
        local_skyline_in_region(&tree, 0.3, full(2), &[-1.0, -1.0]).unwrap();
        assert_eq!(rec.counter(Counter::LocalSkylineSize), sky.len() as u64);
    }

    #[test]
    fn scratch_reuse_never_changes_results() {
        let tuples = random_tuples(400, 3, 61);
        let tree = PrTree::bulk_load(3, tuples).unwrap();
        let mask = full(3);
        let mut scratch = BbsScratch::default();
        let fresh = local_skyline(&tree, 0.2, mask).unwrap();
        for _ in 0..3 {
            let reused = local_skyline_with(&tree, 0.2, mask, &mut scratch).unwrap();
            assert_eq!(reused, fresh);
        }
        let origin = [500.0, 500.0, 500.0];
        let fresh_region = local_skyline_in_region(&tree, 0.2, mask, &origin).unwrap();
        for _ in 0..3 {
            let reused =
                local_skyline_in_region_with(&tree, 0.2, mask, &origin, &mut scratch).unwrap();
            assert_eq!(reused, fresh_region);
        }
    }

    #[test]
    fn paper_table2_local_skylines() {
        // Site S1 of the worked example (Section 5.3, Table 2a):
        // (6,6,0.7,0.65), (8,4,0.8,0.6), (3,8,0.8,0.5). Reconstruct a
        // database consistent with those local skyline probabilities:
        // dominators with the right survival products.
        let tuples = vec![
            tuple(0, vec![6.0, 6.0], 0.7),
            tuple(1, vec![8.0, 4.0], 0.8),
            tuple(2, vec![3.0, 8.0], 0.8),
            // Fillers that produce the paper's local skyline probabilities:
            // P_sky(6,6) = 0.7 × (1 - p_a) = 0.65 → p_a ≈ 0.0714 with a ≺ (6,6).
            tuple(3, vec![5.0, 5.0], 1.0 - 0.65 / 0.7),
            // P_sky(8,4) = 0.8 × (1 - p_b) = 0.6 → p_b = 0.25, b ≺ (8,4) only.
            tuple(4, vec![7.0, 3.0], 0.25),
            // P_sky(3,8) = 0.8 × (1 - p_c) = 0.5 → p_c = 0.375, c ≺ (3,8) only.
            tuple(5, vec![2.0, 7.0], 0.375),
        ];
        // The fillers must not disturb each other: (5,5) ⊀ (8,4), (5,5) ⊀ (3,8), etc.
        let tree = PrTree::bulk_load(2, tuples).unwrap();
        let sky = local_skyline(&tree, 0.5, full(2)).unwrap();
        let probs: Vec<(Vec<f64>, f64)> =
            sky.iter().map(|e| (e.tuple.values().to_vec(), e.probability)).collect();
        // Fillers themselves qualify too (their probabilities are ≥ 0.5)?
        // (5,5): P_sky = p = 0.0714 < 0.5 (no dominators) — wait, that IS its
        // probability; it does not qualify. (7,3): 0.25 < 0.5 no. (2,7): 0.375 no.
        assert_eq!(probs.len(), 3);
        assert_eq!(probs[0].0, vec![6.0, 6.0]);
        assert!((probs[0].1 - 0.65).abs() < 1e-12);
        assert_eq!(probs[1].0, vec![8.0, 4.0]);
        assert!((probs[1].1 - 0.6).abs() < 1e-12);
        assert_eq!(probs[2].0, vec![3.0, 8.0]);
        assert!((probs[2].1 - 0.5).abs() < 1e-12);
    }
}
