//! Error type of the PR-tree index: construction parameter faults,
//! dimension mismatches, duplicate tuple ids, and invalid query thresholds.

use std::fmt;

/// Errors produced by PR-tree construction and queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A tuple's dimensionality did not match the tree's.
    DimensionMismatch {
        /// Dimensionality the tree expects.
        expected: usize,
        /// Dimensionality of the offending tuple or point.
        actual: usize,
    },
    /// The tree was created with zero dimensions.
    InvalidDimensionality(usize),
    /// The node capacity was too small to form a valid R-tree.
    InvalidCapacity(usize),
    /// The query threshold was outside `(0, 1]`.
    InvalidThreshold(f64),
    /// A tuple with the same id already exists in the tree.
    DuplicateId,
    /// A subspace mask selected dimensions outside the tree's space.
    Subspace(dsud_uncertain::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} dimensions, got {actual}")
            }
            Error::InvalidDimensionality(d) => write!(f, "dimensionality {d} is not supported"),
            Error::InvalidCapacity(c) => {
                write!(f, "node capacity {c} is too small (minimum is 2)")
            }
            Error::InvalidThreshold(q) => {
                write!(f, "threshold {q} is outside the interval (0, 1]")
            }
            Error::DuplicateId => write!(f, "a tuple with this id already exists"),
            Error::Subspace(e) => write!(f, "invalid subspace: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Subspace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dsud_uncertain::Error> for Error {
    fn from(e: dsud_uncertain::Error) -> Self {
        Error::Subspace(e)
    }
}
