//! PR-tree nodes and their aggregate [`Summary`] annotations: the paper's
//! `P1`/`P2` min/max probabilities per subtree (Section 6.1, Fig. 5) plus
//! our survival-product extension `∏ (1 − P(t))` that lets dominator-window
//! queries stop at whole subtrees.

use serde::{Deserialize, Serialize};

use dsud_uncertain::{Batch, UncertainTuple};

use crate::Mbr;

/// Aggregate statistics of a PR-tree subtree, stored in the parent entry.
///
/// `p_min`/`p_max` are the paper's `P1`/`P2` annotations (Fig. 5). The
/// `survival` product `∏ (1 − P(t))` over the whole subtree is our
/// aggregate extension that turns dominator-window queries into partial
/// tree traversals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Bounding box of the subtree.
    pub mbr: Mbr,
    /// Minimum existential probability in the subtree (the paper's `P1`).
    pub p_min: f64,
    /// Maximum existential probability in the subtree (the paper's `P2`).
    pub p_max: f64,
    /// `∏ (1 − P(t))` over every tuple in the subtree.
    pub survival: f64,
    /// Number of tuples in the subtree.
    pub count: usize,
}

impl Summary {
    /// Summary of a single tuple.
    pub fn of_tuple(t: &UncertainTuple) -> Self {
        Summary {
            mbr: Mbr::point(t.values()),
            p_min: t.prob().get(),
            p_max: t.prob().get(),
            survival: t.prob().complement(),
            count: 1,
        }
    }

    /// Merges another summary into this one (subtree union).
    pub fn merge(&mut self, other: &Summary) {
        self.mbr.expand_mbr(&other.mbr);
        self.p_min = self.p_min.min(other.p_min);
        self.p_max = self.p_max.max(other.p_max);
        self.survival *= other.survival;
        self.count += other.count;
    }

    /// Builds the union summary of a non-empty iterator.
    ///
    /// Returns `None` for an empty iterator.
    pub fn union<'a, I>(mut summaries: I) -> Option<Summary>
    where
        I: Iterator<Item = &'a Summary>,
    {
        let mut acc = summaries.next()?.clone();
        for s in summaries {
            acc.merge(s);
        }
        Some(acc)
    }
}

/// Tuples of a leaf node together with their columnar [`Batch`] mirror.
///
/// The batch is kept in lockstep with `tuples` on every mutation so leaf
/// window scans (survival products, dominator collection) can run on the
/// cache-friendly kernel instead of tuple-at-a-time dominance tests. Row
/// `i` of the batch always describes `tuples[i]`.
#[derive(Debug, Clone, Default)]
pub(crate) struct LeafData {
    tuples: Vec<UncertainTuple>,
    batch: Batch,
}

impl LeafData {
    pub(crate) fn new(tuples: Vec<UncertainTuple>) -> Self {
        let dims = tuples.first().map(|t| t.dims()).unwrap_or(0);
        LeafData { batch: Batch::from_tuples(dims, &tuples), tuples }
    }

    pub(crate) fn tuples(&self) -> &[UncertainTuple] {
        &self.tuples
    }

    pub(crate) fn batch(&self) -> &Batch {
        &self.batch
    }

    pub(crate) fn len(&self) -> usize {
        self.tuples.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    pub(crate) fn push(&mut self, t: UncertainTuple) {
        self.batch.push(&t);
        self.tuples.push(t);
    }

    pub(crate) fn swap_remove(&mut self, i: usize) -> UncertainTuple {
        self.batch.swap_remove(i);
        self.tuples.swap_remove(i)
    }

    /// Moves the tuples out, leaving the leaf empty (used by node splits).
    pub(crate) fn take_tuples(&mut self) -> Vec<UncertainTuple> {
        self.batch = Batch::default();
        std::mem::take(&mut self.tuples)
    }

    /// Replaces the contents wholesale, rebuilding the batch.
    pub(crate) fn set_tuples(&mut self, tuples: Vec<UncertainTuple>) {
        *self = LeafData::new(tuples);
    }
}

/// Body of a PR-tree node.
#[derive(Debug, Clone)]
pub(crate) enum NodeBody {
    /// Leaf node holding tuples plus their columnar mirror.
    Leaf(LeafData),
    /// Internal node holding `(child arena index, child summary)` entries.
    Internal(Vec<(usize, Summary)>),
}

/// An arena-allocated PR-tree node.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub(crate) body: NodeBody,
}

impl Node {
    pub(crate) fn leaf(tuples: Vec<UncertainTuple>) -> Self {
        Node { body: NodeBody::Leaf(LeafData::new(tuples)) }
    }

    pub(crate) fn internal(children: Vec<(usize, Summary)>) -> Self {
        Node { body: NodeBody::Internal(children) }
    }

    /// Recomputes the node's own summary from its contents.
    ///
    /// Returns `None` for an empty node.
    pub(crate) fn summary(&self) -> Option<Summary> {
        match &self.body {
            NodeBody::Leaf(leaf) => {
                let mut it = leaf.tuples().iter();
                let mut acc = Summary::of_tuple(it.next()?);
                for t in it {
                    acc.merge(&Summary::of_tuple(t));
                }
                Some(acc)
            }
            NodeBody::Internal(children) => Summary::union(children.iter().map(|(_, s)| s)),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn entry_count(&self) -> usize {
        match &self.body {
            NodeBody::Leaf(leaf) => leaf.len(),
            NodeBody::Internal(c) => c.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{Probability, TupleId};

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    #[test]
    fn summary_of_tuple_is_degenerate() {
        let t = tuple(0, vec![2.0, 3.0], 0.4);
        let s = Summary::of_tuple(&t);
        assert_eq!(s.mbr.lower(), &[2.0, 3.0]);
        assert_eq!(s.p_min, 0.4);
        assert_eq!(s.p_max, 0.4);
        assert!((s.survival - 0.6).abs() < 1e-15);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn merge_matches_paper_fig5() {
        // Fig. 5: entries a, b, c with probabilities 0.6, 0.4, 0.2 yield
        // P1(E3) = 0.2 and P2(E3) = 0.6.
        let a = Summary::of_tuple(&tuple(0, vec![1.0, 1.0], 0.6));
        let b = Summary::of_tuple(&tuple(1, vec![2.0, 2.0], 0.4));
        let c = Summary::of_tuple(&tuple(2, vec![3.0, 3.0], 0.2));
        let e3 = Summary::union([a, b, c].iter()).unwrap();
        assert_eq!(e3.p_min, 0.2);
        assert_eq!(e3.p_max, 0.6);
        assert_eq!(e3.count, 3);
        assert!((e3.survival - 0.4 * 0.6 * 0.8).abs() < 1e-15);
        assert_eq!(e3.mbr.lower(), &[1.0, 1.0]);
        assert_eq!(e3.mbr.upper(), &[3.0, 3.0]);
    }

    #[test]
    fn union_of_empty_is_none() {
        assert!(Summary::union([].iter()).is_none());
        let empty = Node::leaf(vec![]);
        assert!(empty.summary().is_none());
    }

    #[test]
    fn node_summary_covers_all_tuples() {
        let n = Node::leaf(vec![tuple(0, vec![0.0, 9.0], 0.5), tuple(1, vec![5.0, 1.0], 0.9)]);
        let s = n.summary().unwrap();
        assert_eq!(s.mbr.lower(), &[0.0, 1.0]);
        assert_eq!(s.mbr.upper(), &[5.0, 9.0]);
        assert_eq!(s.count, 2);
        assert_eq!(n.entry_count(), 2);
    }
}
