//! Minimum bounding rectangles — the spatial keys of PR-tree entries —
//! extended with the dominance-window predicates (fully-dominated /
//! may-contain-dominator) that drive skyline pruning during BBS traversal
//! (Section 6.2).

use serde::{Deserialize, Serialize};

use dsud_uncertain::SubspaceMask;

/// A minimum bounding rectangle in `d`-dimensional space.
///
/// MBRs are the spatial keys of PR-tree entries. Besides the usual
/// union/enlargement operations, this type provides the dominance-window
/// predicates needed by skyline processing: whether every point of the box
/// is dominated by a query point (the box lies fully inside the dominator
/// window) and whether the box can contain any dominator at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mbr {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Mbr {
    /// Creates the degenerate MBR of a single point.
    pub fn point(p: &[f64]) -> Self {
        Mbr { lower: p.to_vec(), upper: p.to_vec() }
    }

    /// Creates an MBR from explicit corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if corners have different lengths or
    /// `lower > upper` on some dimension.
    pub fn from_corners(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        debug_assert_eq!(lower.len(), upper.len());
        debug_assert!(lower.iter().zip(&upper).all(|(l, u)| l <= u));
        Mbr { lower, upper }
    }

    /// The corner closest to the origin (componentwise minimum).
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// The corner farthest from the origin (componentwise maximum).
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lower.len()
    }

    /// Grows the MBR to include the given point.
    pub fn expand_point(&mut self, p: &[f64]) {
        for (i, &v) in p.iter().enumerate() {
            if v < self.lower[i] {
                self.lower[i] = v;
            }
            if v > self.upper[i] {
                self.upper[i] = v;
            }
        }
    }

    /// Grows the MBR to include another MBR.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        for i in 0..self.lower.len() {
            if other.lower[i] < self.lower[i] {
                self.lower[i] = other.lower[i];
            }
            if other.upper[i] > self.upper[i] {
                self.upper[i] = other.upper[i];
            }
        }
    }

    /// The `mindist` key of BBS: L1 distance from the origin to the lower
    /// corner, restricted to the masked dimensions.
    pub fn mindist(&self, mask: SubspaceMask) -> f64 {
        mask.dims().take_while(|&d| d < self.lower.len()).map(|d| self.lower[d]).sum()
    }

    /// Volume increase required to include `p` (used by choose-subtree).
    pub fn enlargement_for(&self, p: &[f64]) -> f64 {
        let mut before = 1.0;
        let mut after = 1.0;
        for (i, &v) in p.iter().enumerate() {
            let lo = self.lower[i].min(v);
            let hi = self.upper[i].max(v);
            // Use edge + 1 so flat boxes still produce useful ordering.
            before *= self.upper[i] - self.lower[i] + 1.0;
            after *= hi - lo + 1.0;
        }
        after - before
    }

    /// Whether the box could contain a point that strictly dominates `p` on
    /// the masked dimensions (i.e. the box intersects the dominator window
    /// of `p`).
    ///
    /// A dominator `x ≺ p` needs `x_j <= p_j` on every masked dimension
    /// and `x_j < p_j` on at least one; the box admits such `x` iff
    /// `lower_j <= p_j` everywhere and `lower_j < p_j` somewhere.
    pub fn may_contain_dominator(&self, p: &[f64], mask: SubspaceMask) -> bool {
        let mut can_be_strict = false;
        for d in mask.dims() {
            if d >= self.lower.len() {
                break;
            }
            if self.lower[d] > p[d] {
                return false;
            }
            if self.lower[d] < p[d] {
                can_be_strict = true;
            }
        }
        can_be_strict
    }

    /// Whether *every* point of the box strictly dominates `p` on the masked
    /// dimensions (the box lies fully inside the dominator window).
    ///
    /// True iff `upper_j <= p_j` on every masked dimension and
    /// `upper_j < p_j` on at least one (which makes every contained point
    /// strictly smaller there).
    pub fn fully_dominates(&self, p: &[f64], mask: SubspaceMask) -> bool {
        let mut strict = false;
        for d in mask.dims() {
            if d >= self.upper.len() {
                break;
            }
            if self.upper[d] > p[d] {
                return false;
            }
            if self.upper[d] < p[d] {
                strict = true;
            }
        }
        strict
    }

    /// Whether the box could contain a point that is strictly *dominated
    /// by* `p` on the masked dimensions (the mirror of
    /// [`Mbr::may_contain_dominator`]); used by region-constrained queries
    /// after a deletion.
    pub fn may_contain_dominated(&self, p: &[f64], mask: SubspaceMask) -> bool {
        let mut can_be_strict = false;
        for d in mask.dims() {
            if d >= self.upper.len() {
                break;
            }
            if self.upper[d] < p[d] {
                return false;
            }
            if self.upper[d] > p[d] {
                can_be_strict = true;
            }
        }
        can_be_strict
    }

    /// Whether the box contains the point (closed box).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.lower.iter().zip(&self.upper).zip(p).all(|((l, u), v)| l <= v && v <= u)
    }

    /// Length of the box edge on dimension `d`.
    pub fn edge(&self, d: usize) -> f64 {
        self.upper[d] - self.lower[d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full(d: usize) -> SubspaceMask {
        SubspaceMask::full(d).unwrap()
    }

    #[test]
    fn expand_point_grows_box() {
        let mut m = Mbr::point(&[1.0, 5.0]);
        m.expand_point(&[3.0, 2.0]);
        assert_eq!(m.lower(), &[1.0, 2.0]);
        assert_eq!(m.upper(), &[3.0, 5.0]);
    }

    #[test]
    fn expand_mbr_is_union() {
        let mut a = Mbr::from_corners(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Mbr::from_corners(vec![2.0, -1.0], vec![3.0, 0.5]);
        a.expand_mbr(&b);
        assert_eq!(a.lower(), &[0.0, -1.0]);
        assert_eq!(a.upper(), &[3.0, 1.0]);
    }

    #[test]
    fn mindist_sums_lower_corner() {
        let m = Mbr::from_corners(vec![2.0, 3.0], vec![5.0, 5.0]);
        assert_eq!(m.mindist(full(2)), 5.0);
        let d1 = SubspaceMask::from_dims(&[1]).unwrap();
        assert_eq!(m.mindist(d1), 3.0);
    }

    #[test]
    fn dominator_window_predicates() {
        let m = Mbr::from_corners(vec![1.0, 1.0], vec![2.0, 2.0]);
        let f = full(2);
        // Query point far to the upper-right: box fully dominates it.
        assert!(m.fully_dominates(&[3.0, 3.0], f));
        assert!(m.may_contain_dominator(&[3.0, 3.0], f));
        // Query point at the box's upper corner: partial (points equal to p
        // do not dominate), so not "fully".
        assert!(!m.fully_dominates(&[2.0, 2.0], f));
        assert!(m.may_contain_dominator(&[2.0, 2.0], f));
        // Query point below the box: no dominator possible.
        assert!(!m.may_contain_dominator(&[0.5, 0.5], f));
        // Query point equal to a degenerate box: equality never dominates.
        let pt = Mbr::point(&[1.0, 1.0]);
        assert!(!pt.may_contain_dominator(&[1.0, 1.0], f));
    }

    #[test]
    fn partial_overlap_detected() {
        let m = Mbr::from_corners(vec![1.0, 1.0], vec![5.0, 5.0]);
        let f = full(2);
        // p inside the box: some contained points dominate, some do not.
        assert!(m.may_contain_dominator(&[3.0, 3.0], f));
        assert!(!m.fully_dominates(&[3.0, 3.0], f));
    }

    #[test]
    fn subspace_window() {
        let m = Mbr::from_corners(vec![1.0, 10.0], vec![2.0, 20.0]);
        let d0 = SubspaceMask::from_dims(&[0]).unwrap();
        // On dimension 0 alone the box fully dominates p0 = 5.
        assert!(m.fully_dominates(&[5.0, 0.0], d0));
        assert!(!m.fully_dominates(&[5.0, 0.0], full(2)));
    }

    #[test]
    fn enlargement_prefers_containing_box() {
        let big = Mbr::from_corners(vec![0.0, 0.0], vec![10.0, 10.0]);
        let small = Mbr::from_corners(vec![0.0, 0.0], vec![1.0, 1.0]);
        let p = [5.0, 5.0];
        assert_eq!(big.enlargement_for(&p), 0.0);
        assert!(small.enlargement_for(&p) > 0.0);
    }
}
