//! Probabilistic R-tree (PR-tree) for uncertain skyline computation.
//!
//! Implements the index structure of the paper's Section 6 (Fig. 5): an
//! R-tree whose entries are annotated with the minimum (`P1`) and maximum
//! (`P2`) existential probabilities of the tuples beneath them. On top of
//! the paper's annotations, every entry also carries the *survival product*
//! `∏ (1 − P(t))` of its subtree, which lets window queries compute the
//! exact local skyline probability of a point (Section 6.3, Fig. 6) while
//! visiting only nodes that straddle the window boundary.
//!
//! Two query procedures are provided:
//!
//! * [`PrTree::survival_product`] — the dominator-window product used to
//!   answer "what is the local skyline probability of a foreign tuple
//!   against this database" (global-phase computation, Section 6.3);
//! * [`bbs::local_skyline`] — a Branch-and-Bound Skyline traversal
//!   (Papadias et al., adapted in Section 6.2) that extracts all tuples
//!   whose *local* skyline probability is at least the query threshold `q`.
//!
//! # Example
//!
//! ```
//! use dsud_prtree::PrTree;
//! use dsud_uncertain::{Probability, SubspaceMask, TupleId, UncertainTuple};
//!
//! # fn main() -> Result<(), dsud_prtree::Error> {
//! let tuples = vec![
//!     UncertainTuple::new(TupleId::new(0, 0), vec![6.0, 6.0], Probability::new(0.7).unwrap()).unwrap(),
//!     UncertainTuple::new(TupleId::new(0, 1), vec![8.0, 4.0], Probability::new(0.8).unwrap()).unwrap(),
//!     UncertainTuple::new(TupleId::new(0, 2), vec![9.0, 9.0], Probability::new(0.9).unwrap()).unwrap(),
//! ];
//! let tree = PrTree::bulk_load(2, tuples)?;
//! let full = SubspaceMask::full(2).unwrap();
//! // (9,9) is dominated by (6,6) and (8,4): survival = 0.3 × 0.2.
//! let s = tree.survival_product(&[9.0, 9.0], full);
//! assert!((s - 0.06).abs() < 1e-12);
//!
//! let sky = dsud_prtree::bbs::local_skyline(&tree, 0.3, full)?;
//! assert_eq!(sky.len(), 2); // (6,6): 0.7 and (8,4): 0.8 qualify; (9,9): 0.054 does not.
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbs;
mod error;
mod mbr;
mod node;
mod tree;

pub use bbs::BbsScratch;
pub use error::Error;
pub use mbr::Mbr;
pub use node::Summary;
pub use tree::{MultiProbeScratch, PrTree, DEFAULT_MAX_ENTRIES};
