//! Property-based end-to-end validation: for arbitrary small distributed
//! databases, DSUD and e-DSUD must return exactly the centralized answer.

use proptest::prelude::*;

use dsud_core::{probabilistic_skyline, Cluster, QueryConfig, SubspaceMask};
use dsud_core::{Probability, TupleId, UncertainDb, UncertainTuple};

fn arb_sites(
    dims: usize,
    max_sites: usize,
    max_per_site: usize,
) -> impl Strategy<Value = Vec<Vec<UncertainTuple>>> {
    prop::collection::vec(
        prop::collection::vec(
            (prop::collection::vec(0.0f64..10.0, dims), 0.05f64..=1.0),
            1..=max_per_site,
        ),
        1..=max_sites,
    )
    .prop_map(move |sites| {
        sites
            .into_iter()
            .enumerate()
            .map(|(s, rows)| {
                rows.into_iter()
                    .enumerate()
                    .map(|(i, (values, p))| {
                        UncertainTuple::new(
                            TupleId::new(s as u32, i as u64),
                            values,
                            Probability::new(p).unwrap(),
                        )
                        .unwrap()
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn distributed_equals_centralized(
        sites in arb_sites(2, 6, 25),
        q in 0.05f64..=0.95,
    ) {
        let union = UncertainDb::from_tuples(
            2,
            sites.iter().flatten().cloned().collect::<Vec<_>>(),
        ).unwrap();
        let mask = SubspaceMask::full(2).unwrap();
        let mut expected: Vec<(TupleId, f64)> = probabilistic_skyline(&union, q, mask)
            .unwrap()
            .into_iter()
            .map(|e| (e.tuple.id(), e.probability))
            .collect();
        expected.sort_by_key(|(id, _)| *id);

        let config = QueryConfig::new(q).unwrap();
        for edsud in [false, true] {
            let mut cluster = Cluster::local(2, sites.clone()).unwrap();
            let outcome = if edsud {
                cluster.run_edsud(&config).unwrap()
            } else {
                cluster.run_dsud(&config).unwrap()
            };
            let mut got: Vec<(TupleId, f64)> = outcome
                .skyline
                .iter()
                .map(|e| (e.tuple.id(), e.probability))
                .collect();
            got.sort_by_key(|(id, _)| *id);
            prop_assert_eq!(
                got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                expected.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                "algorithm edsud={} diverged", edsud
            );
            for ((_, p), (_, e)) in got.iter().zip(&expected) {
                prop_assert!((p - e).abs() < 1e-9);
            }
        }
    }

    /// Bandwidth sanity on arbitrary inputs: never more tuple traffic than
    /// the framework's worst case (every tuple uploaded once plus one
    /// broadcast per upload to every other site).
    #[test]
    fn traffic_never_exceeds_worst_case(sites in arb_sites(2, 5, 15)) {
        let n: usize = sites.iter().map(Vec::len).sum();
        let m = sites.len();
        let mut cluster = Cluster::local(2, sites).unwrap();
        let outcome = cluster.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();
        let worst = (n * m) as u64;
        prop_assert!(outcome.tuples_transmitted() <= worst);
    }
}
