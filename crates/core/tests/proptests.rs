//! Property-based end-to-end validation: for arbitrary small distributed
//! databases, DSUD and e-DSUD must return exactly the centralized answer.

use proptest::prelude::*;

use dsud_core::estimate::expected_skyline_count;
use dsud_core::{probabilistic_skyline, Cluster, QueryConfig, SubspaceMask};
use dsud_core::{Probability, TupleId, UncertainDb, UncertainTuple};

fn arb_sites(
    dims: usize,
    max_sites: usize,
    max_per_site: usize,
) -> impl Strategy<Value = Vec<Vec<UncertainTuple>>> {
    prop::collection::vec(
        prop::collection::vec(
            (prop::collection::vec(0.0f64..10.0, dims), 0.05f64..=1.0),
            1..=max_per_site,
        ),
        1..=max_sites,
    )
    .prop_map(move |sites| {
        sites
            .into_iter()
            .enumerate()
            .map(|(s, rows)| {
                rows.into_iter()
                    .enumerate()
                    .map(|(i, (values, p))| {
                        UncertainTuple::new(
                            TupleId::new(s as u32, i as u64),
                            values,
                            Probability::new(p).unwrap(),
                        )
                        .unwrap()
                    })
                    .collect()
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn distributed_equals_centralized(
        sites in arb_sites(2, 6, 25),
        q in 0.05f64..=0.95,
    ) {
        let union = UncertainDb::from_tuples(
            2,
            sites.iter().flatten().cloned().collect::<Vec<_>>(),
        ).unwrap();
        let mask = SubspaceMask::full(2).unwrap();
        let mut expected: Vec<(TupleId, f64)> = probabilistic_skyline(&union, q, mask)
            .unwrap()
            .into_iter()
            .map(|e| (e.tuple.id(), e.probability))
            .collect();
        expected.sort_by_key(|(id, _)| *id);

        let config = QueryConfig::new(q).unwrap();
        for edsud in [false, true] {
            let mut cluster = Cluster::local(2, sites.clone()).unwrap();
            let outcome = if edsud {
                cluster.run_edsud(&config).unwrap()
            } else {
                cluster.run_dsud(&config).unwrap()
            };
            let mut got: Vec<(TupleId, f64)> = outcome
                .skyline
                .iter()
                .map(|e| (e.tuple.id(), e.probability))
                .collect();
            got.sort_by_key(|(id, _)| *id);
            prop_assert_eq!(
                got.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                expected.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
                "algorithm edsud={} diverged", edsud
            );
            for ((_, p), (_, e)) in got.iter().zip(&expected) {
                prop_assert!((p - e).abs() < 1e-9);
            }
        }
    }

    /// Bandwidth sanity on arbitrary inputs: never more tuple traffic than
    /// the framework's worst case (every tuple uploaded once plus one
    /// broadcast per upload to every other site).
    #[test]
    fn traffic_never_exceeds_worst_case(sites in arb_sites(2, 5, 15)) {
        let n: usize = sites.iter().map(Vec::len).sum();
        let m = sites.len();
        let mut cluster = Cluster::local(2, sites).unwrap();
        let outcome = cluster.run_edsud(&QueryConfig::new(0.3).unwrap()).unwrap();
        let worst = (n * m) as u64;
        prop_assert!(outcome.tuples_transmitted() <= worst);
    }
}

/// Independent reimplementation of the Eq. 6 per-world kernel
/// `ln^{d−1}(n) / d!` for cross-checking `estimate`.
fn kernel_reference(d: usize, k: f64) -> f64 {
    if k < 1.0 {
        return 0.0;
    }
    let fact: f64 = (1..=d).map(|i| i as f64).product();
    if d == 1 {
        1.0
    } else {
        k.ln().powi((d - 1) as i32) / fact
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Eq. 6 is monotone in N: more tuples can only grow the expected
    /// skyline (weakly — in 1-d it saturates at one tuple per world).
    /// This deliberately straddles the estimator's internal switch from
    /// exact enumeration to the Gaussian tail.
    #[test]
    fn expected_skyline_count_is_monotone_in_n(d in 1usize..=6, n in 1usize..4_000) {
        let lo = expected_skyline_count(d, n);
        let hi = expected_skyline_count(d, n + 1);
        prop_assert!(
            hi >= lo - 1e-12,
            "H({}, {}) = {} fell below H({}, {}) = {}", d, n + 1, hi, d, n, lo
        );
    }

    /// At small N the estimator must agree with brute force: enumerate all
    /// 2^N materialized worlds (each equally likely once the uniform
    /// existence probabilities are marginalized) and average the kernel.
    #[test]
    fn expected_skyline_count_matches_exhaustive_enumeration(
        d in 1usize..=6,
        n in 1usize..=12,
    ) {
        let worlds = 1u32 << n;
        let mut exact = 0.0;
        for mask in 0..worlds {
            exact += kernel_reference(d, f64::from(mask.count_ones()));
        }
        exact /= f64::from(worlds);
        let got = expected_skyline_count(d, n);
        prop_assert!(
            (got - exact).abs() <= 1e-12 * exact.max(1.0),
            "H({}, {}) = {}, exhaustive enumeration {}", d, n, got, exact
        );
    }

    /// 1-d edge of the kernel: every non-empty world contributes exactly
    /// one skyline tuple, so H(1, N) is the non-empty-world mass.
    #[test]
    fn one_dimensional_expectation_is_the_non_empty_world_mass(n in 1usize..=64) {
        let h = expected_skyline_count(1, n);
        let want = 1.0 - 0.5f64.powi(n as i32);
        prop_assert!((h - want).abs() < 1e-12, "H(1, {}) = {}, want {}", n, h, want);
    }
}
