//! Deployment assembly: `m` sites behind metered links plus the server.
//!
//! [`Cluster`] builds the whole distributed system of the paper's
//! Section 3.1 — one [`LocalSite`] per horizontal partition, each behind a
//! [`dsud_net::Link`] (inline, threaded, or TCP), all sharing one
//! [`BandwidthMeter`] — and exposes [`Cluster::run_dsud`] /
//! [`Cluster::run_edsud`] as the coordinator entry points. The
//! [`QueryOutcome`] / [`RunStats`] types returned by every run carry the
//! paper's two evaluation measures (bandwidth and progressiveness).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use dsud_net::{
    tcp, Aggregator, BandwidthMeter, ChannelLink, ChaosLink, DelayedService, FanNode, FanPlan,
    Fanout, FaultPlan, HealthSnapshot, Link, LinkConfig, LinkError, LinkHealth, LocalLink, Message,
    MeterSnapshot, RetryLink, Service, TupleMsg,
};
use dsud_obs::Recorder;
use dsud_uncertain::{SkylineEntry, UncertainTuple};

use crate::degrade::SiteStatus;
use crate::{dsud, edsud, Error, LocalSite, ProgressLog, QueryConfig, SiteOptions, Topology};

/// Which transport carries coordinator–site traffic.
///
/// All three speak the identical protocol over the identical wire
/// encoding, and every query outcome (skyline order, traffic, stats) is
/// transport-independent; they differ only in where the site computation
/// runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transport {
    /// Sites run inline on the coordinator's threads (deterministic;
    /// the default for tests and benchmarks).
    Inline,
    /// One OS thread per site behind crossbeam channels.
    Threaded,
    /// One loopback TCP socket per site — real sockets, same encoding.
    Tcp,
}

impl Transport {
    /// Stable lowercase name, as accepted by the [`std::str::FromStr`]
    /// impl and recorded in run reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Transport::Inline => "inline",
            Transport::Threaded => "threaded",
            Transport::Tcp => "tcp",
        }
    }
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Transport {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "inline" => Ok(Transport::Inline),
            "threaded" => Ok(Transport::Threaded),
            "tcp" => Ok(Transport::Tcp),
            _ => Err(Error::InvalidArgument("unknown transport (expected inline|threaded|tcp)")),
        }
    }
}

/// Counters describing how a distributed query run unfolded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Coordinator iterations executed.
    pub iterations: u64,
    /// Candidates broadcast to the other sites (Server-Delivery phases).
    pub broadcasts: u64,
    /// Candidates expunged by the e-DSUD bound without any broadcast.
    pub expunged: u64,
    /// Local-skyline tuples pruned at the sites by feedback.
    pub pruned_at_sites: u64,
}

/// Result of one distributed skyline query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Qualified global skyline tuples with their exact global
    /// probabilities, in report (discovery) order.
    pub skyline: Vec<SkylineEntry>,
    /// Progressiveness trace.
    pub progress: ProgressLog,
    /// Network traffic attributable to this run.
    pub traffic: MeterSnapshot,
    /// Coordinator counters.
    pub stats: RunStats,
    /// Whether any site was quarantined mid-query
    /// ([`crate::FailurePolicy::Degrade`] only). When `true` the reported
    /// probabilities are upper bounds: quarantined sites could not
    /// contribute their `(1 − P(t'))` survival factors.
    #[serde(default)]
    pub degraded: bool,
    /// Whether the run was cut short by its per-query deadline
    /// ([`QueryConfig::deadline_ms`]). A cancelled outcome is a valid
    /// *partial* progressive result: every entry in `skyline` carries its
    /// exact probability, but tuples the coordinator never reached are
    /// missing. Cancelled outcomes are never cached by the session layer.
    #[serde(default)]
    pub cancelled: bool,
    /// Per-site health records. Empty for outcomes serialized before the
    /// field existed.
    #[serde(default)]
    pub sites: Vec<SiteStatus>,
    /// What the plan phase observed and decided ([`crate::PlanMode::Sketch`]
    /// runs only). `None` for static runs and for outcomes serialized
    /// before the plan phase existed.
    #[serde(default)]
    pub plan: Option<crate::PlanSummary>,
}

impl QueryOutcome {
    /// The paper's bandwidth measure for this run.
    pub fn tuples_transmitted(&self) -> u64 {
        self.traffic.tuples_transmitted()
    }
}

/// A full distributed deployment: `m` local sites behind metered links plus
/// the coordinator logic of the central server `H`.
///
/// Two constructors mirror the two transports of `dsud-net`:
/// [`Cluster::local`] runs every site inline (deterministic; used by tests
/// and benchmarks), [`Cluster::threaded`] gives every site its own OS
/// thread.
pub struct Cluster {
    dims: usize,
    /// Declared before `servers` so the links drop first: a `TcpLink` must
    /// disconnect before its site server is asked to stop accepting.
    /// Under a flat topology one link per site; under a tree topology one
    /// link per root aggregator group (see `plan`).
    links: Vec<Box<dyn Link>>,
    health: Vec<Arc<LinkHealth>>,
    meter: BandwidthMeter,
    total_tuples: usize,
    /// The fan-out shape the coordinator routes through. The shared meter
    /// (and hence every outcome's `traffic`) observes only the root's own
    /// links, so under a tree topology it measures exactly the merged
    /// root-link traffic the topology exists to shrink.
    plan: FanPlan,
    servers: Vec<tcp::SiteServer>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("dims", &self.dims)
            .field("sites", &self.plan.sites())
            .field("root_fanout", &self.plan.root_fanout())
            .field("total_tuples", &self.total_tuples)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds an inline-transport cluster with default site options.
    ///
    /// Site `i` of `sites` must contain tuples labelled `TupleId { site: i, .. }`
    /// (as produced by `dsud_data`'s partitioners).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSites`] for an empty site list and propagates
    /// site construction failures.
    pub fn local(dims: usize, sites: Vec<Vec<UncertainTuple>>) -> Result<Self, Error> {
        Self::local_with_options(dims, sites, SiteOptions::default())
    }

    /// Builds an inline-transport cluster with explicit site options
    /// (ablations).
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`].
    pub fn local_with_options(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
    ) -> Result<Self, Error> {
        Self::build(dims, sites, options, false, Recorder::default())
    }

    /// Builds an inline-transport cluster whose meter and sites all report
    /// to the given observability [`Recorder`], so a subsequent
    /// [`Cluster::run_dsud`] / [`Cluster::run_edsud`] produces a complete
    /// [`dsud_obs::RunReport`] via [`Recorder::report`].
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`].
    pub fn local_instrumented(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
    ) -> Result<Self, Error> {
        Self::build(dims, sites, options, false, recorder)
    }

    /// Builds a cluster whose sites each run on a dedicated OS thread
    /// behind crossbeam channels.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`].
    pub fn threaded(dims: usize, sites: Vec<Vec<UncertainTuple>>) -> Result<Self, Error> {
        Self::build(dims, sites, SiteOptions::default(), true, Recorder::default())
    }

    /// Builds a cluster whose sites are served over loopback TCP — real
    /// sockets, the same wire encoding, one server thread per site.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`], plus [`Error::SiteFailed`] if a socket
    /// cannot be bound or connected.
    pub fn tcp(dims: usize, sites: Vec<Vec<UncertainTuple>>) -> Result<Self, Error> {
        Self::with_transport(
            dims,
            sites,
            SiteOptions::default(),
            Recorder::default(),
            Transport::Tcp,
        )
    }

    /// Unified constructor: builds a cluster over any [`Transport`] with
    /// explicit site options and an observability recorder.
    ///
    /// Site construction (PR-tree bulk loads) is fanned across the
    /// [`threadpool`]; the resulting cluster is identical to a sequential
    /// build because sites are independent and links are wired in site
    /// order afterwards.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`]; [`Transport::Tcp`] additionally returns
    /// [`Error::SiteFailed`] if a socket cannot be bound or connected.
    pub fn with_transport(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
        transport: Transport,
    ) -> Result<Self, Error> {
        Self::with_transport_config(
            dims,
            sites,
            options,
            recorder,
            transport,
            LinkConfig::default(),
        )
    }

    /// [`Cluster::with_transport`] with an explicit per-link deadline and
    /// retry configuration. Every link — on every transport — is wrapped in
    /// a [`RetryLink`], so transient transport failures are retried
    /// deterministically before the coordinator's failure policy sees them.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::with_transport`].
    pub fn with_transport_config(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
        transport: Transport,
        link_config: LinkConfig,
    ) -> Result<Self, Error> {
        Self::assemble(
            dims,
            sites,
            options,
            recorder,
            transport,
            link_config,
            None,
            Topology::Flat,
            None,
        )
    }

    /// [`Cluster::with_transport_config`] routed through an explicit
    /// [`Topology`]. Under a tree topology the sites sit behind a layer (or
    /// layers) of [`Aggregator`] services — hosted on the same transport as
    /// the sites — and the coordinator holds one physical link per *root
    /// group* instead of one per site. Results are bit-identical to the
    /// flat topology at every fanout (aggregators merge frames, never fold
    /// survival products); only root-link frame and byte counts shrink.
    ///
    /// A `chaos_seed` of `Some(seed)` splices a deterministic
    /// [`ChaosLink`] under each *root* link's retry layer, keyed by the
    /// first member site of that link's group — so the same seed replays
    /// the identical fault schedule on every transport, and a faulted
    /// aggregator link degrades exactly its subtree.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::with_transport_config`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_topology(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
        transport: Transport,
        link_config: LinkConfig,
        topology: Topology,
        chaos_seed: Option<u64>,
    ) -> Result<Self, Error> {
        Self::assemble(
            dims,
            sites,
            options,
            recorder,
            transport,
            link_config,
            chaos_seed,
            topology,
            None,
        )
    }

    /// [`Cluster::with_topology`] with every hop — root links, aggregator
    /// links, site links — served through a [`DelayedService`] pausing
    /// `delay` per request: the bench harness's stand-in for a real
    /// network RTT, which makes root fan-out visible in wall-clock as
    /// well as in the meter's frame counts.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::with_transport_config`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_topology_delayed(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
        transport: Transport,
        link_config: LinkConfig,
        topology: Topology,
        delay: std::time::Duration,
    ) -> Result<Self, Error> {
        Self::assemble(
            dims,
            sites,
            options,
            recorder,
            transport,
            link_config,
            None,
            topology,
            Some(delay),
        )
    }

    /// [`Cluster::with_transport_config`] with a deterministic fault
    /// injector: every site link gets a [`FaultPlan`] derived from `seed`
    /// and its site index, spliced *under* the retry layer so the stack is
    /// `RetryLink(ChaosLink(transport))`. The same seed reproduces the
    /// identical fault schedule on every transport, which is what lets the
    /// chaos harness ([`crate::chaos`]) compare a faulted run against a
    /// clean one bit for bit.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::with_transport_config`].
    pub fn with_transport_chaos(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
        transport: Transport,
        link_config: LinkConfig,
        seed: u64,
    ) -> Result<Self, Error> {
        Self::assemble(
            dims,
            sites,
            options,
            recorder,
            transport,
            link_config,
            Some(seed),
            Topology::Flat,
            None,
        )
    }

    /// Wraps one transport link in the (optional) chaos layer and the
    /// mandatory retry layer, surfacing the retry layer's health handle.
    fn finish_link<L: Link + 'static>(
        base: L,
        chaos: Option<FaultPlan>,
        link_config: LinkConfig,
        recorder: &Recorder,
    ) -> (Arc<LinkHealth>, Box<dyn Link>) {
        match chaos {
            Some(plan) => {
                let retry = RetryLink::with_recorder(
                    ChaosLink::new(base, plan),
                    link_config,
                    recorder.clone(),
                );
                (retry.health(), Box::new(retry))
            }
            None => {
                let retry = RetryLink::with_recorder(base, link_config, recorder.clone());
                (retry.health(), Box::new(retry))
            }
        }
    }

    /// Hosts one service (a site or an aggregator) on the given transport
    /// and returns the raw, unwrapped link to it, pausing `delay` per
    /// request when one is set (the bench harness's stand-in for a real
    /// network RTT). Which meter the link reports to decides what the
    /// paper's bandwidth measure sees: root links use the cluster meter,
    /// everything below uses a throwaway.
    fn spawn_service<S: Service + 'static>(
        svc: S,
        transport: Transport,
        meter: &BandwidthMeter,
        link_config: LinkConfig,
        servers: &mut Vec<tcp::SiteServer>,
        err_site: u32,
        delay: Option<std::time::Duration>,
    ) -> Result<Box<dyn Link>, Error> {
        match delay {
            Some(d) => Self::spawn_raw(
                DelayedService::new(svc, d),
                transport,
                meter,
                link_config,
                servers,
                err_site,
            ),
            None => Self::spawn_raw(svc, transport, meter, link_config, servers, err_site),
        }
    }

    fn spawn_raw<S: Service + 'static>(
        svc: S,
        transport: Transport,
        meter: &BandwidthMeter,
        link_config: LinkConfig,
        servers: &mut Vec<tcp::SiteServer>,
        err_site: u32,
    ) -> Result<Box<dyn Link>, Error> {
        let failed = |source: LinkError| Error::SiteFailed { site: err_site, source };
        Ok(match transport {
            Transport::Inline => Box::new(LocalLink::new(svc, meter.clone())),
            Transport::Threaded => {
                Box::new(ChannelLink::spawn_with(svc, meter.clone(), link_config))
            }
            Transport::Tcp => {
                let server = tcp::spawn_site(svc).map_err(|e| failed(LinkError::from(e)))?;
                let link = tcp::TcpLink::connect_with(server.addr(), meter.clone(), link_config)
                    .map_err(|e| failed(LinkError::from(e)))?;
                servers.push(server);
                Box::new(link)
            }
        })
    }

    /// Builds the service tree under one fan-plan node and returns the raw
    /// link to it (a site link for a leaf, an [`Aggregator`] link for a
    /// node). Everything below the root reports to `child_meter` and gets
    /// a plain retry layer — no chaos, no health handle: subtree failures
    /// surface through the root link's own operations.
    #[allow(clippy::too_many_arguments)]
    fn build_subtree(
        node: &FanNode,
        built: &mut [Option<LocalSite>],
        transport: Transport,
        child_meter: &BandwidthMeter,
        link_config: LinkConfig,
        servers: &mut Vec<tcp::SiteServer>,
        delay: Option<std::time::Duration>,
    ) -> Result<Box<dyn Link>, Error> {
        match node {
            FanNode::Leaf(site) => {
                let svc = built[*site as usize].take().expect("each site is wired once");
                let raw = Self::spawn_service(
                    svc,
                    transport,
                    child_meter,
                    link_config,
                    servers,
                    *site,
                    delay,
                )?;
                Ok(Box::new(RetryLink::new(raw, link_config)))
            }
            FanNode::Node(children) => {
                let mut agg = Aggregator::new();
                for child in children {
                    let link = Self::build_subtree(
                        child,
                        built,
                        transport,
                        child_meter,
                        link_config,
                        servers,
                        delay,
                    )?;
                    match child {
                        FanNode::Leaf(site) => agg.push_leaf(*site, link),
                        FanNode::Node(_) => agg.push_group(child.members(), link),
                    }
                }
                let err_site = node.members().first().copied().unwrap_or(0);
                let raw = Self::spawn_service(
                    agg,
                    transport,
                    child_meter,
                    link_config,
                    servers,
                    err_site,
                    delay,
                )?;
                Ok(Box::new(RetryLink::new(raw, link_config)))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
        transport: Transport,
        link_config: LinkConfig,
        chaos_seed: Option<u64>,
        topology: Topology,
        delay: Option<std::time::Duration>,
    ) -> Result<Self, Error> {
        if sites.is_empty() {
            return Err(Error::NoSites);
        }
        let build_span = recorder.span("cluster:build");
        let meter = BandwidthMeter::with_recorder(recorder.clone());
        let total_tuples = sites.iter().map(Vec::len).sum();
        let plan = topology.plan(sites.len());
        let built = Self::build_sites(dims, sites, options, &recorder);
        let mut links: Vec<Box<dyn Link>> = Vec::with_capacity(plan.root_fanout());
        let mut health: Vec<Arc<LinkHealth>> = Vec::with_capacity(plan.root_fanout());
        let mut servers: Vec<tcp::SiteServer> = Vec::new();

        if plan.is_flat() {
            for (i, site) in built.into_iter().enumerate() {
                let site = site?;
                let fault = chaos_seed.map(|seed| FaultPlan::seeded(seed, i as u32));
                let raw = Self::spawn_service(
                    site,
                    transport,
                    &meter,
                    link_config,
                    &mut servers,
                    i as u32,
                    delay,
                )?;
                let (h, link) = Self::finish_link(raw, fault, link_config, &recorder);
                health.push(h);
                links.push(link);
            }
        } else {
            // Tree topology: sites and intermediate aggregators hang off a
            // throwaway meter, so the cluster meter sees exactly the
            // merged frames crossing the root's own links. One root link
            // per group, chaos keyed by the group's first member site so a
            // seeded plan replays identically at every topology.
            let mut built: Vec<Option<LocalSite>> =
                built.into_iter().map(|s| s.map(Some)).collect::<Result<_, _>>()?;
            let child_meter = BandwidthMeter::new();
            for root in plan.roots() {
                let members = root.members();
                let first = members.first().copied().unwrap_or(0);
                let fault = chaos_seed.map(|seed| FaultPlan::seeded(seed, first));
                let raw: Box<dyn Link> = match root {
                    // A root-level leaf (ragged tail group) talks to the
                    // coordinator directly, like a flat site.
                    FanNode::Leaf(site) => {
                        let svc = built[*site as usize].take().expect("each site is wired once");
                        Self::spawn_service(
                            svc,
                            transport,
                            &meter,
                            link_config,
                            &mut servers,
                            *site,
                            delay,
                        )?
                    }
                    FanNode::Node(children) => {
                        let mut agg = Aggregator::new();
                        for child in children {
                            let link = Self::build_subtree(
                                child,
                                &mut built,
                                transport,
                                &child_meter,
                                link_config,
                                &mut servers,
                                delay,
                            )?;
                            match child {
                                FanNode::Leaf(site) => agg.push_leaf(*site, link),
                                FanNode::Node(_) => agg.push_group(child.members(), link),
                            }
                        }
                        Self::spawn_service(
                            agg,
                            transport,
                            &meter,
                            link_config,
                            &mut servers,
                            first,
                            delay,
                        )?
                    }
                };
                let (h, link) = Self::finish_link(raw, fault, link_config, &recorder);
                health.push(h);
                links.push(link);
            }
        }
        drop(build_span);
        Ok(Cluster { dims, links, health, meter, total_tuples, plan, servers })
    }

    /// Constructs every [`LocalSite`] (each a PR-tree bulk load), one
    /// scoped thread per site when the pool allows. Results stay in site
    /// order; errors are surfaced in site order by the caller.
    fn build_sites(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: &Recorder,
    ) -> Vec<Result<LocalSite, Error>> {
        let indexed: Vec<(u32, Vec<UncertainTuple>)> =
            sites.into_iter().enumerate().map(|(i, t)| (i as u32, t)).collect();
        let make = |(i, tuples): (u32, Vec<UncertainTuple>)| {
            LocalSite::new(i, dims, tuples, options).map(|mut site| {
                site.set_recorder(recorder.clone());
                site
            })
        };
        if threadpool::pool_size() > 1 && indexed.len() > 1 {
            let mut out = Vec::with_capacity(indexed.len());
            threadpool::scope(|s| {
                let handles: Vec<_> =
                    indexed.into_iter().map(|item| s.spawn(move || make(item))).collect();
                for h in handles {
                    out.push(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
                }
            });
            out
        } else {
            indexed.into_iter().map(make).collect()
        }
    }

    fn build(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        threaded: bool,
        recorder: Recorder,
    ) -> Result<Self, Error> {
        let transport = if threaded { Transport::Threaded } else { Transport::Inline };
        Self::with_transport(dims, sites, options, recorder, transport)
    }

    /// Number of local sites `m` (virtual sites, not physical links:
    /// under a tree topology the coordinator holds fewer links than
    /// sites).
    pub fn site_count(&self) -> usize {
        self.plan.sites()
    }

    /// The fan-out plan the coordinator routes through.
    pub fn plan(&self) -> &FanPlan {
        &self.plan
    }

    /// Dimensionality of the data space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total tuples across all local databases at construction time.
    pub fn total_tuples(&self) -> usize {
        self.total_tuples
    }

    /// The shared bandwidth meter.
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// The observability recorder this cluster reports to (disabled
    /// unless built with [`Cluster::local_instrumented`]).
    pub fn recorder(&self) -> &Recorder {
        self.meter.recorder()
    }

    /// Mutable access to the physical links (used by the update driver).
    /// Under a flat topology these are the per-site links; under a tree
    /// topology they address root aggregator groups — per-site routing
    /// must go through a [`Fanout`] or [`dsud_net::SiteRoute`].
    pub fn links_mut(&mut self) -> &mut [Box<dyn Link>] {
        &mut self.links
    }

    /// Per-site transport health: attempts, retries, and failure counts
    /// accumulated by each link's retry layer since construction.
    pub fn link_health(&self) -> Vec<HealthSnapshot> {
        self.health.iter().map(|h| h.snapshot()).collect()
    }

    /// Number of TCP site servers this cluster owns (zero for the inline
    /// and threaded transports).
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Decomposes the cluster into the parts a [`crate::SessionServer`]
    /// re-assembles around shared, query-multiplexed links:
    /// `(dims, total_tuples, links, health, meter, plan, site_servers)`.
    /// The health handles stay paired with `links` by index (one per
    /// physical link) so the session layer's heartbeat can keep per-link
    /// miss counts. The servers must outlive the links for the same
    /// drop-order reason [`Cluster`] itself declares `links` first.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        usize,
        usize,
        Vec<Box<dyn Link>>,
        Vec<Arc<LinkHealth>>,
        BandwidthMeter,
        FanPlan,
        Vec<tcp::SiteServer>,
    ) {
        (self.dims, self.total_tuples, self.links, self.health, self.meter, self.plan, self.servers)
    }

    /// Runs the DSUD algorithm (Section 5.1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Subspace`] for an invalid query mask,
    /// [`Error::ProtocolViolation`] if a site misbehaves, or — under the
    /// default [`crate::FailurePolicy::Strict`] — [`Error::SiteFailed`]
    /// when a site stays unreachable after retries.
    pub fn run_dsud(&mut self, config: &QueryConfig) -> Result<QueryOutcome, Error> {
        let mask = config.resolve_mask(self.dims)?;
        let rec = self.meter.recorder().clone();
        let mut fan = Fanout::tree(&mut self.links, &self.plan, rec);
        dsud::run_on(
            &mut fan,
            &self.meter,
            config.q,
            mask,
            config.limit,
            config.failure,
            config.batch,
            config.pipeline,
            config.wire,
            config.deadline_ms,
            config.plan,
        )
    }

    /// Runs the enhanced e-DSUD algorithm (Section 5.2).
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::run_dsud`].
    pub fn run_edsud(&mut self, config: &QueryConfig) -> Result<QueryOutcome, Error> {
        let mask = config.resolve_mask(self.dims)?;
        let rec = self.meter.recorder().clone();
        let mut fan = Fanout::tree(&mut self.links, &self.plan, rec);
        edsud::run_on(
            &mut fan,
            &self.meter,
            config.q,
            mask,
            config.bound,
            config.limit,
            config.synopsis,
            config.failure,
            config.batch,
            config.pipeline,
            config.wire,
            config.deadline_ms,
            config.plan,
        )
    }
}

/// Interprets a reply from `site` that must be an upload.
pub(crate) fn expect_upload(site: u32, msg: Message) -> Result<Option<TupleMsg>, Error> {
    match msg {
        Message::Upload(t) => Ok(t),
        _ => Err(Error::ProtocolViolation { site, what: "expected Upload reply" }),
    }
}

/// Interprets a reply from `site` that must be a survival reply; the
/// survival product must be a valid probability or the reply is rejected (a
/// corrupted site must not silently poison global probabilities).
pub(crate) fn expect_survival(site: u32, msg: Message) -> Result<(f64, u64), Error> {
    match msg {
        Message::SurvivalReply { survival, pruned } => {
            if survival.is_finite() && (0.0..=1.0).contains(&survival) {
                Ok((survival, pruned))
            } else {
                Err(Error::ProtocolViolation { site, what: "survival product out of range" })
            }
        }
        _ => Err(Error::ProtocolViolation { site, what: "expected SurvivalReply" }),
    }
}

/// Interprets a reply from `site` that must be a survival batch covering
/// exactly `expected` probes; every factor must be a valid probability.
pub(crate) fn expect_survival_batch(
    site: u32,
    msg: Message,
    expected: usize,
) -> Result<(Vec<f64>, u64), Error> {
    match msg {
        // Both layouts carry identical payloads; the coordinator's fold
        // never cares which one the site chose to answer with.
        Message::SurvivalBatchReply { survivals, pruned }
        | Message::SurvivalBatchReplyC { survivals, pruned } => {
            if survivals.len() != expected {
                return Err(Error::ProtocolViolation {
                    site,
                    what: "survival batch length mismatch",
                });
            }
            if survivals.iter().all(|s| s.is_finite() && (0.0..=1.0).contains(s)) {
                Ok((survivals, pruned))
            } else {
                Err(Error::ProtocolViolation { site, what: "survival product out of range" })
            }
        }
        _ => Err(Error::ProtocolViolation { site, what: "expected SurvivalBatchReply" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_cluster() {
        assert!(matches!(Cluster::local(2, vec![]), Err(Error::NoSites)));
    }

    #[test]
    fn expect_helpers_reject_mismatches_and_name_the_site() {
        assert_eq!(
            expect_upload(5, Message::Ack),
            Err(Error::ProtocolViolation { site: 5, what: "expected Upload reply" })
        );
        assert_eq!(
            expect_survival(2, Message::Ack),
            Err(Error::ProtocolViolation { site: 2, what: "expected SurvivalReply" })
        );
        assert_eq!(expect_upload(0, Message::Upload(None)).unwrap(), None);
        assert_eq!(
            expect_survival(0, Message::SurvivalReply { survival: 0.5, pruned: 2 }).unwrap(),
            (0.5, 2)
        );
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            assert!(
                expect_survival(0, Message::SurvivalReply { survival: bad, pruned: 0 }).is_err()
            );
        }
    }

    #[test]
    fn expect_survival_batch_validates_length_and_factors() {
        assert_eq!(
            expect_survival_batch(
                1,
                Message::SurvivalBatchReply { survivals: vec![0.5, 1.0], pruned: 3 },
                2
            )
            .unwrap(),
            (vec![0.5, 1.0], 3)
        );
        assert_eq!(
            expect_survival_batch(
                1,
                Message::SurvivalBatchReply { survivals: vec![0.5], pruned: 0 },
                2
            ),
            Err(Error::ProtocolViolation { site: 1, what: "survival batch length mismatch" })
        );
        assert_eq!(
            expect_survival_batch(4, Message::Ack, 1),
            Err(Error::ProtocolViolation { site: 4, what: "expected SurvivalBatchReply" })
        );
        for bad in [f64::NAN, -0.1, 1.5] {
            assert!(expect_survival_batch(
                0,
                Message::SurvivalBatchReply { survivals: vec![1.0, bad], pruned: 0 },
                2
            )
            .is_err());
        }
    }

    #[test]
    fn outcomes_without_degradation_fields_deserialize() {
        // An outcome serialized before `degraded`/`sites` existed.
        let outcome = QueryOutcome {
            skyline: Vec::new(),
            progress: ProgressLog::new(),
            traffic: MeterSnapshot::default(),
            stats: RunStats::default(),
            degraded: true,
            cancelled: true,
            sites: vec![SiteStatus { site: 0, quarantined: None, state: None }],
            plan: None,
        };
        let json = serde_json::to_string(&outcome).unwrap();
        // `degraded`, `cancelled`, and `sites` are the struct's trailing
        // fields; cutting them out reconstructs the schema-before JSON
        // exactly.
        let (prefix, _) = json.split_once(",\"degraded\"").expect("fields serialize in order");
        let legacy = format!("{prefix}}}");
        let back: QueryOutcome = serde_json::from_str(&legacy).unwrap();
        assert!(!back.degraded);
        assert!(!back.cancelled);
        assert!(back.sites.is_empty());
    }
}
