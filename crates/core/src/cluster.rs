//! Deployment assembly: `m` sites behind metered links plus the server.
//!
//! [`Cluster`] builds the whole distributed system of the paper's
//! Section 3.1 — one [`LocalSite`] per horizontal partition, each behind a
//! [`dsud_net::Link`] (inline, threaded, or TCP), all sharing one
//! [`BandwidthMeter`] — and exposes [`Cluster::run_dsud`] /
//! [`Cluster::run_edsud`] as the coordinator entry points. The
//! [`QueryOutcome`] / [`RunStats`] types returned by every run carry the
//! paper's two evaluation measures (bandwidth and progressiveness).

use serde::{Deserialize, Serialize};

use dsud_net::{
    tcp, BandwidthMeter, ChannelLink, Link, LocalLink, Message, MeterSnapshot, TupleMsg,
};
use dsud_obs::Recorder;
use dsud_uncertain::{SkylineEntry, UncertainTuple};

use crate::{dsud, edsud, Error, LocalSite, ProgressLog, QueryConfig, SiteOptions};

/// Counters describing how a distributed query run unfolded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunStats {
    /// Coordinator iterations executed.
    pub iterations: u64,
    /// Candidates broadcast to the other sites (Server-Delivery phases).
    pub broadcasts: u64,
    /// Candidates expunged by the e-DSUD bound without any broadcast.
    pub expunged: u64,
    /// Local-skyline tuples pruned at the sites by feedback.
    pub pruned_at_sites: u64,
}

/// Result of one distributed skyline query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// Qualified global skyline tuples with their exact global
    /// probabilities, in report (discovery) order.
    pub skyline: Vec<SkylineEntry>,
    /// Progressiveness trace.
    pub progress: ProgressLog,
    /// Network traffic attributable to this run.
    pub traffic: MeterSnapshot,
    /// Coordinator counters.
    pub stats: RunStats,
}

impl QueryOutcome {
    /// The paper's bandwidth measure for this run.
    pub fn tuples_transmitted(&self) -> u64 {
        self.traffic.tuples_transmitted()
    }
}

/// A full distributed deployment: `m` local sites behind metered links plus
/// the coordinator logic of the central server `H`.
///
/// Two constructors mirror the two transports of `dsud-net`:
/// [`Cluster::local`] runs every site inline (deterministic; used by tests
/// and benchmarks), [`Cluster::threaded`] gives every site its own OS
/// thread.
pub struct Cluster {
    dims: usize,
    links: Vec<Box<dyn Link>>,
    meter: BandwidthMeter,
    total_tuples: usize,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("dims", &self.dims)
            .field("sites", &self.links.len())
            .field("total_tuples", &self.total_tuples)
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds an inline-transport cluster with default site options.
    ///
    /// Site `i` of `sites` must contain tuples labelled `TupleId { site: i, .. }`
    /// (as produced by `dsud_data`'s partitioners).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSites`] for an empty site list and propagates
    /// site construction failures.
    pub fn local(dims: usize, sites: Vec<Vec<UncertainTuple>>) -> Result<Self, Error> {
        Self::local_with_options(dims, sites, SiteOptions::default())
    }

    /// Builds an inline-transport cluster with explicit site options
    /// (ablations).
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`].
    pub fn local_with_options(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
    ) -> Result<Self, Error> {
        Self::build(dims, sites, options, false, Recorder::default())
    }

    /// Builds an inline-transport cluster whose meter and sites all report
    /// to the given observability [`Recorder`], so a subsequent
    /// [`Cluster::run_dsud`] / [`Cluster::run_edsud`] produces a complete
    /// [`dsud_obs::RunReport`] via [`Recorder::report`].
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`].
    pub fn local_instrumented(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        recorder: Recorder,
    ) -> Result<Self, Error> {
        Self::build(dims, sites, options, false, recorder)
    }

    /// Builds a cluster whose sites each run on a dedicated OS thread
    /// behind crossbeam channels.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`].
    pub fn threaded(dims: usize, sites: Vec<Vec<UncertainTuple>>) -> Result<Self, Error> {
        Self::build(dims, sites, SiteOptions::default(), true, Recorder::default())
    }

    /// Builds a cluster whose sites are served over loopback TCP — real
    /// sockets, the same wire encoding, one server thread per site.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::local`], plus [`Error::ProtocolViolation`] if a
    /// socket cannot be bound or connected.
    pub fn tcp(dims: usize, sites: Vec<Vec<UncertainTuple>>) -> Result<Self, Error> {
        if sites.is_empty() {
            return Err(Error::NoSites);
        }
        let meter = BandwidthMeter::new();
        let total_tuples = sites.iter().map(Vec::len).sum();
        let mut links: Vec<Box<dyn Link>> = Vec::with_capacity(sites.len());
        for (i, tuples) in sites.into_iter().enumerate() {
            let site = LocalSite::new(i as u32, dims, tuples, SiteOptions::default())?;
            let (addr, _server) = tcp::spawn_site(site)
                .map_err(|_| Error::ProtocolViolation("cannot bind site socket"))?;
            let link = tcp::TcpLink::connect(addr, meter.clone())
                .map_err(|_| Error::ProtocolViolation("cannot connect to site socket"))?;
            links.push(Box::new(link));
        }
        Ok(Cluster { dims, links, meter, total_tuples })
    }

    fn build(
        dims: usize,
        sites: Vec<Vec<UncertainTuple>>,
        options: SiteOptions,
        threaded: bool,
        recorder: Recorder,
    ) -> Result<Self, Error> {
        if sites.is_empty() {
            return Err(Error::NoSites);
        }
        let meter = BandwidthMeter::with_recorder(recorder.clone());
        let total_tuples = sites.iter().map(Vec::len).sum();
        let mut links: Vec<Box<dyn Link>> = Vec::with_capacity(sites.len());
        for (i, tuples) in sites.into_iter().enumerate() {
            let mut site = LocalSite::new(i as u32, dims, tuples, options)?;
            site.set_recorder(recorder.clone());
            if threaded {
                links.push(Box::new(ChannelLink::spawn(site, meter.clone())));
            } else {
                links.push(Box::new(LocalLink::new(site, meter.clone())));
            }
        }
        Ok(Cluster { dims, links, meter, total_tuples })
    }

    /// Number of local sites `m`.
    pub fn site_count(&self) -> usize {
        self.links.len()
    }

    /// Dimensionality of the data space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Total tuples across all local databases at construction time.
    pub fn total_tuples(&self) -> usize {
        self.total_tuples
    }

    /// The shared bandwidth meter.
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// The observability recorder this cluster reports to (disabled
    /// unless built with [`Cluster::local_instrumented`]).
    pub fn recorder(&self) -> &Recorder {
        self.meter.recorder()
    }

    /// Mutable access to the site links (used by the update driver).
    pub fn links_mut(&mut self) -> &mut [Box<dyn Link>] {
        &mut self.links
    }

    /// Runs the DSUD algorithm (Section 5.1).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Subspace`] for an invalid query mask or
    /// [`Error::ProtocolViolation`] if a site misbehaves.
    pub fn run_dsud(&mut self, config: &QueryConfig) -> Result<QueryOutcome, Error> {
        let mask = config.resolve_mask(self.dims)?;
        dsud::run(&mut self.links, &self.meter, config.q, mask, config.limit)
    }

    /// Runs the enhanced e-DSUD algorithm (Section 5.2).
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::run_dsud`].
    pub fn run_edsud(&mut self, config: &QueryConfig) -> Result<QueryOutcome, Error> {
        let mask = config.resolve_mask(self.dims)?;
        edsud::run_with_synopses(
            &mut self.links,
            &self.meter,
            config.q,
            mask,
            config.bound,
            config.limit,
            config.synopsis,
        )
    }
}

/// Interprets a site reply that must be an upload.
pub(crate) fn expect_upload(msg: Message) -> Result<Option<TupleMsg>, Error> {
    match msg {
        Message::Upload(t) => Ok(t),
        _ => Err(Error::ProtocolViolation("expected Upload reply")),
    }
}

/// Interprets a site reply that must be a survival reply; the survival
/// product must be a valid probability or the reply is rejected (a
/// corrupted site must not silently poison global probabilities).
pub(crate) fn expect_survival(msg: Message) -> Result<(f64, u64), Error> {
    match msg {
        Message::SurvivalReply { survival, pruned } => {
            if survival.is_finite() && (0.0..=1.0).contains(&survival) {
                Ok((survival, pruned))
            } else {
                Err(Error::ProtocolViolation("survival product out of range"))
            }
        }
        _ => Err(Error::ProtocolViolation("expected SurvivalReply")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_cluster() {
        assert!(matches!(Cluster::local(2, vec![]), Err(Error::NoSites)));
    }

    #[test]
    fn expect_helpers_reject_mismatches() {
        assert!(expect_upload(Message::Ack).is_err());
        assert!(expect_survival(Message::Ack).is_err());
        assert_eq!(expect_upload(Message::Upload(None)).unwrap(), None);
        assert_eq!(
            expect_survival(Message::SurvivalReply { survival: 0.5, pruned: 2 }).unwrap(),
            (0.5, 2)
        );
        for bad in [f64::NAN, -0.1, 1.5, f64::INFINITY] {
            assert!(expect_survival(Message::SurvivalReply { survival: bad, pruned: 0 }).is_err());
        }
    }
}
