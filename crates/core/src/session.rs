//! The session layer behind `dsud serve`: many concurrent queries over one
//! resident deployment.
//!
//! A one-shot [`Cluster`] builds its sites, answers a
//! single query, and dies — fine for experiments, wasteful for the
//! interactive, repeated querying the paper's progressive protocols are
//! designed for. [`SessionServer`] keeps the sites (and their PR-trees)
//! resident and multiplexes any number of DSUD / e-DSUD queries onto them:
//!
//! * **Query multiplexing** — the cluster's links are wrapped in
//!   [`SharedLink`]s; each admitted query gets its own query id and a set
//!   of [`MuxLink`]s that tag every frame with that id
//!   ([`dsud_net::Message::Tagged`]). Sites park per-query cursor state in
//!   a session table and dispatch each tagged frame through the ordinary
//!   one-shot handlers, so a multiplexed query is *bit-identical* to a
//!   one-shot run — same answers, same per-query traffic — which the
//!   `serve_sessions` integration tests pin.
//! * **Admission control** — a deterministic FIFO gate bounds how many
//!   queries run concurrently ([`SessionOptions::max_concurrent`]); the
//!   microseconds spent queueing are reported per query
//!   ([`dsud_obs::Counter::AdmissionWaitUs`]).
//! * **Result cache** — completed answers are cached under their full
//!   query key (algorithm, threshold bits, subspace, limit, bound,
//!   synopsis, failure policy), so a repeated query on unchanged sites is
//!   served without a single candidate round
//!   ([`dsud_obs::Counter::CacheHits`], `rounds == 0` in its report). Any
//!   update applied through [`SessionServer::apply_update`] — the existing
//!   maintenance path — invalidates the whole cache before the site's tree
//!   changes become visible to queries.
//!
//! Traffic accounting is two-level: each query's [`SessionOutcome`]
//! carries the per-query meter snapshot (identical to a one-shot run),
//! while [`SessionServer::meter`] aggregates the actual tagged frames
//! across all queries, id headers included.
//!
//! # Health, quarantine, and rejoin
//!
//! The daemon outlives transient site failures, so quarantine cannot stay
//! the one-way door it is for a one-shot [`Cluster`] run. The session
//! layer runs the full recovery lifecycle:
//!
//! * **Heartbeat** — [`SessionServer::heartbeat`] probes every site with a
//!   nonce-carrying [`dsud_net::Message::HealthProbe`] and matches the
//!   echoed [`dsud_net::Message::HealthAck`]. The schedule is
//!   deterministic: a sweep runs automatically after every
//!   [`SessionOptions::heartbeat_every`] served queries (query-count
//!   scheduled, never timer-driven, so runs replay exactly), or manually.
//!   A miss bumps [`dsud_obs::Counter::HeartbeatMisses`]; once a site's
//!   consecutive misses reach [`SessionOptions::miss_threshold`] it is
//!   quarantined ([`crate::SiteState::Quarantined`] stamped with the op-log
//!   epoch, so the server knows exactly which updates the site missed).
//! * **Probation and rejoin** — a quarantined site that answers a probe is
//!   explicitly reconnected (resetting the link's since-reconnect health
//!   window so probation decisions use fresh evidence), resynced (below),
//!   and moved to [`crate::SiteState::Probation`]; after
//!   [`SessionOptions::probation_probes`] further consecutive successful
//!   probes it rejoins as Active ([`dsud_obs::Counter::Rejoins`]).
//! * **Resync** — [`SessionServer::apply_update`] appends every update to
//!   a bounded, epoch-numbered op log; updates homed at a quarantined site
//!   are *deferred* (logged but not injected), and an inject that defeats
//!   the retry budget quarantines the home site and defers the same way —
//!   stamped one epoch before the op, so the replay covers it (injects
//!   are idempotent at the site, making re-delivery safe even when only
//!   the reply was lost). At rejoin the server
//!   replays the site's missed ops through the existing
//!   [`Maintainer::apply_local_only`] path
//!   ([`dsud_obs::Counter::ResyncOps`] per op), after which queries are
//!   bit-identical to a never-failed run — pinned by
//!   `tests/recovery_determinism.rs`. If the log was truncated past the
//!   site's quarantine epoch, the replay can no longer be proven complete
//!   and the server falls back to a full [`Maintainer::bootstrap`], which
//!   rebuilds and re-replicates the global skyline wholesale (see
//!   OPERATIONS.md for sizing [`SessionOptions::op_log_capacity`]).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use std::sync::Arc;

use dsud_net::server::{share, MuxLink, SharedLink};
use dsud_net::{
    tcp, BandwidthMeter, FanPlan, Fanout, Link, LinkError, LinkHealth, Message, MeterSnapshot,
    SiteRoute, TupleMsg,
};
use dsud_obs::{Counter, Recorder, RunReport};

use crate::degrade::FailureTracker;
use crate::update::{Maintainer, UpdateOp};
use crate::{
    dsud, edsud, BoundMode, Cluster, Error, FailurePolicy, ProgressLog, QuarantineReason,
    QueryConfig, QueryOutcome, RunStats, SiteState, SiteStatus,
};

/// Session-server knobs: concurrency, caching, and the recovery lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionOptions {
    /// Maximum queries running concurrently; admitted FIFO beyond that.
    /// Must be at least 1.
    pub max_concurrent: usize,
    /// Result-cache capacity in entries (FIFO eviction); 0 disables the
    /// cache entirely.
    pub cache_capacity: usize,
    /// Run a heartbeat sweep automatically after every this-many served
    /// queries (query-count scheduled, so runs are deterministic and
    /// replayable); 0 (the default) disables the automatic schedule —
    /// [`SessionServer::heartbeat`] can still be driven manually.
    pub heartbeat_every: u64,
    /// Consecutive missed exchanges (probes or query rounds, as tracked by
    /// the retry layer) before a site is quarantined by the heartbeat.
    pub miss_threshold: u64,
    /// Consecutive successful probes a probation site must answer before
    /// it rejoins as Active.
    pub probation_probes: u64,
    /// Bounded op-log capacity in entries. The log must cover every update
    /// deferred during an outage for the replay path to restore the site
    /// exactly; once truncated past a site's quarantine epoch, its rejoin
    /// takes the full-bootstrap path instead (see the module docs).
    pub op_log_capacity: usize,
    /// Probability threshold for the post-truncation
    /// [`Maintainer::bootstrap`] replica rebuild. Session queries carry
    /// their own thresholds; this one only shapes the recovery-time
    /// replicated skyline.
    pub bootstrap_q: f64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            max_concurrent: 8,
            cache_capacity: 64,
            heartbeat_every: 0,
            miss_threshold: 3,
            probation_probes: 2,
            op_log_capacity: 1024,
            bootstrap_q: 0.5,
        }
    }
}

/// Counters describing a session server's lifetime so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered (cache hits included).
    pub queries_served: u64,
    /// Queries answered from the result cache without any round.
    pub cache_hits: u64,
    /// Cached answers dropped by update-driven invalidation.
    pub cache_invalidated: u64,
    /// Updates applied through the maintenance path.
    pub updates_applied: u64,
    /// Current number of cached answers.
    pub cache_entries: usize,
    /// Highest number of queries that ran concurrently.
    pub peak_concurrent: usize,
    /// Heartbeat probes that went unanswered.
    pub heartbeat_misses: u64,
    /// Sites quarantined by heartbeat sweeps (cumulative: a site that
    /// flaps twice counts twice).
    pub quarantines: u64,
    /// Sites promoted back to Active after completing probation.
    pub rejoins: u64,
    /// Deferred updates replayed to rejoining sites.
    pub resync_ops: u64,
    /// Queries cut short by their per-query deadline.
    pub cancelled: u64,
}

/// What one heartbeat sweep observed and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HeartbeatSummary {
    /// Health probes sent: one per physical root link, regardless of
    /// lifecycle state (in a flat topology that is one per site; behind an
    /// aggregator one probe covers the whole subtree, which the aggregator
    /// answers for itself).
    pub probed: u64,
    /// Probes answered with the matching nonce.
    pub acks: u64,
    /// Probes that failed or answered with the wrong frame.
    pub misses: u64,
    /// Sites newly quarantined by this sweep.
    pub quarantined: Vec<u32>,
    /// Quarantined sites that answered and entered probation (resynced).
    pub probation: Vec<u32>,
    /// Probation sites promoted back to Active by this sweep.
    pub rejoined: Vec<u32>,
    /// Deferred updates replayed during this sweep's resyncs.
    pub resync_ops: u64,
}

/// Result of one query answered by a [`SessionServer`].
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Server-assigned query id (also stamped into the report).
    pub query_id: u64,
    /// The query result. For a cache hit the skyline is the cached answer
    /// verbatim and the traffic / round counters are zero — no network
    /// round happened.
    pub outcome: QueryOutcome,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Microseconds spent queueing at the admission gate.
    pub admission_wait_us: u64,
    /// Per-query run report (schema 6), when one was requested.
    pub report: Option<RunReport>,
}

/// Deterministic FIFO admission gate: tickets are served strictly in
/// arrival order, and at most `max` width runs at once. An update drains
/// the gate by acquiring the full width.
#[derive(Debug)]
struct Admission {
    max: usize,
    state: Mutex<AdmissionState>,
    turned: Condvar,
}

#[derive(Debug, Default)]
struct AdmissionState {
    next_ticket: u64,
    now_serving: u64,
    running: usize,
    peak: usize,
}

impl Admission {
    fn new(max: usize) -> Self {
        Admission {
            max: max.max(1),
            state: Mutex::new(AdmissionState::default()),
            turned: Condvar::new(),
        }
    }

    /// Blocks until this caller's turn comes *and* `width` slots are free;
    /// returns the microseconds waited. Strict FIFO: a wide request at the
    /// head of the queue blocks later narrow ones until it is admitted.
    fn acquire(&self, width: usize) -> u64 {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        while !(state.now_serving == ticket && state.running + width <= self.max) {
            state = self.turned.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.now_serving += 1;
        state.running += width;
        // Peak tracks *query* concurrency; a full-width update drain is
        // exclusion, not concurrency, so it does not count.
        if width == 1 {
            state.peak = state.peak.max(state.running);
        }
        drop(state);
        // The next ticket may already satisfy its admission condition.
        self.turned.notify_all();
        started.elapsed().as_micros() as u64
    }

    fn release(&self, width: usize) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.running -= width;
        drop(state);
        self.turned.notify_all();
    }

    fn peak(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).peak
    }
}

/// Releases admitted width when the query scope ends, error paths included.
struct AdmissionGuard<'a> {
    admission: &'a Admission,
    width: usize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(self.width);
    }
}

/// Full identity of an answer: every knob that can change the result.
/// Batch size, pipeline depth, and plan mode are deliberately absent —
/// they are answer-invariant execution strategies (pinned by the PR 4–5
/// and planning bit-identity tests), so differently-scheduled repeats
/// share one cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    algorithm: &'static str,
    q_bits: u64,
    mask_bits: u64,
    limit: Option<usize>,
    bound: BoundMode,
    synopsis: Option<u16>,
    failure: FailurePolicy,
}

/// `(key → answer)` store with FIFO eviction.
#[derive(Debug, Default)]
struct ResultCache {
    map: HashMap<CacheKey, QueryOutcome>,
    order: VecDeque<CacheKey>,
    capacity: usize,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache { capacity, ..ResultCache::default() }
    }

    fn get(&self, key: &CacheKey) -> Option<QueryOutcome> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: CacheKey, outcome: QueryOutcome) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), outcome).is_none() {
            self.order.push_back(key);
        }
        while self.order.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.map.remove(&evicted);
            }
        }
    }

    /// Drops everything; returns how many answers were invalidated.
    fn clear(&mut self) -> u64 {
        let dropped = self.map.len() as u64;
        self.map.clear();
        self.order.clear();
        dropped
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Bounded, epoch-numbered history of accepted updates. Epochs are
/// 1-based and strictly increasing; the log retains the most recent
/// `capacity` entries. A site quarantined at epoch `E` has seen every
/// update with epoch `<= E`, so its rejoin replays exactly the retained
/// entries homed at it with epoch `> E` — provided the log still covers
/// that range ([`OpLog::covers`]).
#[derive(Debug, Default)]
struct OpLog {
    ops: VecDeque<(u64, UpdateOp)>,
    next_epoch: u64,
    capacity: usize,
}

impl OpLog {
    fn new(capacity: usize) -> Self {
        OpLog { ops: VecDeque::new(), next_epoch: 1, capacity }
    }

    /// Appends one op and returns its epoch, evicting the oldest entries
    /// beyond capacity.
    fn push(&mut self, op: UpdateOp) -> u64 {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        if self.capacity > 0 {
            self.ops.push_back((epoch, op));
            while self.ops.len() > self.capacity {
                self.ops.pop_front();
            }
        }
        epoch
    }

    /// Whether every op with epoch `> since` is still retained.
    fn covers(&self, since: u64) -> bool {
        let first_retained = self.ops.front().map_or(self.next_epoch, |(e, _)| *e);
        first_retained <= since + 1
    }

    /// Retained ops homed at `site` with epoch `> since`, oldest first.
    fn missed_for(&self, site: u32, since: u64) -> Vec<UpdateOp> {
        self.ops
            .iter()
            .filter(|(e, op)| *e > since && op.site() == site)
            .map(|(_, op)| op.clone())
            .collect()
    }
}

/// Which coordinator a session query runs.
#[derive(Debug, Clone, Copy)]
enum Algo {
    Dsud,
    Edsud,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Dsud => "dsud",
            Algo::Edsud => "edsud",
        }
    }
}

/// A resident deployment serving many concurrent DSUD / e-DSUD queries —
/// the session layer of the `dsud serve` daemon (see the module docs).
///
/// Built from a fully-constructed [`Cluster`] (any transport); all methods
/// take `&self`, so one server can be shared across client threads behind
/// an [`std::sync::Arc`].
pub struct SessionServer {
    dims: usize,
    total_tuples: usize,
    /// The cluster's fan-out topology. `shared`, `health`, `groups`, and
    /// `grouped` are index-paired with the plan's root links: one per site
    /// in a flat deployment, one per aggregator subtree otherwise.
    plan: FanPlan,
    /// Member sites behind each root link, ascending (a single-element
    /// group is a directly-linked site).
    groups: Vec<Vec<u32>>,
    /// Site → index of the root link that reaches it.
    group_of: Vec<usize>,
    /// Whether each root link terminates at an aggregator (so per-site
    /// frames must ride [`dsud_net::Message::AggScatter`]) rather than at
    /// the site itself.
    grouped: Vec<bool>,
    /// Declared before `_servers` so the links drop first — same wind-down
    /// order [`Cluster`] itself maintains for its TCP transport.
    shared: Vec<SharedLink>,
    /// Server-wide aggregate meter (the cluster's): sees the tagged frames
    /// of every query, id headers included.
    meter: BandwidthMeter,
    /// Per-root-link retry-layer health, index-paired with `shared`. The
    /// heartbeat reads consecutive-miss counts from here; an explicit
    /// reconnect at probation start resets the since-reconnect window.
    health: Vec<Arc<LinkHealth>>,
    /// Site lifecycle (Active / Probation / Quarantined) across queries.
    lifecycle: Mutex<FailureTracker>,
    op_log: Mutex<OpLog>,
    options: SessionOptions,
    admission: Admission,
    cache: Mutex<ResultCache>,
    next_query: AtomicU64,
    heartbeat_nonce: AtomicU64,
    queries_served: AtomicU64,
    cache_hits: AtomicU64,
    cache_invalidated: AtomicU64,
    updates_applied: AtomicU64,
    heartbeat_misses: AtomicU64,
    quarantines: AtomicU64,
    rejoins: AtomicU64,
    resync_ops: AtomicU64,
    cancelled: AtomicU64,
    _servers: Vec<tcp::SiteServer>,
}

impl std::fmt::Debug for SessionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionServer")
            .field("dims", &self.dims)
            .field("sites", &self.plan.sites())
            .field("root_fanout", &self.shared.len())
            .field("total_tuples", &self.total_tuples)
            .finish_non_exhaustive()
    }
}

impl SessionServer {
    /// Takes ownership of a constructed cluster and re-assembles it around
    /// shared, query-multiplexed links.
    pub fn new(cluster: Cluster, options: SessionOptions) -> Self {
        let (dims, total_tuples, links, health, meter, plan, servers) = cluster.into_parts();
        // The lifecycle tracker always degrades (quarantines) rather than
        // failing: a daemon-level health decision must never abort the
        // daemon. Per-query failure policies are unaffected — each run
        // still builds its own tracker. It tracks *sites*, even though the
        // daemon probes *links*: a missed group link quarantines every
        // member site behind it, so a lost aggregator degrades its whole
        // subtree as a unit.
        let lifecycle =
            FailureTracker::new(plan.sites(), FailurePolicy::Degrade, meter.recorder().clone());
        let groups = plan.groups();
        let mut group_of = vec![0usize; plan.sites()];
        for (g, members) in groups.iter().enumerate() {
            for &s in members {
                group_of[s as usize] = g;
            }
        }
        let grouped: Vec<bool> =
            plan.roots().iter().map(|r| !matches!(r, dsud_net::FanNode::Leaf(_))).collect();
        SessionServer {
            dims,
            total_tuples,
            plan,
            groups,
            group_of,
            grouped,
            shared: links.into_iter().map(share).collect(),
            meter,
            health,
            lifecycle: Mutex::new(lifecycle),
            op_log: Mutex::new(OpLog::new(options.op_log_capacity)),
            options,
            admission: Admission::new(options.max_concurrent),
            cache: Mutex::new(ResultCache::new(options.cache_capacity)),
            next_query: AtomicU64::new(1),
            heartbeat_nonce: AtomicU64::new(1),
            queries_served: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_invalidated: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            heartbeat_misses: AtomicU64::new(0),
            quarantines: AtomicU64::new(0),
            rejoins: AtomicU64::new(0),
            resync_ops: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            _servers: servers,
        }
    }

    /// Dimensionality of the resident data space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of resident sites `m` (leaf sites, regardless of how many
    /// root links the topology plan collapses them behind).
    pub fn site_count(&self) -> usize {
        self.plan.sites()
    }

    /// The fan-out topology the resident deployment was assembled with.
    pub fn plan(&self) -> &FanPlan {
        &self.plan
    }

    /// Total tuples across all sites at construction time.
    pub fn total_tuples(&self) -> usize {
        self.total_tuples
    }

    /// The server-wide aggregate bandwidth meter (tagged frames of every
    /// query; per-query traffic lives in each [`SessionOutcome`]).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_invalidated: self.cache_invalidated.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            cache_entries: self.cache.lock().unwrap_or_else(PoisonError::into_inner).len(),
            peak_concurrent: self.admission.peak(),
            heartbeat_misses: self.heartbeat_misses.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            rejoins: self.rejoins.load(Ordering::Relaxed),
            resync_ops: self.resync_ops.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
        }
    }

    /// Current lifecycle state of every site, in site order.
    pub fn site_states(&self) -> Vec<SiteState> {
        let lifecycle = self.lifecycle.lock().unwrap_or_else(PoisonError::into_inner);
        (0..self.plan.sites()).map(|i| lifecycle.state(i).clone()).collect()
    }

    /// Per-site health records in the same shape query outcomes carry.
    pub fn site_statuses(&self) -> Vec<SiteStatus> {
        self.lifecycle.lock().unwrap_or_else(PoisonError::into_inner).statuses()
    }

    /// Runs one DSUD query through the session layer.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::run_dsud`].
    pub fn run_dsud(
        &self,
        config: &QueryConfig,
        want_report: bool,
    ) -> Result<SessionOutcome, Error> {
        self.run(Algo::Dsud, config, want_report)
    }

    /// Runs one e-DSUD query through the session layer.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::run_edsud`].
    pub fn run_edsud(
        &self,
        config: &QueryConfig,
        want_report: bool,
    ) -> Result<SessionOutcome, Error> {
        self.run(Algo::Edsud, config, want_report)
    }

    fn run(
        &self,
        algo: Algo,
        config: &QueryConfig,
        want_report: bool,
    ) -> Result<SessionOutcome, Error> {
        // Validate before taking a queue slot so malformed queries cannot
        // stall well-formed ones behind them.
        let mask = config.resolve_mask(self.dims)?;
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);

        let wait_us = self.admission.acquire(1);
        let _slot = AdmissionGuard { admission: &self.admission, width: 1 };

        let recorder = if want_report { Recorder::enabled() } else { Recorder::disabled() };
        recorder.add(Counter::AdmissionWaitUs, wait_us);

        let key = CacheKey {
            algorithm: algo.name(),
            q_bits: config.q.to_bits(),
            mask_bits: mask.bits(),
            limit: config.limit,
            bound: config.bound,
            synopsis: config.synopsis,
            failure: config.failure,
        };

        // Copy the cached answer out in its own statement so the cache
        // guard drops here: note_served() below can run a whole heartbeat
        // sweep, and a probe that moves a quarantined site into probation
        // resyncs it — which re-locks the cache to invalidate it. Holding
        // the guard across that path would self-deadlock (and even a
        // fault-free sweep would block every concurrent query behind the
        // cache lock for the duration of the probes).
        let cached = self.cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key);
        if let Some(cached) = cached {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.note_served();
            recorder.incr(Counter::CacheHits);
            let mut progress = ProgressLog::new();
            for e in &cached.skyline {
                recorder.progressive(e.tuple.id().site.0, e.tuple.id().seq, e.probability, 0);
                progress.push(e.tuple.id(), e.probability, 0, Duration::ZERO);
            }
            let outcome = QueryOutcome {
                skyline: cached.skyline,
                progress,
                traffic: MeterSnapshot::default(),
                stats: RunStats::default(),
                degraded: false,
                cancelled: false,
                sites: Vec::new(),
                plan: None,
            };
            let report = finish_report(&recorder, algo, query_id);
            return Ok(SessionOutcome {
                query_id,
                outcome,
                cache_hit: true,
                admission_wait_us: wait_us,
                report,
            });
        }

        // Fresh per-query meter: this query's traffic snapshot starts at
        // zero exactly like a one-shot run's, so `outcome.traffic` is
        // bit-identical to the same query executed on a fresh cluster.
        // One MuxLink per *physical* root link; the coordinator's Fanout
        // re-derives the per-site view from the plan, so a tree-topology
        // session query merges frames exactly like a one-shot tree run.
        let query_meter = BandwidthMeter::with_recorder(recorder.clone());
        let mut links: Vec<Box<dyn Link>> = self
            .shared
            .iter()
            .map(|s| {
                Box::new(MuxLink::new(query_id, SharedLink::clone(s), query_meter.clone()))
                    as Box<dyn Link>
            })
            .collect();
        let result = {
            let mut fan = Fanout::tree(&mut links, &self.plan, recorder.clone());
            match algo {
                Algo::Dsud => dsud::run_on(
                    &mut fan,
                    &query_meter,
                    config.q,
                    mask,
                    config.limit,
                    config.failure,
                    config.batch,
                    config.pipeline,
                    config.wire,
                    config.deadline_ms,
                    config.plan,
                ),
                Algo::Edsud => edsud::run_on(
                    &mut fan,
                    &query_meter,
                    config.q,
                    mask,
                    config.bound,
                    config.limit,
                    config.synopsis,
                    config.failure,
                    config.batch,
                    config.pipeline,
                    config.wire,
                    config.deadline_ms,
                    config.plan,
                ),
            }
        };
        // Clear the sites' parked cursor state for this query id whether
        // the run succeeded or not; the release is server bookkeeping, not
        // query traffic, so it bypasses the per-query meter (the shared
        // links still meter it into the server aggregate).
        drop(links);
        self.release_sites(query_id);
        let mut outcome = result?;
        // A query answered while any site sits in session-level quarantine
        // may not reflect updates deferred for that site: stamp it
        // degraded so clients treat it as the not-fully-converged answer
        // it is. Probation sites are already resynced, so they don't
        // taint the answer.
        if self.lifecycle.lock().unwrap_or_else(PoisonError::into_inner).degraded() {
            outcome.degraded = true;
        }

        self.note_served();
        if outcome.cancelled {
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        // A degraded answer carries upper bounds, not the answer an
        // intact repeat would produce, and a cancelled answer is a
        // partial one — never serve either from cache.
        if !outcome.degraded && !outcome.cancelled {
            self.cache.lock().unwrap_or_else(PoisonError::into_inner).insert(key, outcome.clone());
        }
        let report = finish_report(&recorder, algo, query_id);
        Ok(SessionOutcome {
            query_id,
            outcome,
            cache_hit: false,
            admission_wait_us: wait_us,
            report,
        })
    }

    /// Applies one update through the existing maintenance path and
    /// invalidates the result cache.
    ///
    /// The update drains the admission gate first (it acquires the full
    /// concurrent width, FIFO like any query), so it never interleaves
    /// with a running query's rounds, and every query admitted after it
    /// sees both the new tree state and an empty cache.
    ///
    /// Every accepted update is appended to the bounded, epoch-numbered op
    /// log first. If the home site is quarantined the injection is
    /// *deferred*: the op stays in the log and is replayed when the site
    /// rejoins (see the module docs), so a flapping site never turns an
    /// update into an error. An inject that defeats the whole retry budget
    /// on a still-Active home site is handled the same way: the site is
    /// quarantined on the spot (stamped one epoch before this op, so the
    /// rejoin resync replays it) and the update reports success as a
    /// deferral — by then the op is already part of the server's history,
    /// and injects are idempotent at the site, so a request that executed
    /// with only its reply lost is safe to re-deliver.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] for an out-of-range home site.
    pub fn apply_update(&self, op: &UpdateOp) -> Result<(), Error> {
        let home = op.site() as usize;
        if home >= self.plan.sites() {
            return Err(Error::InvalidArgument("update names a site outside the cluster"));
        }
        self.admission.acquire(self.admission.max);
        let _all = AdmissionGuard { admission: &self.admission, width: self.admission.max };

        // Log first: the epoch stamps this update's place in history, and
        // quarantine transitions record the epoch their site last saw.
        let epoch = self.op_log.lock().unwrap_or_else(PoisonError::into_inner).push(op.clone());
        let deferred = {
            let mut lifecycle = self.lifecycle.lock().unwrap_or_else(PoisonError::into_inner);
            lifecycle.set_epoch(epoch);
            !lifecycle.state(home).is_active()
        };

        if !deferred {
            let inject = match op {
                UpdateOp::Insert(t) => Message::InjectInsert(TupleMsg::new(t, 0.0)),
                UpdateOp::Delete(t) => Message::InjectDelete(TupleMsg::new(t, 0.0)),
            };
            // Same semantics as `Maintainer::apply_local_only`: the site's
            // tree changes; the maintenance notification (if any) is the
            // metered reply. Behind an aggregator the inject rides a
            // single-part scatter addressed to the home site, and the
            // one-entry reply set is unwrapped back to the site's own
            // answer — flat deployments keep the plain frame byte for
            // byte.
            let g = self.group_of[home];
            let reply = if self.grouped[g] {
                match self.shared[g]
                    .lock()
                    .call(Message::AggScatter { parts: vec![(op.site(), inject)] })
                {
                    Ok(Message::AggReplies { replies })
                        if replies.len() == 1 && replies[0].0 == op.site() =>
                    {
                        replies.into_iter().next().expect("len checked").1.into_result()
                    }
                    Ok(_) => Err(LinkError::Malformed),
                    Err(e) => Err(e),
                }
            } else {
                self.shared[g].lock().call(inject)
            };
            match reply {
                Ok(_) => {
                    self.updates_applied.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => {
                    // The whole retry budget failed. The op already sits in
                    // the log at `epoch`, so an error return would strand
                    // it: any later quarantine stamps an epoch >= `epoch`
                    // and the rejoin replay (epochs strictly after the
                    // stamp) would skip this op forever. Instead quarantine
                    // the home site now, stamped one epoch back, so its
                    // resync starts at `epoch - 1` and re-delivers exactly
                    // this op — safe even if the inject executed at the
                    // site with only the reply lost, because injects are
                    // idempotent (duplicate inserts and missing deletes
                    // ack as no-ops).
                    let mut lifecycle =
                        self.lifecycle.lock().unwrap_or_else(PoisonError::into_inner);
                    lifecycle.set_epoch(epoch - 1);
                    lifecycle.quarantine(home, QuarantineReason::Transport(e));
                    lifecycle.set_epoch(epoch);
                    drop(lifecycle);
                    self.quarantines.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // Invalidate on deferral and inject failure too: the accepted
        // update is now part of the server's history even though the tree
        // change is pending — and a failed inject may still have executed
        // at the site with the reply lost, so cached answers cannot be
        // trusted either way.
        let dropped = self.cache.lock().unwrap_or_else(PoisonError::into_inner).clear();
        self.cache_invalidated.fetch_add(dropped, Ordering::Relaxed);
        Ok(())
    }

    /// Probes every site once and advances the recovery lifecycle (see the
    /// module docs). Runs automatically every
    /// [`SessionOptions::heartbeat_every`] served queries; calling it
    /// directly is equivalent and safe at any time — probes are control
    /// frames the sites answer without touching query state, and they are
    /// metered only on the server aggregate, never a query's own meter.
    pub fn heartbeat(&self) -> HeartbeatSummary {
        let rec = self.meter.recorder().clone();
        let mut summary = HeartbeatSummary::default();
        for i in 0..self.shared.len() {
            summary.probed += 1;
            let nonce = self.heartbeat_nonce.fetch_add(1, Ordering::Relaxed);
            let reply = self.shared[i].lock().call(Message::HealthProbe { nonce });
            match reply {
                Ok(Message::HealthAck { nonce: echoed }) if echoed == nonce => {
                    summary.acks += 1;
                    for &site in &self.groups[i] {
                        self.probe_succeeded(site as usize, i, &mut summary);
                    }
                }
                Ok(_) => {
                    summary.misses += 1;
                    self.heartbeat_misses.fetch_add(1, Ordering::Relaxed);
                    rec.incr(Counter::HeartbeatMisses);
                    for &site in &self.groups[i] {
                        self.probe_missed(
                            site as usize,
                            i,
                            QuarantineReason::Protocol(
                                "health probe answered with the wrong frame".into(),
                            ),
                            &mut summary,
                        );
                    }
                }
                Err(e) => {
                    summary.misses += 1;
                    self.heartbeat_misses.fetch_add(1, Ordering::Relaxed);
                    rec.incr(Counter::HeartbeatMisses);
                    for &site in &self.groups[i] {
                        self.probe_missed(
                            site as usize,
                            i,
                            QuarantineReason::Transport(e.clone()),
                            &mut summary,
                        );
                    }
                }
            }
        }
        summary
    }

    /// One site (or the aggregator fronting it) answered its probe:
    /// advance Quarantined → Probation (with an explicit reconnect and a
    /// resync) or Probation → Active.
    fn probe_succeeded(&self, site: usize, link: usize, summary: &mut HeartbeatSummary) {
        let state =
            self.lifecycle.lock().unwrap_or_else(PoisonError::into_inner).state(site).clone();
        match state {
            SiteState::Quarantined { .. } => {
                // The site is reachable again. Reconnect explicitly so the
                // retry layer's since-reconnect window restarts — probation
                // must be judged on fresh evidence, not the failure burst
                // that caused the quarantine.
                let _ = self.shared[link].lock().reconnect();
                let since = self
                    .lifecycle
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .begin_probation(site);
                if let Some(since) = since {
                    summary.resync_ops += self.resync(site as u32, since);
                    summary.probation.push(site as u32);
                }
            }
            SiteState::Probation { .. } => {
                let promoted = self
                    .lifecycle
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .probation_success(site, self.options.probation_probes);
                if promoted {
                    self.rejoins.fetch_add(1, Ordering::Relaxed);
                    self.meter.recorder().incr(Counter::Rejoins);
                    summary.rejoined.push(site as u32);
                }
            }
            SiteState::Active => {}
        }
    }

    /// One site missed its probe (directly or because its whole group link
    /// did): quarantine it once the retry layer's consecutive-miss count on
    /// that link reaches the threshold. A probation site that misses goes
    /// straight back to quarantine — its probe streak must not carry over.
    fn probe_missed(
        &self,
        site: usize,
        link: usize,
        reason: QuarantineReason,
        summary: &mut HeartbeatSummary,
    ) {
        if self.health[link].consecutive_misses() < self.options.miss_threshold {
            return;
        }
        let mut lifecycle = self.lifecycle.lock().unwrap_or_else(PoisonError::into_inner);
        if lifecycle.state(site).is_active() {
            lifecycle.quarantine(site, reason);
            self.quarantines.fetch_add(1, Ordering::Relaxed);
            summary.quarantined.push(site as u32);
        }
    }

    /// Replays the updates `site` missed since its quarantine epoch
    /// through the existing maintenance path, or — if the op log no longer
    /// covers that range — takes the full [`Maintainer::bootstrap`] path.
    /// Returns the number of ops replayed.
    fn resync(&self, site: u32, since: u64) -> u64 {
        let rec = self.meter.recorder().clone();
        let (covered, missed) = {
            let log = self.op_log.lock().unwrap_or_else(PoisonError::into_inner);
            (log.covers(since), log.missed_for(site, since))
        };
        // Resync frames ride a fresh query id: tagged like any query's, so
        // they interleave safely with concurrent queries on the shared
        // links. The meter is a throwaway — resync traffic is server
        // bookkeeping and already counted by the aggregate meter. The
        // maintenance path indexes links by site, so behind an aggregator
        // each site gets a [`SiteRoute`] view of its group link and the
        // `Maintainer` stays topology-blind.
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);
        let resync_meter = BandwidthMeter::new();
        let mut links: Vec<Box<dyn Link>> = (0..self.plan.sites())
            .map(|s| {
                let g = self.group_of[s];
                let mux = MuxLink::new(
                    query_id,
                    SharedLink::clone(&self.shared[g]),
                    resync_meter.clone(),
                );
                if self.grouped[g] {
                    Box::new(SiteRoute::new(s as u32, mux)) as Box<dyn Link>
                } else {
                    Box::new(mux) as Box<dyn Link>
                }
            })
            .collect();
        let mut replayed = 0u64;
        for op in &missed {
            if Maintainer::apply_local_only(&mut links, op).is_ok() {
                replayed += 1;
                rec.incr(Counter::ResyncOps);
            }
        }
        if !covered {
            // The log was truncated past the quarantine epoch: the replay
            // above covered only what is still retained, and completeness
            // can no longer be proven from the log. Rebuild and
            // re-replicate the global skyline wholesale; errors leave the
            // site in probation, where the next heartbeat retries.
            if let Ok(mask) = crate::SubspaceMask::full(self.dims) {
                let _ = Maintainer::bootstrap(
                    &mut links,
                    &resync_meter,
                    self.options.bootstrap_q,
                    mask,
                    BoundMode::default(),
                );
            }
        }
        drop(links);
        self.release_sites(query_id);
        self.resync_ops.fetch_add(replayed, Ordering::Relaxed);
        // The rejoining site's tree just changed: cached answers predate
        // the replay.
        let dropped = self.cache.lock().unwrap_or_else(PoisonError::into_inner).clear();
        self.cache_invalidated.fetch_add(dropped, Ordering::Relaxed);
        replayed
    }

    /// Counts one served query and runs the deterministic heartbeat
    /// schedule: a sweep after every `heartbeat_every` served queries.
    fn note_served(&self) {
        let served = self.queries_served.fetch_add(1, Ordering::Relaxed) + 1;
        let every = self.options.heartbeat_every;
        if every > 0 && served % every == 0 {
            self.heartbeat();
        }
    }

    fn release_sites(&self, query_id: u64) {
        for shared in &self.shared {
            let release = Message::Tagged { query_id, inner: Box::new(Message::Release) };
            let _ = shared.lock().call(release);
        }
    }
}

/// Takes the per-query report (if recording) and stamps the schema-6
/// session fields the session layer owns. Transport / threads / batch /
/// pipeline stamps stay with the caller that knows them (the CLI), exactly
/// as on the one-shot path.
fn finish_report(recorder: &Recorder, algo: Algo, query_id: u64) -> Option<RunReport> {
    let mut report = recorder.report(algo.name())?;
    report.query_id = Some(query_id);
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_fifo_and_bounded() {
        let admission = Admission::new(2);
        admission.acquire(1);
        admission.acquire(1); // 2 running: at capacity
        let gate = std::sync::Arc::new(Admission::new(2));
        drop(admission);

        // Fill the gate, then race 8 more acquires; served order must be
        // ticket order and concurrency must never exceed the width.
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for i in 0..8u32 {
                let gate = std::sync::Arc::clone(&gate);
                let order = std::sync::Arc::clone(&order);
                s.spawn(move || {
                    gate.acquire(1);
                    order.lock().unwrap().push(i);
                    std::thread::sleep(Duration::from_millis(2));
                    gate.release(1);
                });
                // Stagger spawns so ticket order matches spawn order.
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let served = order.lock().unwrap().clone();
        assert_eq!(served, (0..8).collect::<Vec<_>>());
        assert!(gate.peak() <= 2);
    }

    #[test]
    fn result_cache_evicts_fifo_and_clears() {
        let mut cache = ResultCache::new(2);
        let key = |q: u64| CacheKey {
            algorithm: "edsud",
            q_bits: q,
            mask_bits: 3,
            limit: None,
            bound: BoundMode::default(),
            synopsis: None,
            failure: FailurePolicy::default(),
        };
        let outcome = QueryOutcome {
            skyline: Vec::new(),
            progress: ProgressLog::new(),
            traffic: MeterSnapshot::default(),
            stats: RunStats::default(),
            degraded: false,
            cancelled: false,
            sites: Vec::new(),
            plan: None,
        };
        cache.insert(key(1), outcome.clone());
        cache.insert(key(2), outcome.clone());
        cache.insert(key(3), outcome.clone()); // evicts key(1)
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.clear(), 2);
        assert!(cache.get(&key(2)).is_none());

        let mut disabled = ResultCache::new(0);
        disabled.insert(key(1), outcome);
        assert_eq!(disabled.len(), 0);
    }
}
