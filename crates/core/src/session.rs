//! The session layer behind `dsud serve`: many concurrent queries over one
//! resident deployment.
//!
//! A one-shot [`Cluster`] builds its sites, answers a
//! single query, and dies — fine for experiments, wasteful for the
//! interactive, repeated querying the paper's progressive protocols are
//! designed for. [`SessionServer`] keeps the sites (and their PR-trees)
//! resident and multiplexes any number of DSUD / e-DSUD queries onto them:
//!
//! * **Query multiplexing** — the cluster's links are wrapped in
//!   [`SharedLink`]s; each admitted query gets its own query id and a set
//!   of [`MuxLink`]s that tag every frame with that id
//!   ([`dsud_net::Message::Tagged`]). Sites park per-query cursor state in
//!   a session table and dispatch each tagged frame through the ordinary
//!   one-shot handlers, so a multiplexed query is *bit-identical* to a
//!   one-shot run — same answers, same per-query traffic — which the
//!   `serve_sessions` integration tests pin.
//! * **Admission control** — a deterministic FIFO gate bounds how many
//!   queries run concurrently ([`SessionOptions::max_concurrent`]); the
//!   microseconds spent queueing are reported per query
//!   ([`dsud_obs::Counter::AdmissionWaitUs`]).
//! * **Result cache** — completed answers are cached under their full
//!   query key (algorithm, threshold bits, subspace, limit, bound,
//!   synopsis, failure policy), so a repeated query on unchanged sites is
//!   served without a single candidate round
//!   ([`dsud_obs::Counter::CacheHits`], `rounds == 0` in its report). Any
//!   update applied through [`SessionServer::apply_update`] — the existing
//!   maintenance path — invalidates the whole cache before the site's tree
//!   changes become visible to queries.
//!
//! Traffic accounting is two-level: each query's [`SessionOutcome`]
//! carries the per-query meter snapshot (identical to a one-shot run),
//! while [`SessionServer::meter`] aggregates the actual tagged frames
//! across all queries, id headers included.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use dsud_net::server::{share, MuxLink, SharedLink};
use dsud_net::{tcp, BandwidthMeter, Link, Message, MeterSnapshot, TupleMsg};
use dsud_obs::{Counter, Recorder, RunReport};

use crate::update::UpdateOp;
use crate::{
    dsud, edsud, BoundMode, Cluster, Error, FailurePolicy, ProgressLog, QueryConfig, QueryOutcome,
    RunStats,
};

/// Session-server knobs: concurrency and caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    /// Maximum queries running concurrently; admitted FIFO beyond that.
    /// Must be at least 1.
    pub max_concurrent: usize,
    /// Result-cache capacity in entries (FIFO eviction); 0 disables the
    /// cache entirely.
    pub cache_capacity: usize,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions { max_concurrent: 8, cache_capacity: 64 }
    }
}

/// Counters describing a session server's lifetime so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Queries answered (cache hits included).
    pub queries_served: u64,
    /// Queries answered from the result cache without any round.
    pub cache_hits: u64,
    /// Cached answers dropped by update-driven invalidation.
    pub cache_invalidated: u64,
    /// Updates applied through the maintenance path.
    pub updates_applied: u64,
    /// Current number of cached answers.
    pub cache_entries: usize,
    /// Highest number of queries that ran concurrently.
    pub peak_concurrent: usize,
}

/// Result of one query answered by a [`SessionServer`].
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Server-assigned query id (also stamped into the report).
    pub query_id: u64,
    /// The query result. For a cache hit the skyline is the cached answer
    /// verbatim and the traffic / round counters are zero — no network
    /// round happened.
    pub outcome: QueryOutcome,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Microseconds spent queueing at the admission gate.
    pub admission_wait_us: u64,
    /// Per-query run report (schema 6), when one was requested.
    pub report: Option<RunReport>,
}

/// Deterministic FIFO admission gate: tickets are served strictly in
/// arrival order, and at most `max` width runs at once. An update drains
/// the gate by acquiring the full width.
#[derive(Debug)]
struct Admission {
    max: usize,
    state: Mutex<AdmissionState>,
    turned: Condvar,
}

#[derive(Debug, Default)]
struct AdmissionState {
    next_ticket: u64,
    now_serving: u64,
    running: usize,
    peak: usize,
}

impl Admission {
    fn new(max: usize) -> Self {
        Admission {
            max: max.max(1),
            state: Mutex::new(AdmissionState::default()),
            turned: Condvar::new(),
        }
    }

    /// Blocks until this caller's turn comes *and* `width` slots are free;
    /// returns the microseconds waited. Strict FIFO: a wide request at the
    /// head of the queue blocks later narrow ones until it is admitted.
    fn acquire(&self, width: usize) -> u64 {
        let started = Instant::now();
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        while !(state.now_serving == ticket && state.running + width <= self.max) {
            state = self.turned.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        state.now_serving += 1;
        state.running += width;
        // Peak tracks *query* concurrency; a full-width update drain is
        // exclusion, not concurrency, so it does not count.
        if width == 1 {
            state.peak = state.peak.max(state.running);
        }
        drop(state);
        // The next ticket may already satisfy its admission condition.
        self.turned.notify_all();
        started.elapsed().as_micros() as u64
    }

    fn release(&self, width: usize) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        state.running -= width;
        drop(state);
        self.turned.notify_all();
    }

    fn peak(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).peak
    }
}

/// Releases admitted width when the query scope ends, error paths included.
struct AdmissionGuard<'a> {
    admission: &'a Admission,
    width: usize,
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        self.admission.release(self.width);
    }
}

/// Full identity of an answer: every knob that can change the result.
/// Batch size and pipeline depth are deliberately absent — they are
/// answer-invariant execution strategies (pinned by the PR 4–5 bit-identity
/// tests), so differently-scheduled repeats share one cache entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    algorithm: &'static str,
    q_bits: u64,
    mask_bits: u64,
    limit: Option<usize>,
    bound: BoundMode,
    synopsis: Option<u16>,
    failure: FailurePolicy,
}

/// `(key → answer)` store with FIFO eviction.
#[derive(Debug, Default)]
struct ResultCache {
    map: HashMap<CacheKey, QueryOutcome>,
    order: VecDeque<CacheKey>,
    capacity: usize,
}

impl ResultCache {
    fn new(capacity: usize) -> Self {
        ResultCache { capacity, ..ResultCache::default() }
    }

    fn get(&self, key: &CacheKey) -> Option<QueryOutcome> {
        self.map.get(key).cloned()
    }

    fn insert(&mut self, key: CacheKey, outcome: QueryOutcome) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), outcome).is_none() {
            self.order.push_back(key);
        }
        while self.order.len() > self.capacity {
            if let Some(evicted) = self.order.pop_front() {
                self.map.remove(&evicted);
            }
        }
    }

    /// Drops everything; returns how many answers were invalidated.
    fn clear(&mut self) -> u64 {
        let dropped = self.map.len() as u64;
        self.map.clear();
        self.order.clear();
        dropped
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Which coordinator a session query runs.
#[derive(Debug, Clone, Copy)]
enum Algo {
    Dsud,
    Edsud,
}

impl Algo {
    fn name(self) -> &'static str {
        match self {
            Algo::Dsud => "dsud",
            Algo::Edsud => "edsud",
        }
    }
}

/// A resident deployment serving many concurrent DSUD / e-DSUD queries —
/// the session layer of the `dsud serve` daemon (see the module docs).
///
/// Built from a fully-constructed [`Cluster`] (any transport); all methods
/// take `&self`, so one server can be shared across client threads behind
/// an [`std::sync::Arc`].
pub struct SessionServer {
    dims: usize,
    total_tuples: usize,
    /// Declared before `_servers` so the links drop first — same wind-down
    /// order [`Cluster`] itself maintains for its TCP transport.
    shared: Vec<SharedLink>,
    /// Server-wide aggregate meter (the cluster's): sees the tagged frames
    /// of every query, id headers included.
    meter: BandwidthMeter,
    admission: Admission,
    cache: Mutex<ResultCache>,
    next_query: AtomicU64,
    queries_served: AtomicU64,
    cache_hits: AtomicU64,
    cache_invalidated: AtomicU64,
    updates_applied: AtomicU64,
    _servers: Vec<tcp::SiteServer>,
}

impl std::fmt::Debug for SessionServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionServer")
            .field("dims", &self.dims)
            .field("sites", &self.shared.len())
            .field("total_tuples", &self.total_tuples)
            .finish_non_exhaustive()
    }
}

impl SessionServer {
    /// Takes ownership of a constructed cluster and re-assembles it around
    /// shared, query-multiplexed links.
    pub fn new(cluster: Cluster, options: SessionOptions) -> Self {
        let (dims, total_tuples, links, meter, servers) = cluster.into_parts();
        SessionServer {
            dims,
            total_tuples,
            shared: links.into_iter().map(share).collect(),
            meter,
            admission: Admission::new(options.max_concurrent),
            cache: Mutex::new(ResultCache::new(options.cache_capacity)),
            next_query: AtomicU64::new(1),
            queries_served: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_invalidated: AtomicU64::new(0),
            updates_applied: AtomicU64::new(0),
            _servers: servers,
        }
    }

    /// Dimensionality of the resident data space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of resident sites `m`.
    pub fn site_count(&self) -> usize {
        self.shared.len()
    }

    /// Total tuples across all sites at construction time.
    pub fn total_tuples(&self) -> usize {
        self.total_tuples
    }

    /// The server-wide aggregate bandwidth meter (tagged frames of every
    /// query; per-query traffic lives in each [`SessionOutcome`]).
    pub fn meter(&self) -> &BandwidthMeter {
        &self.meter
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries_served: self.queries_served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_invalidated: self.cache_invalidated.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            cache_entries: self.cache.lock().unwrap_or_else(PoisonError::into_inner).len(),
            peak_concurrent: self.admission.peak(),
        }
    }

    /// Runs one DSUD query through the session layer.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::run_dsud`].
    pub fn run_dsud(
        &self,
        config: &QueryConfig,
        want_report: bool,
    ) -> Result<SessionOutcome, Error> {
        self.run(Algo::Dsud, config, want_report)
    }

    /// Runs one e-DSUD query through the session layer.
    ///
    /// # Errors
    ///
    /// Same as [`Cluster::run_edsud`].
    pub fn run_edsud(
        &self,
        config: &QueryConfig,
        want_report: bool,
    ) -> Result<SessionOutcome, Error> {
        self.run(Algo::Edsud, config, want_report)
    }

    fn run(
        &self,
        algo: Algo,
        config: &QueryConfig,
        want_report: bool,
    ) -> Result<SessionOutcome, Error> {
        // Validate before taking a queue slot so malformed queries cannot
        // stall well-formed ones behind them.
        let mask = config.resolve_mask(self.dims)?;
        let query_id = self.next_query.fetch_add(1, Ordering::Relaxed);

        let wait_us = self.admission.acquire(1);
        let _slot = AdmissionGuard { admission: &self.admission, width: 1 };

        let recorder = if want_report { Recorder::enabled() } else { Recorder::disabled() };
        recorder.add(Counter::AdmissionWaitUs, wait_us);

        let key = CacheKey {
            algorithm: algo.name(),
            q_bits: config.q.to_bits(),
            mask_bits: mask.bits(),
            limit: config.limit,
            bound: config.bound,
            synopsis: config.synopsis,
            failure: config.failure,
        };

        if let Some(cached) = self.cache.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.queries_served.fetch_add(1, Ordering::Relaxed);
            recorder.incr(Counter::CacheHits);
            let mut progress = ProgressLog::new();
            for e in &cached.skyline {
                recorder.progressive(e.tuple.id().site.0, e.tuple.id().seq, e.probability, 0);
                progress.push(e.tuple.id(), e.probability, 0, Duration::ZERO);
            }
            let outcome = QueryOutcome {
                skyline: cached.skyline,
                progress,
                traffic: MeterSnapshot::default(),
                stats: RunStats::default(),
                degraded: false,
                sites: Vec::new(),
            };
            let report = finish_report(&recorder, algo, query_id);
            return Ok(SessionOutcome {
                query_id,
                outcome,
                cache_hit: true,
                admission_wait_us: wait_us,
                report,
            });
        }

        // Fresh per-query meter: this query's traffic snapshot starts at
        // zero exactly like a one-shot run's, so `outcome.traffic` is
        // bit-identical to the same query executed on a fresh cluster.
        let query_meter = BandwidthMeter::with_recorder(recorder.clone());
        let mut links: Vec<Box<dyn Link>> = self
            .shared
            .iter()
            .map(|s| {
                Box::new(MuxLink::new(query_id, SharedLink::clone(s), query_meter.clone()))
                    as Box<dyn Link>
            })
            .collect();
        let result = match algo {
            Algo::Dsud => dsud::run_with_policy(
                &mut links,
                &query_meter,
                config.q,
                mask,
                config.limit,
                config.failure,
                config.batch,
                config.pipeline,
                config.wire,
            ),
            Algo::Edsud => edsud::run_with_synopses(
                &mut links,
                &query_meter,
                config.q,
                mask,
                config.bound,
                config.limit,
                config.synopsis,
                config.failure,
                config.batch,
                config.pipeline,
                config.wire,
            ),
        };
        // Clear the sites' parked cursor state for this query id whether
        // the run succeeded or not; the release is server bookkeeping, not
        // query traffic, so it bypasses the per-query meter (the shared
        // links still meter it into the server aggregate).
        drop(links);
        self.release_sites(query_id);
        let outcome = result?;

        self.queries_served.fetch_add(1, Ordering::Relaxed);
        // A degraded answer carries upper bounds, not the answer an
        // intact repeat would produce — never serve it from cache.
        if !outcome.degraded {
            self.cache.lock().unwrap_or_else(PoisonError::into_inner).insert(key, outcome.clone());
        }
        let report = finish_report(&recorder, algo, query_id);
        Ok(SessionOutcome {
            query_id,
            outcome,
            cache_hit: false,
            admission_wait_us: wait_us,
            report,
        })
    }

    /// Applies one update through the existing maintenance path and
    /// invalidates the result cache.
    ///
    /// The update drains the admission gate first (it acquires the full
    /// concurrent width, FIFO like any query), so it never interleaves
    /// with a running query's rounds, and every query admitted after it
    /// sees both the new tree state and an empty cache.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SiteFailed`] if the home site's link fails, or
    /// [`Error::InvalidArgument`] for an out-of-range home site.
    pub fn apply_update(&self, op: &UpdateOp) -> Result<(), Error> {
        let home = op.site() as usize;
        if home >= self.shared.len() {
            return Err(Error::InvalidArgument("update names a site outside the cluster"));
        }
        self.admission.acquire(self.admission.max);
        let _all = AdmissionGuard { admission: &self.admission, width: self.admission.max };

        let inject = match op {
            UpdateOp::Insert(t) => Message::InjectInsert(TupleMsg::new(t, 0.0)),
            UpdateOp::Delete(t) => Message::InjectDelete(TupleMsg::new(t, 0.0)),
        };
        // Same semantics as `Maintainer::apply_local_only`: the site's
        // tree changes; the maintenance notification (if any) is the
        // metered reply.
        self.shared[home]
            .lock()
            .call(inject)
            .map_err(|e| Error::SiteFailed { site: home as u32, source: e })?;

        let dropped = self.cache.lock().unwrap_or_else(PoisonError::into_inner).clear();
        self.cache_invalidated.fetch_add(dropped, Ordering::Relaxed);
        self.updates_applied.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn release_sites(&self, query_id: u64) {
        for shared in &self.shared {
            let release = Message::Tagged { query_id, inner: Box::new(Message::Release) };
            let _ = shared.lock().call(release);
        }
    }
}

/// Takes the per-query report (if recording) and stamps the schema-6
/// session fields the session layer owns. Transport / threads / batch /
/// pipeline stamps stay with the caller that knows them (the CLI), exactly
/// as on the one-shot path.
fn finish_report(recorder: &Recorder, algo: Algo, query_id: u64) -> Option<RunReport> {
    let mut report = recorder.report(algo.name())?;
    report.query_id = Some(query_id);
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_fifo_and_bounded() {
        let admission = Admission::new(2);
        admission.acquire(1);
        admission.acquire(1); // 2 running: at capacity
        let gate = std::sync::Arc::new(Admission::new(2));
        drop(admission);

        // Fill the gate, then race 8 more acquires; served order must be
        // ticket order and concurrency must never exceed the width.
        let order = std::sync::Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|s| {
            for i in 0..8u32 {
                let gate = std::sync::Arc::clone(&gate);
                let order = std::sync::Arc::clone(&order);
                s.spawn(move || {
                    gate.acquire(1);
                    order.lock().unwrap().push(i);
                    std::thread::sleep(Duration::from_millis(2));
                    gate.release(1);
                });
                // Stagger spawns so ticket order matches spawn order.
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        let served = order.lock().unwrap().clone();
        assert_eq!(served, (0..8).collect::<Vec<_>>());
        assert!(gate.peak() <= 2);
    }

    #[test]
    fn result_cache_evicts_fifo_and_clears() {
        let mut cache = ResultCache::new(2);
        let key = |q: u64| CacheKey {
            algorithm: "edsud",
            q_bits: q,
            mask_bits: 3,
            limit: None,
            bound: BoundMode::default(),
            synopsis: None,
            failure: FailurePolicy::default(),
        };
        let outcome = QueryOutcome {
            skyline: Vec::new(),
            progress: ProgressLog::new(),
            traffic: MeterSnapshot::default(),
            stats: RunStats::default(),
            degraded: false,
            sites: Vec::new(),
        };
        cache.insert(key(1), outcome.clone());
        cache.insert(key(2), outcome.clone());
        cache.insert(key(3), outcome.clone()); // evicts key(1)
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(1)).is_none());
        assert!(cache.get(&key(2)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.clear(), 2);
        assert!(cache.get(&key(2)).is_none());

        let mut disabled = ResultCache::new(0);
        disabled.insert(key(1), outcome);
        assert_eq!(disabled.len(), 0);
    }
}
