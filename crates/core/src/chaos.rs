//! Deterministic chaos soak: served queries under a seeded fault plan.
//!
//! The harness answers one question the unit tests cannot: does the whole
//! recovery lifecycle — seeded link faults ([`dsud_net::FaultPlan`]),
//! per-query degradation, heartbeat-driven quarantine, probation resync,
//! and rejoin ([`crate::session`] module docs) — compose into the paper's
//! exact-answer guarantee once the cluster heals?
//!
//! [`soak`] runs the same deterministic query/update mix against two
//! [`SessionServer`]s over identical data: a clean *reference* deployment
//! and a *chaos* deployment whose links are wrapped in seeded
//! [`dsud_net::ChaosLink`]s ([`Cluster::with_transport_chaos`]). The
//! invariants it checks, reported in a [`ChaosReport`]:
//!
//! * **no panics** — every query returns a value (faults become degraded
//!   or cancelled outcomes, never crashes);
//! * **exact or stamped** — every outcome not stamped `degraded` or
//!   `cancelled` is bit-identical to the reference answer (skyline ids,
//!   probability bits, progress order — transmitted counts are excluded
//!   on purpose: retries legitimately resend frames);
//! * **convergence** — after the fault windows pass and heartbeats walk
//!   every site back to Active, queries are exact again.
//!
//! Everything derives from the `u64` seed, so a failing seed replays
//! exactly — on any transport, any wire format, any pool size.

use serde::Serialize;

use dsud_uncertain::{Probability, TupleId, UncertainTuple};

use dsud_net::FaultPlan;

use crate::update::UpdateOp;
use crate::{
    Cluster, Error, FailurePolicy, LinkConfig, QueryConfig, QueryOutcome, Recorder, SessionOptions,
    SessionServer, SiteState, Transport, WireFormat,
};

/// Knobs for one chaos soak. Everything is deterministic in `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosOptions {
    /// Seed for the per-site fault plans and the update workload.
    pub seed: u64,
    /// Served queries in the faulted phase of the soak.
    pub queries: usize,
    /// Apply one update every this-many queries (0 disables updates).
    pub update_every: usize,
    /// Transport under test (the fault plan replays identically on all).
    pub transport: Transport,
    /// Wire layout for bulk frames.
    pub wire: WireFormat,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            seed: 42,
            queries: 12,
            update_every: 3,
            transport: Transport::Inline,
            wire: WireFormat::Legacy,
        }
    }
}

/// What one soak observed. `mismatches == 0 && recovered` is the pass
/// condition; the rest is for the curious operator.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ChaosReport {
    /// The seed that produced this run (replay with the same seed).
    pub seed: u64,
    /// Queries served during the faulted phase.
    pub queries: u64,
    /// Outcomes bit-identical to the reference and not stamped.
    pub exact: u64,
    /// Outcomes stamped `degraded`.
    pub degraded: u64,
    /// Outcomes stamped `cancelled` (deadline exercise).
    pub cancelled: u64,
    /// Non-stamped outcomes that differed from the reference — must be 0.
    pub mismatches: u64,
    /// Sites quarantined by heartbeats over the whole soak.
    pub quarantines: u64,
    /// Heartbeat probes that went unanswered.
    pub heartbeat_misses: u64,
    /// Deferred updates replayed at rejoin.
    pub resync_ops: u64,
    /// Sites promoted back to Active.
    pub rejoins: u64,
    /// Whether the post-heal verification queries all came back exact.
    pub recovered: bool,
}

/// Skyline + progress identity, excluding transmitted counts (retries
/// resend frames without changing the answer).
fn fingerprint(outcome: &QueryOutcome) -> (Vec<(TupleId, u64)>, Vec<(TupleId, u64)>) {
    (
        outcome.skyline.iter().map(|e| (e.tuple.id(), e.probability.to_bits())).collect(),
        outcome.progress.events().iter().map(|e| (e.id, e.probability.to_bits())).collect(),
    )
}

/// The deterministic query mix: thresholds, algorithms, batch/pipeline
/// schedules all keyed on the query index.
fn config_at(i: usize, wire: WireFormat) -> (QueryConfig, bool) {
    let q = [0.25, 0.3, 0.35, 0.4][i % 4];
    let cfg = QueryConfig::new(q)
        .expect("soak thresholds are valid")
        .failure_policy(FailurePolicy::Degrade)
        .wire_format(wire);
    let cfg = if i % 3 == 1 { cfg.batch_size(crate::BatchSize::Fixed(4)) } else { cfg };
    let edsud = i % 2 == 0;
    (cfg, edsud)
}

/// Synthetic spike tuple `k`, homed round-robin across the sites.
fn spike_at(k: usize, seed: u64, sites: usize, dims: usize) -> UncertainTuple {
    let mix = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(k as u64 * 7919);
    let home = (k % sites) as u32;
    let values: Vec<f64> =
        (0..dims).map(|d| 0.2 + 0.6 * (((mix >> (8 * (d % 8))) & 0xFF) as f64) / 255.0).collect();
    let prob = Probability::new(0.4).expect("valid probability");
    UncertainTuple::new(TupleId::new(home, 1_000_000 + k as u64), values, prob)
        .expect("soak tuples are well-formed")
}

/// The deterministic update workload: even steps insert a fresh spike
/// tuple, odd steps delete the one the previous step inserted.
fn update_at(k: usize, seed: u64, sites: usize, dims: usize) -> UpdateOp {
    if k % 2 == 0 {
        UpdateOp::Insert(spike_at(k, seed, sites, dims))
    } else {
        UpdateOp::Delete(spike_at(k - 1, seed, sites, dims))
    }
}

fn serve(server: &SessionServer, cfg: &QueryConfig, edsud: bool) -> Result<QueryOutcome, Error> {
    let outcome =
        if edsud { server.run_edsud(cfg, false)? } else { server.run_dsud(cfg, false)? };
    Ok(outcome.outcome)
}

/// The last attempt ordinal any of the cluster's seeded windows covers —
/// a pure function of the seed, used to bound the probe-driven phases.
fn last_fault_attempt(seed: u64, sites: usize) -> u64 {
    (0..sites as u32)
        .flat_map(|s| FaultPlan::seeded(seed, s).windows().to_vec())
        .map(|w| w.start + w.len)
        .max()
        .unwrap_or(0)
}

/// Heartbeats the chaos server until every site is Active again (bounded;
/// each sweep advances the per-link fault schedules, so finite fault
/// plans always drain).
fn heal(server: &SessionServer, max_sweeps: usize) -> bool {
    for _ in 0..max_sweeps {
        if server.site_states().iter().all(|s| matches!(s, SiteState::Active)) {
            return true;
        }
        server.heartbeat();
    }
    server.site_states().iter().all(|s| matches!(s, SiteState::Active))
}

/// Runs the full soak over the given partitioned data (site `i` must hold
/// tuples labelled `TupleId { site: i, .. }`).
///
/// # Errors
///
/// Propagates cluster construction failures and reference-run failures;
/// faulted-run errors surface only if a query fails outright under
/// [`FailurePolicy::Degrade`], which the harness treats as a bug.
pub fn soak(
    dims: usize,
    sites: Vec<Vec<UncertainTuple>>,
    opts: &ChaosOptions,
) -> Result<ChaosReport, Error> {
    let site_count = sites.len().max(1);
    // Reference: clean inline deployment (bit-identity is
    // transport-invariant, pinned by the serve_determinism tests).
    let reference =
        SessionServer::new(Cluster::local(dims, sites.clone())?, SessionOptions::default());
    // Chaos deployment: seeded faults under the retry layer, an automatic
    // heartbeat after every served query, and hair-trigger lifecycle
    // thresholds so the soak exercises quarantine and rejoin quickly.
    let chaos_cluster = Cluster::with_transport_chaos(
        dims,
        sites,
        Default::default(),
        Recorder::default(),
        opts.transport,
        LinkConfig::default(),
        opts.seed,
    )?;
    let server = SessionServer::new(
        chaos_cluster,
        SessionOptions {
            heartbeat_every: 1,
            miss_threshold: 1,
            probation_probes: 1,
            ..SessionOptions::default()
        },
    );

    // Walk heartbeat probes into the seeded windows until one quarantines
    // a site (probes advance one attempt ordinal at a time, so a hard
    // window longer than the retry budget is guaranteed to swallow a whole
    // probe), bounded by the last scheduled fault. Seeds whose plans never
    // defeat the retry budget simply drain here and soak fault-free —
    // `last_fault_attempt` makes the bound pure in the seed. Stopping at
    // the first quarantine deliberately leaves other sites' windows
    // pending: the soak below absorbs them as degraded outcomes (queries)
    // or quarantine-and-defer (updates), never as errors.
    let last_fault = last_fault_attempt(opts.seed, site_count);
    for _ in 0..last_fault {
        if !server.site_states().iter().all(|s| matches!(s, SiteState::Active)) {
            break;
        }
        server.heartbeat();
    }

    let mut report =
        ChaosReport { seed: opts.seed, queries: opts.queries as u64, ..ChaosReport::default() };
    let mut updates_applied = 0usize;
    for i in 0..opts.queries {
        if opts.update_every > 0 && i > 0 && i % opts.update_every == 0 {
            let op = update_at(updates_applied, opts.seed, site_count, dims);
            // The reference applies immediately. The chaos server may
            // defer the op behind a quarantine — or, when the inject
            // itself defeats the retry budget on a still-Active home site
            // (a seeded window the pre-soak probes never reached), it
            // quarantines the site and defers just the same. Either way
            // the op replays at rejoin and apply_update reports success,
            // so a fault here degrades later outcomes instead of aborting
            // the soak.
            reference.apply_update(&op)?;
            server.apply_update(&op)?;
            updates_applied += 1;
        }
        let (cfg, edsud) = config_at(i, opts.wire);
        let want = fingerprint(&serve(&reference, &cfg, edsud)?);
        let got = serve(&server, &cfg, edsud)?;
        if got.cancelled {
            report.cancelled += 1;
        } else if got.degraded {
            report.degraded += 1;
        } else if fingerprint(&got) == want {
            report.exact += 1;
        } else {
            report.mismatches += 1;
        }
    }

    // Deadline exercise: a zero-millisecond deadline cancels at the first
    // round boundary, cleanly and deterministically.
    let (cfg, edsud) = config_at(0, opts.wire);
    let cancelled = serve(&server, &cfg.deadline(0), edsud)?;
    if cancelled.cancelled {
        report.cancelled += 1;
    } else {
        report.mismatches += 1;
    }

    // Heal: walk every site back to Active, then verify convergence. A
    // verification query can still trip a not-yet-drained fault window
    // (degrading itself and re-quarantining the site), so retry the whole
    // heal-and-verify cycle a bounded number of times.
    let mut recovered = false;
    for _ in 0..16 {
        if !heal(&server, 64) {
            continue;
        }
        let mut all_exact = true;
        for i in 0..4 {
            let (cfg, edsud) = config_at(i, opts.wire);
            let want = fingerprint(&serve(&reference, &cfg, edsud)?);
            let got = serve(&server, &cfg, edsud)?;
            if got.degraded || got.cancelled || fingerprint(&got) != want {
                all_exact = false;
                break;
            }
        }
        if all_exact {
            recovered = true;
            break;
        }
    }
    report.recovered = recovered;

    let stats = server.stats();
    report.heartbeat_misses = stats.heartbeat_misses;
    report.resync_ops = stats.resync_ops;
    report.rejoins = stats.rejoins;
    report.quarantines = stats.quarantines;
    Ok(report)
}
