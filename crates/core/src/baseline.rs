//! The ship-everything baseline (paper Section 3.2) and the bandwidth
//! ceiling used by the evaluation.
//!
//! The baseline asks every site to transmit its entire uncertain database
//! to the server, which then answers the query centrally — correct,
//! non-progressive, and maximally expensive: exactly `|D|` tuples of
//! bandwidth. The paper uses it only as a motivation; its experiments plot
//! DSUD (as baseline) against e-DSUD and against the *ceiling*, the
//! minimum conceivable bandwidth computed from the answer size.

use std::time::Instant;

use dsud_net::{BandwidthMeter, Message, TupleMsg};
use dsud_uncertain::{
    probabilistic_skyline, SkylineEntry, SubspaceMask, UncertainDb, UncertainTuple,
};

use crate::{Error, ProgressLog, QueryOutcome, RunStats};

/// Runs the centralized baseline: every tuple crosses the network once,
/// then the global skyline is computed at the server via Eq. (3).
///
/// Traffic is recorded on `meter` as one upload per tuple, mirroring what a
/// real ship-everything deployment would send.
///
/// # Errors
///
/// Returns [`Error::InvalidThreshold`] for a bad `q`,
/// [`Error::Subspace`] for a mask outside the data space, or
/// [`Error::DimensionMismatch`] for malformed site data.
pub fn run(
    sites: &[Vec<UncertainTuple>],
    dims: usize,
    q: f64,
    mask: SubspaceMask,
    meter: &BandwidthMeter,
) -> Result<QueryOutcome, Error> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(Error::InvalidThreshold(q));
    }
    mask.validate_for(dims)?;
    let start_traffic = meter.snapshot();
    let started = Instant::now();

    let mut union = UncertainDb::new(dims)?;
    for site in sites {
        for t in site {
            meter.record(&Message::Upload(Some(TupleMsg::new(t, 0.0))));
            union.insert(t.clone()).map_err(|e| match e {
                dsud_uncertain::Error::DimensionMismatch { expected, actual } => {
                    Error::DimensionMismatch { expected, actual }
                }
                other => Error::Subspace(other),
            })?;
        }
    }

    let skyline: Vec<SkylineEntry> = probabilistic_skyline(&union, q, mask)?;

    // The baseline is the anti-progressive extreme: every result appears
    // only after the full transfer and computation.
    let mut progress = ProgressLog::new();
    let transmitted = meter.snapshot().since(&start_traffic).tuples_transmitted();
    for entry in &skyline {
        progress.push(entry.tuple.id(), entry.probability, transmitted, started.elapsed());
    }

    Ok(QueryOutcome {
        skyline,
        progress,
        traffic: meter.snapshot().since(&start_traffic),
        stats: RunStats::default(),
        degraded: false,
        cancelled: false,
        sites: Vec::new(),
        plan: None,
    })
}

/// The evaluation's *Ceiling* (paper Section 7.1): the minimum number of
/// tuples any algorithm in this framework must transmit — each of the
/// `answer_size` qualified tuples is uploaded once and must visit the other
/// `m − 1` sites to have its global probability confirmed.
pub fn ceiling(answer_size: usize, m: usize) -> u64 {
    (answer_size as u64) * (m as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{Probability, TupleId};

    fn tuple(site: u32, seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(site, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    #[test]
    fn transmits_everything_once() {
        let sites = vec![
            vec![tuple(0, 0, vec![1.0, 9.0], 0.9), tuple(0, 1, vec![5.0, 5.0], 0.9)],
            vec![tuple(1, 0, vec![9.0, 1.0], 0.9)],
        ];
        let meter = BandwidthMeter::new();
        let out = run(&sites, 2, 0.3, SubspaceMask::full(2).unwrap(), &meter).unwrap();
        assert_eq!(out.tuples_transmitted(), 3);
        assert_eq!(out.skyline.len(), 3);
        assert_eq!(out.progress.len(), 3);
    }

    #[test]
    fn matches_centralized_reference() {
        let sites = vec![
            vec![tuple(0, 0, vec![1.0, 5.0], 0.5), tuple(0, 1, vec![2.0, 6.0], 0.8)],
            vec![tuple(1, 0, vec![1.5, 4.0], 0.6)],
        ];
        let meter = BandwidthMeter::new();
        let mask = SubspaceMask::full(2).unwrap();
        let out = run(&sites, 2, 0.3, mask, &meter).unwrap();
        let union =
            UncertainDb::from_tuples(2, sites.iter().flatten().cloned().collect::<Vec<_>>())
                .unwrap();
        let expected = probabilistic_skyline(&union, 0.3, mask).unwrap();
        assert_eq!(out.skyline, expected);
    }

    #[test]
    fn ceiling_is_answer_times_sites() {
        assert_eq!(ceiling(10, 60), 600);
        assert_eq!(ceiling(0, 60), 0);
    }

    #[test]
    fn rejects_bad_parameters() {
        let meter = BandwidthMeter::new();
        let mask = SubspaceMask::full(2).unwrap();
        assert!(run(&[], 2, 0.0, mask, &meter).is_err());
        let bad_mask = SubspaceMask::from_dims(&[7]).unwrap();
        assert!(run(&[], 2, 0.3, bad_mask, &meter).is_err());
    }
}
