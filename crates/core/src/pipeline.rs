//! In-flight refill bookkeeping for pipelined rounds.
//!
//! With `--pipeline` above one, the coordinators put `RequestNext` refills
//! on the wire *before* the work they overlap (a survival scatter, an
//! expunge sweep) and redeem the tickets afterwards. [`InflightRefill`]
//! carries one such outstanding request: the site it addresses, the ticket
//! (or the send-side failure, surfaced at completion exactly like a failed
//! `call`), and the send timestamp used to charge
//! [`Counter::RefillOverlapUs`].
//!
//! The schedule never needs more than two outstanding frames per link — a
//! pending feedback flush plus the refill behind it — so every window of
//! two or more (including `auto`) executes the identical overlapped
//! schedule, and completions are always folded in the order the requests
//! were sent. That is what keeps pipelined runs bit-identical to
//! `--pipeline 1`: per-link message order, fold order, and every piece of
//! server-side state evolve exactly as in the sequential schedule; only
//! the wire time overlaps. Refills ride a [`Fanout`], so under a tree
//! topology the outstanding request shares the home group's aggregator
//! link with the sibling broadcasts that overlap it — the fanout's
//! per-link FIFO keeps each op paired with its own reply.

use std::time::Instant;

use dsud_net::{Fanout, LinkError, Message, OpTicket};
use dsud_obs::{Counter, Recorder};

/// One `RequestNext` put on the wire ahead of the work it overlaps.
pub(crate) struct InflightRefill {
    site: usize,
    sent: Result<OpTicket, LinkError>,
    issued: Instant,
}

impl InflightRefill {
    /// Puts `RequestNext` on `site`'s route. A send-side failure is held
    /// in the slot and becomes the completion result.
    pub(crate) fn send(fan: &mut Fanout<'_>, site: usize) -> Self {
        InflightRefill { site, sent: fan.send(site, Message::RequestNext), issued: Instant::now() }
    }

    /// Redeems the ticket, charging the elapsed flight time to
    /// [`Counter::RefillOverlapUs`].
    pub(crate) fn complete(
        self,
        fan: &mut Fanout<'_>,
        rec: &Recorder,
    ) -> Result<Message, LinkError> {
        rec.add(Counter::RefillOverlapUs, self.issued.elapsed().as_micros() as u64);
        self.sent.and_then(|ticket| fan.complete(self.site, ticket))
    }
}
