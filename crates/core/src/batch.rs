//! Candidate batching for DSUD / e-DSUD rounds.
//!
//! A batched round draws up to `K` candidates from the priority queue and
//! delivers each site *one* coalesced [`Message::FeedbackBatch`] frame
//! instead of `K` separate feedback broadcasts, cutting the per-round
//! message count from `O(K·m)` to `O(m)`.
//!
//! # The flush-before-refill invariant
//!
//! Batching must not change a single bit of the answer: the sites' pruning
//! decisions depend on the order in which feedback and refill requests
//! arrive, so the ledger enforces the exact event order of the unbatched
//! run at every site. Before *any* `RequestNext` is sent to site `x`
//! (whether a draw refill or an e-DSUD expunge refill), `x` is first
//! delivered its pending sub-batch — every candidate drawn since the last
//! delivery to `x`, excluding `x`'s own tuples — as one frame. The round
//! closes by delivering each site its remaining sub-batch in one parallel
//! wave ([`dsud_net::scatter`]). A site therefore observes precisely the
//! feedback-before-refill sequence it would under `--batch 1`, so refill
//! contents, per-site prune counters, and survival factors all match.
//!
//! Survival factors are collected into an `m × K` matrix and multiplied
//! in ascending site order — the same left-fold grouping as the unbatched
//! accumulation loop — so the reported probabilities are `f64`
//! bit-identical as well.

use dsud_net::{Fanout, LinkError, Message, OpTicket, TupleBlock, TupleMsg};
use dsud_obs::{Counter, Recorder};

use crate::degrade::FailureTracker;
use crate::{Error, RunStats, SiteOrder, WireFormat};

/// Ledger for one batched round: the drawn candidates, how much of the
/// batch each site has already seen, and the survival factors collected
/// so far.
pub(crate) struct BatchRound {
    cands: Vec<TupleMsg>,
    /// Per site: number of drawn candidates already delivered (an index
    /// into `cands`; the exclusion of the site's own tuples happens at
    /// delivery time).
    sent_upto: Vec<usize>,
    /// `survivals[x][j]` is site `x`'s survival factor for candidate `j`,
    /// `None` while undelivered, for the home site, or for a lost site.
    survivals: Vec<Vec<Option<f64>>>,
    /// The shared ascending fold order (see [`SiteOrder`]).
    order: SiteOrder,
    /// Wire layout for the coalesced feedback frames. Purely a transport
    /// choice: both layouts deliver the same tuples in the same order.
    wire: WireFormat,
}

impl BatchRound {
    pub(crate) fn new(sites: usize, budget: usize, wire: WireFormat) -> Self {
        BatchRound {
            cands: Vec::with_capacity(budget),
            sent_upto: vec![0; sites],
            survivals: vec![Vec::new(); sites],
            order: SiteOrder::new(sites),
            wire,
        }
    }

    /// The coalesced feedback frame for one site's pending sub-batch, in
    /// the round's wire layout.
    fn batch_frame(&self, msgs: Vec<TupleMsg>) -> Message {
        match self.wire {
            WireFormat::Legacy => Message::FeedbackBatch(msgs),
            WireFormat::Columnar => Message::FeedbackBatchC(TupleBlock::from_msgs(&msgs)),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.cands.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.cands.is_empty()
    }

    /// Records a drawn candidate. It becomes part of every site's pending
    /// sub-batch until delivered.
    pub(crate) fn push(&mut self, cand: TupleMsg) {
        self.cands.push(cand);
    }

    pub(crate) fn candidate(&self, j: usize) -> &TupleMsg {
        &self.cands[j]
    }

    /// The candidates site `x` has not seen yet (excluding its own), with
    /// their batch indices.
    fn pending_for(&self, x: usize) -> (Vec<TupleMsg>, Vec<usize>) {
        let mut msgs = Vec::new();
        let mut idxs = Vec::new();
        for (j, c) in self.cands.iter().enumerate().skip(self.sent_upto[x]) {
            if c.id.site.0 as usize != x {
                msgs.push(c.clone());
                idxs.push(j);
            }
        }
        (msgs, idxs)
    }

    /// Files a site's batched survival reply into the matrix (or
    /// quarantines the site, in which case its factors stay `None`).
    /// `idxs` must be the batch indices returned by the matching
    /// [`BatchRound::deliver_send`].
    pub(crate) fn absorb_reply(
        &mut self,
        x: usize,
        idxs: &[usize],
        reply: Result<Message, LinkError>,
        tracker: &mut FailureTracker,
        stats: &mut RunStats,
        rec: &Recorder,
    ) -> Result<(), Error> {
        if let Some((factors, pruned)) = tracker.survival_batch(x, reply, idxs.len())? {
            if self.survivals[x].len() < self.cands.len() {
                self.survivals[x].resize(self.cands.len(), None);
            }
            for (&j, s) in idxs.iter().zip(factors) {
                self.survivals[x][j] = Some(s);
            }
            stats.pruned_at_sites += pruned;
            rec.add(Counter::PrunedAtSites, pruned);
        }
        Ok(())
    }

    /// Flushes site `x`'s pending sub-batch as one frame. MUST be called
    /// immediately before any `RequestNext` to `x` — that is what
    /// preserves the unbatched feedback-before-refill event order.
    pub(crate) fn deliver(
        &mut self,
        fan: &mut Fanout<'_>,
        x: usize,
        tracker: &mut FailureTracker,
        stats: &mut RunStats,
        rec: &Recorder,
    ) -> Result<(), Error> {
        let (msgs, idxs) = self.pending_for(x);
        self.sent_upto[x] = self.cands.len();
        if msgs.is_empty() || !tracker.is_active(x) {
            return Ok(());
        }
        let frame = self.batch_frame(msgs);
        let reply = fan.call(x, frame);
        self.absorb_reply(x, &idxs, reply, tracker, stats, rec)
    }

    /// Split-phase [`BatchRound::deliver`]: puts site `x`'s pending
    /// sub-batch on the wire and returns the ticket (or send failure,
    /// surfaced at completion) with the batch indices the eventual reply
    /// covers. `None` when there is nothing to flush. The caller must
    /// redeem the ticket and feed the reply to
    /// [`BatchRound::absorb_reply`] — completing tickets in send order per
    /// link is what keeps the pipelined run's per-site event order
    /// identical to the sequential one.
    pub(crate) fn deliver_send(
        &mut self,
        fan: &mut Fanout<'_>,
        x: usize,
        tracker: &FailureTracker,
    ) -> Option<(Result<OpTicket, LinkError>, Vec<usize>)> {
        let (msgs, idxs) = self.pending_for(x);
        self.sent_upto[x] = self.cands.len();
        if msgs.is_empty() || !tracker.is_active(x) {
            return None;
        }
        let frame = self.batch_frame(msgs);
        Some((fan.send(x, frame), idxs))
    }

    /// Closes the round: every site with a non-empty pending sub-batch
    /// receives it as one frame, fanned out in a single parallel wave.
    pub(crate) fn deliver_all(
        &mut self,
        fan: &mut Fanout<'_>,
        tracker: &mut FailureTracker,
        stats: &mut RunStats,
        rec: &Recorder,
    ) -> Result<(), Error> {
        let mut requests = Vec::new();
        let mut idxs_by_site: Vec<Vec<usize>> = vec![Vec::new(); self.order.len()];
        for x in self.order.iter() {
            let (msgs, idxs) = self.pending_for(x);
            self.sent_upto[x] = self.cands.len();
            if msgs.is_empty() || !tracker.is_active(x) {
                continue;
            }
            idxs_by_site[x] = idxs;
            requests.push((x, self.batch_frame(msgs)));
        }
        for (x, reply) in self.order.verify(fan.scatter(requests)) {
            let idxs = std::mem::take(&mut idxs_by_site[x]);
            self.absorb_reply(x, &idxs, reply, tracker, stats, rec)?;
        }
        Ok(())
    }

    /// Exact global probability of candidate `j` (Lemma 1): its local
    /// probability times the survival factors in the shared
    /// [`SiteOrder`] ascending fold — the same multiplication order as the
    /// unbatched loop, hence bit-identical.
    pub(crate) fn global_probability(&self, j: usize) -> f64 {
        self.order.fold_survival(self.cands[j].local_prob, |x| {
            self.survivals[x].get(j).copied().flatten()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FailurePolicy;
    use dsud_net::{BandwidthMeter, Link, LocalLink};

    fn msg(site: u32, seq: u64, local_prob: f64) -> TupleMsg {
        TupleMsg {
            id: dsud_uncertain::TupleId::new(site, seq),
            values: vec![1.0, 1.0],
            prob: 0.5,
            local_prob,
        }
    }

    /// A site that echoes each probe's local probability as its survival
    /// factor and reports one prune per probe.
    fn echo_links(meter: &BandwidthMeter, sites: usize) -> Vec<Box<dyn Link>> {
        (0..sites)
            .map(|_| {
                let service = |m: Message| match m {
                    Message::FeedbackBatch(ts) => Message::SurvivalBatchReply {
                        survivals: ts.iter().map(|t| t.local_prob).collect(),
                        pruned: ts.len() as u64,
                    },
                    // Columnar requests are answered in kind.
                    Message::FeedbackBatchC(block) => Message::SurvivalBatchReplyC {
                        survivals: block.to_msgs().iter().map(|t| t.local_prob).collect(),
                        pruned: block.len() as u64,
                    },
                    _ => Message::Ack,
                };
                Box::new(LocalLink::new(service, meter.clone())) as _
            })
            .collect()
    }

    #[test]
    fn round_flushes_excluding_home_and_multiplies_in_site_order() {
        let meter = BandwidthMeter::new();
        let mut links = echo_links(&meter, 3);
        let mut fan = Fanout::flat(&mut links);
        let rec = Recorder::disabled();
        let mut tracker = FailureTracker::new(3, FailurePolicy::Strict, rec.clone());
        let mut stats = RunStats::default();

        let mut round = BatchRound::new(3, 2, WireFormat::Legacy);
        round.push(msg(0, 0, 0.9));
        // Flushing site 0 before its refill sends nothing: the only drawn
        // candidate is site 0's own.
        round.deliver(&mut fan, 0, &mut tracker, &mut stats, &rec).unwrap();
        round.push(msg(1, 0, 0.5));
        round.deliver_all(&mut fan, &mut tracker, &mut stats, &rec).unwrap();

        // Site 0 saw only candidate 1; sites 1 and 2 saw their pending
        // sub-batches in one frame each (site 1 excludes its own tuple).
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 3);
        assert_eq!(snap.feedback.tuples, 1 + 1 + 2);

        // candidate 0: 0.9 (local) * 0.9 (site 1) * 0.9 (site 2).
        assert_eq!(round.global_probability(0), 0.9 * 0.9 * 0.9);
        // candidate 1: 0.5 * 0.5 (site 0) * 0.5 (site 2).
        assert_eq!(round.global_probability(1), 0.5 * 0.5 * 0.5);
        assert_eq!(stats.pruned_at_sites, 4);
        assert_eq!(round.len(), 2);
        assert_eq!(round.candidate(1).local_prob, 0.5);
    }

    #[test]
    fn columnar_rounds_fold_identically_with_fewer_bytes_per_wide_batch() {
        // The same round driven over both wire layouts: tuple counts,
        // message counts, survival folds, and prune totals must match
        // exactly — only the byte column may differ.
        let run = |wire: WireFormat| {
            let meter = BandwidthMeter::new();
            let mut links = echo_links(&meter, 3);
            let mut fan = Fanout::flat(&mut links);
            let rec = Recorder::disabled();
            let mut tracker = FailureTracker::new(3, FailurePolicy::Strict, rec.clone());
            let mut stats = RunStats::default();
            // Wide enough that every frame clears the columnar layout's
            // ~6-row byte break-even (11-byte header premium vs 2 bytes
            // saved per row).
            let mut round = BatchRound::new(3, 24, wire);
            for j in 0..24 {
                round.push(msg(j % 3, j as u64, 0.05 + 0.03 * j as f64));
            }
            round.deliver(&mut fan, 2, &mut tracker, &mut stats, &rec).unwrap();
            round.deliver_all(&mut fan, &mut tracker, &mut stats, &rec).unwrap();
            let probs: Vec<f64> = (0..24).map(|j| round.global_probability(j)).collect();
            (probs, stats.pruned_at_sites, meter.snapshot())
        };
        let (legacy_probs, legacy_pruned, legacy_snap) = run(WireFormat::Legacy);
        let (col_probs, col_pruned, col_snap) = run(WireFormat::Columnar);
        assert_eq!(legacy_probs, col_probs);
        assert_eq!(legacy_pruned, col_pruned);
        assert_eq!(legacy_snap.feedback.messages, col_snap.feedback.messages);
        assert_eq!(legacy_snap.feedback.tuples, col_snap.feedback.tuples);
        assert!(
            col_snap.feedback.bytes < legacy_snap.feedback.bytes,
            "columnar {} must beat legacy {} on multi-row feedback frames",
            col_snap.feedback.bytes,
            legacy_snap.feedback.bytes
        );
    }

    #[test]
    fn redundant_deliveries_send_nothing() {
        let meter = BandwidthMeter::new();
        let mut links = echo_links(&meter, 2);
        let mut fan = Fanout::flat(&mut links);
        let rec = Recorder::disabled();
        let mut tracker = FailureTracker::new(2, FailurePolicy::Strict, rec.clone());
        let mut stats = RunStats::default();

        let mut round = BatchRound::new(2, 4, WireFormat::Legacy);
        assert!(round.is_empty());
        round.push(msg(0, 0, 0.8));
        round.deliver(&mut fan, 1, &mut tracker, &mut stats, &rec).unwrap();
        // Already flushed: a second flush and the closing wave are no-ops.
        round.deliver(&mut fan, 1, &mut tracker, &mut stats, &rec).unwrap();
        round.deliver_all(&mut fan, &mut tracker, &mut stats, &rec).unwrap();
        assert_eq!(meter.snapshot().feedback.messages, 1);
    }
}
