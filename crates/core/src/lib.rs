//! DSUD and e-DSUD: distributed skyline queries over uncertain data.
//!
//! This crate is the primary contribution of the reproduced paper
//! (Ding & Jin, ICDCS 2010 / TKDE 2011): communication-efficient,
//! progressive algorithms that compute, at a central server `H`, every
//! tuple whose *global skyline probability* across `m` distributed
//! uncertain databases is at least a threshold `q` — while transmitting as
//! few tuples as possible.
//!
//! # The algorithms
//!
//! * [`baseline`] — ship every tuple to `H` and run a centralized
//!   probabilistic skyline (Section 3.2). Correct, maximally expensive.
//! * [`dsud`] — the DSUD iterative protocol (Section 5.1): each site
//!   uploads its local-skyline tuples in descending local-probability
//!   order; `H` keeps one representative per site in a priority queue `L`,
//!   broadcasts the head to the other sites to assemble its exact global
//!   probability (Lemma 1), and the broadcast doubles as *feedback* that
//!   prunes hopeless candidates at the sites.
//! * [`edsud`] — the enhanced e-DSUD (Section 5.2): `H` ranks candidates
//!   by an upper bound on their *global* probability (Observation 2 /
//!   Corollary 2) instead of their local probability, broadcasting the most
//!   dominant tuple first and expunging candidates whose bound already
//!   fails `q` without spending any bandwidth on them.
//! * [`update`] — continuous maintenance under inserts/deletes
//!   (Section 5.4): a naive re-run strategy and an incremental strategy
//!   built on replicated skylines and dominance-region re-evaluation.
//! * [`estimate`] — the skyline-cardinality and feedback-cost estimates of
//!   Eqs. (6)–(8) that motivate feedback selection.
//!
//! Every run reports the paper's two metrics: bandwidth (tuples
//! transmitted, via [`dsud_net::BandwidthMeter`]) and progressiveness (a
//! [`ProgressLog`] of when each result was emitted).
//!
//! # Quickstart
//!
//! ```
//! use dsud_core::{Cluster, QueryConfig};
//! use dsud_data::WorkloadSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sites = WorkloadSpec::new(2_000, 2).seed(7).generate_partitioned(8)?;
//! let mut cluster = Cluster::local(2, sites)?;
//! let outcome = cluster.run_edsud(&QueryConfig::new(0.3)?)?;
//! println!(
//!     "{} skyline tuples for {} transmitted",
//!     outcome.skyline.len(),
//!     outcome.traffic.tuples_transmitted()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
mod batch;
pub mod chaos;
mod cluster;
mod config;
pub mod degrade;
pub mod dsud;
pub mod edsud;
mod error;
pub mod estimate;
mod pipeline;
pub mod planner;
mod progress;
pub mod session;
mod site;
mod site_order;
pub mod synopsis;
pub mod update;

pub use cluster::{Cluster, QueryOutcome, RunStats, Transport};
pub use config::{
    BatchSize, BoundMode, FailurePolicy, PipelineDepth, PlanMode, QueryConfig, SiteOptions,
    Topology, UpdatePolicy, WireFormat,
};
pub use degrade::{QuarantineReason, SiteState, SiteStatus};
pub use error::Error;
pub use planner::PlanSummary;
pub use progress::{ProgressEvent, ProgressLog};
pub use session::{HeartbeatSummary, SessionOptions, SessionOutcome, SessionServer, SessionStats};
pub use site::LocalSite;
pub use site_order::SiteOrder;

// Re-export the workspace API surface so `dsud_core` works as a facade.
pub use dsud_net::{
    BandwidthMeter, FaultKind, FaultPlan, FaultWindow, HealthSnapshot, LatencyModel, Link,
    LinkConfig, LinkError, MeterSnapshot, RetryLink, Ticket,
};
pub use dsud_obs::{
    Counter, CounterSnapshot, PhaseTotal, ProgressSample, Recorder, RunReport, SpanRecord,
    SCHEMA_VERSION,
};
pub use dsud_uncertain::{
    certain_skyline, dominates, dominates_in, probabilistic_skyline, Probability, SkylineEntry,
    SubspaceMask, TupleId, UncertainDb, UncertainTuple,
};
