//! The enhanced e-DSUD algorithm (paper Sections 5.2–5.3).
//!
//! DSUD ranks candidates by *local* skyline probability, which is usually a
//! very loose stand-in for the global one: it broadcasts many tuples that
//! were never going to qualify. e-DSUD instead maintains, for every queued
//! candidate `s`, an upper bound `P*_gsky(s)` on its global skyline
//! probability assembled from free information already at the server:
//!
//! * for every *broadcast* tuple `t` from another site that dominates `s`,
//!   the factor `(1 − P(t))` (these are confirmed dominators of `s`);
//! * for every *in-queue* representative `t'` of another site `x` that
//!   dominates `s`, the Observation-2 factor
//!   `P_sky(t', D_x)/P(t') × (1 − P(t'))` — the dominators of `t'` in
//!   `D_x` transitively dominate `s`, and so does `t'` itself.
//!
//! Per site the tighter of the two applicable factors is used (both are
//! valid upper bounds on `s`'s survival in that site, and they may overlap,
//! so they must not be multiplied together). This reproduces the paper's
//! worked example exactly: `P*((6.4,7.5)) = 0.8 × (0.65/0.7) × 0.3 ≈ 0.22`
//! while `(6,6)` is queued (Table 2b) and `0.8 × 0.3 = 0.24` after it has
//! been broadcast (Table 2f).
//!
//! Candidates whose bound already fails `q` are *expunged* without any
//! broadcast — the entire bandwidth saving of e-DSUD over DSUD — and their
//! home site immediately supplies its next representative.

use std::collections::HashMap;
use std::time::Instant;

use dsud_net::{BandwidthMeter, Fanout, Link, Message, TupleMsg};
use dsud_obs::Counter;
use dsud_uncertain::{dominates_in, SkylineEntry, SubspaceMask};

use crate::batch::BatchRound;
use crate::degrade::FailureTracker;
use crate::pipeline::InflightRefill;
use crate::synopsis::SynopsisBound;
use crate::{
    planner, BatchSize, BoundMode, Error, FailurePolicy, PipelineDepth, PlanMode, ProgressLog,
    QueryOutcome, RunStats, SiteOrder, WireFormat,
};

/// A queued candidate with its per-site broadcast discounts.
#[derive(Debug, Clone)]
struct Candidate {
    msg: TupleMsg,
    /// For each other site id: `∏ (1 − P(t))` over already-broadcast tuples
    /// `t` from that site that dominate this candidate.
    broadcast_discount: HashMap<u32, f64>,
}

impl Candidate {
    fn new(msg: TupleMsg, history: &[TupleMsg], mask: SubspaceMask) -> Self {
        let mut c = Candidate { msg, broadcast_discount: HashMap::new() };
        for h in history {
            c.absorb_broadcast(h, mask);
        }
        c
    }

    /// Accounts for a broadcast tuple: if it is a foreign dominator, its
    /// non-occurrence probability discounts this candidate forever.
    fn absorb_broadcast(&mut self, t: &TupleMsg, mask: SubspaceMask) {
        if t.id.site != self.msg.id.site && dominates_in(&t.values, &self.msg.values, mask) {
            *self.broadcast_discount.entry(t.id.site.0).or_insert(1.0) *= 1.0 - t.prob;
        }
    }

    /// The upper bound `P*_gsky` (Corollary 2) of this candidate given the
    /// current queue contents, optionally tightened by per-site synopses.
    fn bound(
        &self,
        queue: &[Candidate],
        mask: SubspaceMask,
        mode: BoundMode,
        synopses: &HashMap<u32, SynopsisBound>,
    ) -> f64 {
        let mut per_site = self.broadcast_discount.clone();
        if mode == BoundMode::Paper {
            for other in queue {
                if other.msg.id.site == self.msg.id.site
                    || !dominates_in(&other.msg.values, &self.msg.values, mask)
                {
                    continue;
                }
                let site = other.msg.id.site.0;
                let simple = 1.0 - other.msg.prob;
                let broadcast = per_site.get(&site).copied().unwrap_or(1.0);
                // Two valid per-site bounds that may double-count each
                // other's factors — take the tighter, never the product:
                // (a) confirmed broadcast dominators plus the in-queue
                //     representative itself (all distinct tuples);
                // (b) the Observation-2 transitive bound through the
                //     in-queue representative.
                let with_simple = broadcast * simple;
                let obs2 = (other.msg.local_prob / other.msg.prob) * simple;
                per_site.insert(site, with_simple.min(obs2));
            }
        }
        // Synopsis factors: per site, another valid upper bound on the
        // candidate's survival there — again min-combined, never
        // multiplied, to avoid double counting.
        for (&site, syn) in synopses {
            if site == self.msg.id.site.0 {
                continue;
            }
            let factor = syn.survival_bound(&self.msg.values, mask);
            let current = per_site.get(&site).copied().unwrap_or(1.0);
            per_site.insert(site, current.min(factor));
        }
        self.msg.local_prob * per_site.values().product::<f64>()
    }
}

/// Runs e-DSUD over the given site links under the strict failure policy.
///
/// # Errors
///
/// Returns [`Error::InvalidThreshold`], [`Error::ProtocolViolation`], or
/// [`Error::SiteFailed`].
pub fn run(
    links: &mut [Box<dyn Link>],
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    mode: BoundMode,
    limit: Option<usize>,
) -> Result<QueryOutcome, Error> {
    run_with_synopses(
        links,
        meter,
        q,
        mask,
        mode,
        limit,
        None,
        FailurePolicy::Strict,
        BatchSize::default(),
        PipelineDepth::default(),
        WireFormat::default(),
        None,
    )
}

/// [`run`] with optional per-site grid synopses of the given resolution
/// (requested, and charged, at query start) folded into the candidate
/// bounds — the Section 5.2 synopsis trade-off made measurable — and an
/// explicit site-failure policy. Under [`FailurePolicy::Degrade`] a site
/// whose transport stays broken after retries is quarantined and the query
/// completes over the survivors with [`QueryOutcome::degraded`] set (see
/// [`crate::degrade`] for the upper-bound caveat).
///
/// With an overlapped [`PipelineDepth`] the expunge sweep puts every
/// doomed candidate's refill on the wire in one group before redeeming any
/// ticket — the sites extract their replacements in parallel — and the
/// selection round's refill overlaps the survival scatter, as in
/// [`crate::dsud::run_with_policy`]. Completions fold in send order, so
/// healthy runs stay bit-identical to `PipelineDepth::Fixed(1)` (see the
/// crate-private `pipeline` module).
///
/// # Errors
///
/// Same as [`run`]; [`Error::SiteFailed`] only under
/// [`FailurePolicy::Strict`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_synopses(
    links: &mut [Box<dyn Link>],
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    mode: BoundMode,
    limit: Option<usize>,
    synopsis_resolution: Option<u16>,
    policy: FailurePolicy,
    batch: BatchSize,
    pipeline: PipelineDepth,
    wire: WireFormat,
    deadline_ms: Option<u64>,
) -> Result<QueryOutcome, Error> {
    let mut fan = Fanout::flat(links);
    run_on(
        &mut fan,
        meter,
        q,
        mask,
        mode,
        limit,
        synopsis_resolution,
        policy,
        batch,
        pipeline,
        wire,
        deadline_ms,
        PlanMode::Static,
    )
}

/// [`run_with_synopses`] over an arbitrary [`Fanout`] — the actual
/// coordinator. As in [`crate::dsud`], a flat fan-out reproduces the
/// pre-topology per-link traffic byte for byte, and a tree fan-out routes
/// the same per-site sequences through aggregator links with replies in
/// the same ascending site order, so the answer is bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_on(
    fan: &mut Fanout<'_>,
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    mode: BoundMode,
    limit: Option<usize>,
    synopsis_resolution: Option<u16>,
    policy: FailurePolicy,
    batch: BatchSize,
    pipeline: PipelineDepth,
    wire: WireFormat,
    deadline_ms: Option<u64>,
    plan: PlanMode,
) -> Result<QueryOutcome, Error> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(Error::InvalidThreshold(q));
    }
    let start_traffic = meter.snapshot();
    let started = Instant::now();
    let deadline = deadline_ms.map(std::time::Duration::from_millis);
    let mut cancelled = false;
    let rec = meter.recorder().clone();
    let query_span = rec.span("query:edsud");
    let overlap = pipeline.overlapped();
    rec.add(Counter::PipelineDepth, pipeline.window() as u64);
    let order = SiteOrder::new(fan.len());
    let mut tracker = FailureTracker::new(order.len(), policy, rec.clone());
    let mut stats = RunStats::default();
    let mut progress = ProgressLog::new();
    let mut skyline: Vec<SkylineEntry> = Vec::new();
    let mut history: Vec<TupleMsg> = Vec::new();

    let mut queue: Vec<Candidate> = Vec::with_capacity(order.len());
    {
        let _span = rec.span("to-server:start");
        for (x, reply) in order.verify(fan.broadcast(|_| true, &Message::Start { q, mask })) {
            if let Some(t) = tracker.upload(x, reply)? {
                queue.push(Candidate::new(t, &history, mask));
            }
        }
    }

    // Optional synopsis phase: every site ships its grid, paid for in
    // tuple-equivalents on the meter.
    let mut synopses: HashMap<u32, SynopsisBound> = HashMap::new();
    if let Some(resolution) = synopsis_resolution {
        let _span = rec.span("synopsis");
        let active = |x: usize| tracker.is_active(x);
        for (x, reply) in
            order.verify(fan.broadcast(active, &Message::SynopsisRequest { resolution }))
        {
            match reply {
                Ok(Message::Synopsis(syn)) => {
                    synopses.insert(x as u32, SynopsisBound::new(syn));
                }
                // A site that cannot ship a synopsis is still a valid query
                // participant: synopses only tighten bounds, never gate
                // correctness. Transport failures still count against it.
                Ok(_) => {}
                Err(e) => tracker.transport_failure(x, e)?,
            }
        }
    }

    // Plan phase: size `--batch auto` rounds (selection draws and expunge
    // sweeps alike) from the sites' sketched probability distributions.
    // Pure scheduling — see `crate::planner`.
    let plan_summary = plan.sketch().then(|| planner::plan(fan, q, &rec));
    let batch = planner::apply(batch, plan_summary.as_ref());

    'rounds: loop {
        // Deadline checks sit on round boundaries only, so a cancelled run
        // never leaves a frame in flight (see `dsud::run_with_policy`).
        if deadline.is_some_and(|d| started.elapsed() >= d) {
            cancelled = true;
            rec.incr(Counter::Cancelled);
            break 'rounds;
        }
        let round_span = rec.span("round");
        rec.incr(Counter::Rounds);
        let budget = batch.budget(queue.len());
        let mut round_overlapped = false;

        if budget > 1 {
            // Batched round: interleave expunge, selection, and refill
            // exactly as the one-candidate protocol below, flushing each
            // site's pending feedback immediately before any refill
            // request to it (see `crate::batch` for why that keeps the
            // run bit-identical). The broadcasts themselves are deferred
            // into one coalesced frame per site.
            let mut round = BatchRound::new(order.len(), budget, wire);
            let mut finished = false;
            // One expunge span per round, opened lazily at the first
            // expunge and spanning the interleaved draws — a span per draw
            // churned the recorder on large queues for no analytic gain.
            let mut expunge_span = None;
            while round.len() < budget && !finished {
                {
                    if expunge_span.is_none() {
                        expunge_span = Some(rec.span("expunge"));
                    }
                    loop {
                        let bounds: Vec<f64> =
                            queue.iter().map(|c| c.bound(&queue, mask, mode, &synopses)).collect();
                        let mut replaced_any = false;
                        if overlap {
                            // Pipelined sweep, as in the unbatched path
                            // below, plus each doomed candidate's pending
                            // feedback flush riding the same link just
                            // ahead of its refill.
                            let jobs: Vec<usize> =
                                (0..queue.len()).rev().filter(|&idx| bounds[idx] < q).collect();
                            let sends: Vec<_> = jobs
                                .iter()
                                .map(|&idx| {
                                    let home = queue[idx].msg.id.site.0 as usize;
                                    let fed = round.deliver_send(fan, home, &tracker);
                                    let refill = tracker
                                        .is_active(home)
                                        .then(|| InflightRefill::send(fan, home));
                                    (home, fed, refill)
                                })
                                .collect();
                            let in_flight = sends.iter().filter(|(_, _, r)| r.is_some()).count();
                            if in_flight > 1 && !round_overlapped {
                                round_overlapped = true;
                                rec.incr(Counter::OverlappedRounds);
                            }
                            let overlap_span = (in_flight > 0).then(|| rec.span("overlap"));
                            // Drain every ticket before interpreting any
                            // reply, so an error path leaves no
                            // outstanding frames.
                            let completions: Vec<_> = sends
                                .into_iter()
                                .map(|(home, fed, refill)| {
                                    let fed_reply = fed.map(|(t, idxs)| {
                                        (t.and_then(|t| fan.complete(home, t)), idxs)
                                    });
                                    let refill_reply = refill.map(|slot| slot.complete(fan, &rec));
                                    (home, fed_reply, refill_reply)
                                })
                                .collect();
                            drop(overlap_span);
                            for (&idx, (home, fed_reply, refill_reply)) in
                                jobs.iter().zip(completions)
                            {
                                queue.swap_remove(idx);
                                stats.expunged += 1;
                                stats.iterations += 1;
                                rec.incr(Counter::Expunged);
                                if let Some((reply, idxs)) = fed_reply {
                                    round.absorb_reply(
                                        home,
                                        &idxs,
                                        reply,
                                        &mut tracker,
                                        &mut stats,
                                        &rec,
                                    )?;
                                }
                                if let Some(reply) = refill_reply {
                                    if tracker.is_active(home) {
                                        if let Some(next) = tracker.upload(home, reply)? {
                                            queue.push(Candidate::new(next, &history, mask));
                                            replaced_any = true;
                                        }
                                    }
                                }
                            }
                        } else {
                            for idx in (0..queue.len()).rev() {
                                if bounds[idx] < q {
                                    let gone = queue.swap_remove(idx);
                                    stats.expunged += 1;
                                    stats.iterations += 1;
                                    rec.incr(Counter::Expunged);
                                    let home = gone.msg.id.site.0 as usize;
                                    round.deliver(fan, home, &mut tracker, &mut stats, &rec)?;
                                    if !tracker.is_active(home) {
                                        continue;
                                    }
                                    let reply = fan.call(home, Message::RequestNext);
                                    if let Some(next) = tracker.upload(home, reply)? {
                                        queue.push(Candidate::new(next, &history, mask));
                                        replaced_any = true;
                                    }
                                }
                            }
                        }
                        if !replaced_any {
                            break;
                        }
                    }
                }

                let bounds: Vec<f64> =
                    queue.iter().map(|c| c.bound(&queue, mask, mode, &synopses)).collect();
                let Some(head_idx) = argmax(&bounds, &queue) else {
                    finished = true;
                    break;
                };
                if bounds[head_idx] < q {
                    // Defensive, mirroring the one-candidate round below.
                    continue;
                }
                let cand = queue.swap_remove(head_idx);
                stats.iterations += 1;
                stats.broadcasts += 1;
                rec.incr(Counter::FeedbackBroadcasts);
                let home = cand.msg.id.site.0 as usize;

                // The drawn tuple discounts everything it dominates right
                // away — only its wire transmission is deferred.
                for c in &mut queue {
                    c.absorb_broadcast(&cand.msg, mask);
                }
                history.push(cand.msg.clone());
                round.push(cand.msg);

                {
                    let _span = rec.span("to-server");
                    if overlap {
                        // Pipelined draw: flush and refill ride `home`'s
                        // link back to back; one coordinator wait serves
                        // both (see the DSUD batched draw).
                        let fed = round.deliver_send(fan, home, &tracker);
                        let refill =
                            tracker.is_active(home).then(|| InflightRefill::send(fan, home));
                        if fed.is_some() && refill.is_some() && !round_overlapped {
                            round_overlapped = true;
                            rec.incr(Counter::OverlappedRounds);
                        }
                        let fed_reply =
                            fed.map(|(t, idxs)| (t.and_then(|t| fan.complete(home, t)), idxs));
                        let refill_reply = refill.map(|slot| slot.complete(fan, &rec));
                        if let Some((reply, idxs)) = fed_reply {
                            round.absorb_reply(
                                home,
                                &idxs,
                                reply,
                                &mut tracker,
                                &mut stats,
                                &rec,
                            )?;
                        }
                        if let Some(reply) = refill_reply {
                            if tracker.is_active(home) {
                                if let Some(next) = tracker.upload(home, reply)? {
                                    queue.push(Candidate::new(next, &history, mask));
                                }
                            }
                        }
                    } else {
                        round.deliver(fan, home, &mut tracker, &mut stats, &rec)?;
                        if tracker.is_active(home) {
                            let reply = fan.call(home, Message::RequestNext);
                            if let Some(next) = tracker.upload(home, reply)? {
                                queue.push(Candidate::new(next, &history, mask));
                            }
                        }
                    }
                }
                if queue.is_empty() {
                    finished = true;
                }
            }
            drop(expunge_span);

            if round.len() > 1 {
                rec.incr(Counter::BatchedRounds);
            }
            {
                let _span = rec.span("server-delivery");
                round.deliver_all(fan, &mut tracker, &mut stats, &rec)?;
            }
            for j in 0..round.len() {
                let global = round.global_probability(j);
                if global >= q {
                    let t = round.candidate(j);
                    skyline.push(SkylineEntry { tuple: t.to_tuple(), probability: global });
                    let transmitted = meter.snapshot().since(&start_traffic).tuples_transmitted();
                    rec.progressive(t.id.site.0, t.id.seq, global, transmitted);
                    progress.push(t.id, global, transmitted, started.elapsed());
                    if limit.is_some_and(|k| skyline.len() >= k) {
                        drop(round_span);
                        break 'rounds;
                    }
                }
            }
            if finished || round.is_empty() {
                break;
            }
            continue;
        }

        // Expunge phase: drop every candidate whose bound fails q, pulling
        // replacements until the picture stabilizes.
        {
            let _span = rec.span("expunge");
            loop {
                let bounds: Vec<f64> =
                    queue.iter().map(|c| c.bound(&queue, mask, mode, &synopses)).collect();
                let mut replaced_any = false;
                if overlap {
                    // Pipelined sweep: the job set is precomputable — the
                    // sequential loop walks indices downwards and its
                    // swap_removes and pushes never disturb a position
                    // below the one currently processed — so every doomed
                    // candidate's refill goes on the wire in one group and
                    // the sites extract replacements in parallel. The
                    // replay below then evolves the queue exactly as the
                    // sequential loop would, folding replies in send
                    // order. (At most one job per site: the queue holds
                    // one representative per site.)
                    let jobs: Vec<usize> =
                        (0..queue.len()).rev().filter(|&idx| bounds[idx] < q).collect();
                    let slots: Vec<Option<InflightRefill>> = jobs
                        .iter()
                        .map(|&idx| {
                            let home = queue[idx].msg.id.site.0 as usize;
                            tracker.is_active(home).then(|| InflightRefill::send(fan, home))
                        })
                        .collect();
                    let in_flight = slots.iter().flatten().count();
                    if in_flight > 1 && !round_overlapped {
                        round_overlapped = true;
                        rec.incr(Counter::OverlappedRounds);
                    }
                    let overlap_span = (in_flight > 0).then(|| rec.span("overlap"));
                    // Drain every ticket before interpreting any reply, so
                    // an error path leaves no outstanding frames.
                    let replies: Vec<Option<Result<Message, dsud_net::LinkError>>> =
                        slots.into_iter().map(|slot| slot.map(|s| s.complete(fan, &rec))).collect();
                    drop(overlap_span);
                    for (&idx, reply) in jobs.iter().zip(replies) {
                        let gone = queue.swap_remove(idx);
                        stats.expunged += 1;
                        stats.iterations += 1;
                        rec.incr(Counter::Expunged);
                        let home = gone.msg.id.site.0 as usize;
                        if let Some(reply) = reply {
                            if let Some(next) = tracker.upload(home, reply)? {
                                queue.push(Candidate::new(next, &history, mask));
                                replaced_any = true;
                            }
                        }
                    }
                } else {
                    for idx in (0..queue.len()).rev() {
                        if bounds[idx] < q {
                            let gone = queue.swap_remove(idx);
                            stats.expunged += 1;
                            stats.iterations += 1;
                            rec.incr(Counter::Expunged);
                            let home = gone.msg.id.site.0 as usize;
                            if !tracker.is_active(home) {
                                continue;
                            }
                            let reply = fan.call(home, Message::RequestNext);
                            if let Some(next) = tracker.upload(home, reply)? {
                                queue.push(Candidate::new(next, &history, mask));
                                replaced_any = true;
                            }
                        }
                    }
                }
                if !replaced_any {
                    // No new arrivals; surviving bounds can only have grown
                    // (fewer in-queue dominators), so one more pass below
                    // suffices for selection.
                    break;
                }
            }
        }

        // Selection: broadcast the candidate with the largest bound.
        let bounds: Vec<f64> =
            queue.iter().map(|c| c.bound(&queue, mask, mode, &synopses)).collect();
        let Some(head_idx) = argmax(&bounds, &queue) else { break };
        if bounds[head_idx] < q {
            // Can happen when removing a candidate lowered... it cannot:
            // bounds only grow as the queue shrinks. Defensive continue.
            continue;
        }
        let cand = queue.swap_remove(head_idx);
        stats.iterations += 1;
        stats.broadcasts += 1;
        rec.incr(Counter::FeedbackBroadcasts);
        let home = cand.msg.id.site.0 as usize;

        // Pipelined refill: on the wire before the survival scatter (which
        // excludes `home`), completed after the fold — see the DSUD
        // coordinator for the schedule and the `limit` guard.
        let may_finish = limit.is_some_and(|k| skyline.len() + 1 >= k);
        let refill = (overlap && !may_finish && tracker.is_active(home)).then(|| {
            if !round_overlapped {
                round_overlapped = true;
                rec.incr(Counter::OverlappedRounds);
            }
            (InflightRefill::send(fan, home), rec.span("overlap"))
        });

        // Concurrent fan-out: every other site computes its survival
        // product in parallel on concurrent transports.
        let mut global = cand.msg.local_prob;
        {
            let _span = rec.span("server-delivery");
            // Quarantined sites are skipped: their survival factors are
            // lost, making a degraded answer an upper bound.
            let active = |x: usize| x != home && tracker.is_active(x);
            for (x, reply) in
                order.verify(fan.broadcast(active, &Message::Feedback(cand.msg.clone())))
            {
                if let Some((survival, pruned)) = tracker.survival(x, reply)? {
                    global *= survival;
                    stats.pruned_at_sites += pruned;
                    rec.add(Counter::PrunedAtSites, pruned);
                }
            }
        }

        if global >= q {
            skyline.push(SkylineEntry { tuple: cand.msg.to_tuple(), probability: global });
            let transmitted = meter.snapshot().since(&start_traffic).tuples_transmitted();
            rec.progressive(cand.msg.id.site.0, cand.msg.id.seq, global, transmitted);
            progress.push(cand.msg.id, global, transmitted, started.elapsed());
            if limit.is_some_and(|k| skyline.len() >= k) {
                drop(round_span);
                break;
            }
        }

        // The broadcast tuple permanently discounts everything it
        // dominates, in the queue and in all future arrivals.
        for c in &mut queue {
            c.absorb_broadcast(&cand.msg, mask);
        }
        history.push(cand.msg);

        {
            let _span = rec.span("to-server");
            if let Some((slot, overlap_span)) = refill {
                let reply = slot.complete(fan, &rec);
                drop(overlap_span);
                // A mid-scatter quarantine means the sequential schedule
                // would have skipped this refill: discard the reply.
                if tracker.is_active(home) {
                    if let Some(next) = tracker.upload(home, reply)? {
                        queue.push(Candidate::new(next, &history, mask));
                    }
                }
            } else if tracker.is_active(home) {
                let reply = fan.call(home, Message::RequestNext);
                if let Some(next) = tracker.upload(home, reply)? {
                    queue.push(Candidate::new(next, &history, mask));
                }
            }
        }

        if queue.is_empty() {
            break;
        }
    }
    drop(query_span);

    Ok(QueryOutcome {
        skyline,
        progress,
        traffic: meter.snapshot().since(&start_traffic),
        stats,
        degraded: tracker.degraded(),
        cancelled,
        sites: tracker.statuses(),
        plan: plan_summary,
    })
}

/// Index of the largest bound, ties broken by tuple id for determinism.
fn argmax(bounds: &[f64], queue: &[Candidate]) -> Option<usize> {
    (0..bounds.len()).max_by(|&a, &b| {
        bounds[a]
            .partial_cmp(&bounds[b])
            .expect("bounds are finite")
            .then_with(|| queue[b].msg.id.cmp(&queue[a].msg.id))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::TupleId;

    fn msg(site: u32, values: Vec<f64>, prob: f64, local_prob: f64) -> TupleMsg {
        TupleMsg { id: TupleId::new(site, 0), values, prob, local_prob }
    }

    fn full2() -> SubspaceMask {
        SubspaceMask::full(2).unwrap()
    }

    /// The paper's Table 2(b) state: bounds must come out 0.65, 0.22, 0.18.
    #[test]
    fn bound_reproduces_paper_table2b() {
        let queue = vec![
            Candidate::new(msg(0, vec![6.0, 6.0], 0.7, 0.65), &[], full2()),
            Candidate::new(msg(1, vec![6.5, 7.0], 0.8, 0.65), &[], full2()),
            Candidate::new(msg(2, vec![6.4, 7.5], 0.9, 0.8), &[], full2()),
        ];
        let b: Vec<f64> = queue
            .iter()
            .map(|c| c.bound(&queue, full2(), BoundMode::Paper, &HashMap::new()))
            .collect();
        // (6,6) is undominated in L: bound = its local probability.
        assert!((b[0] - 0.65).abs() < 1e-12);
        // (6.5,7) dominated by (6,6): 0.65 × (0.65/0.7) × 0.3 ≈ 0.18.
        assert!((b[1] - 0.65 * (0.65 / 0.7) * 0.3).abs() < 1e-12);
        // (6.4,7.5) dominated by (6,6): 0.8 × (0.65/0.7) × 0.3 ≈ 0.22.
        assert!((b[2] - 0.8 * (0.65 / 0.7) * 0.3).abs() < 1e-12);
    }

    /// The paper's Table 2(f) state: after (6,6) was broadcast, the bound
    /// keeps only the (1 − P) discount: 0.8 × 0.3 = 0.24.
    #[test]
    fn bound_reproduces_paper_table2f() {
        let history = vec![msg(0, vec![6.0, 6.0], 0.7, 0.65)];
        let queue = vec![
            Candidate::new(msg(1, vec![6.5, 7.0], 0.8, 0.65), &history, full2()),
            Candidate::new(msg(2, vec![6.4, 7.5], 0.9, 0.8), &history, full2()),
        ];
        let b: Vec<f64> = queue
            .iter()
            .map(|c| c.bound(&queue, full2(), BoundMode::Paper, &HashMap::new()))
            .collect();
        assert!((b[0] - 0.65 * 0.3).abs() < 1e-12, "got {}", b[0]);
        assert!((b[1] - 0.8 * 0.3).abs() < 1e-12, "got {}", b[1]);
    }

    #[test]
    fn broadcast_only_mode_ignores_queue_dominators() {
        let queue = vec![
            Candidate::new(msg(0, vec![6.0, 6.0], 0.7, 0.65), &[], full2()),
            Candidate::new(msg(2, vec![6.4, 7.5], 0.9, 0.8), &[], full2()),
        ];
        let b = queue[1].bound(&queue, full2(), BoundMode::BroadcastOnly, &HashMap::new());
        assert!((b - 0.8).abs() < 1e-12);
    }

    #[test]
    fn same_site_queue_entries_never_discount() {
        // A dominator from the candidate's own site is already priced into
        // its local probability.
        let queue = vec![
            Candidate::new(msg(1, vec![1.0, 1.0], 0.9, 0.9), &[], full2()),
            Candidate::new(msg(1, vec![2.0, 2.0], 0.9, 0.09), &[], full2()),
        ];
        let b = queue[1].bound(&queue, full2(), BoundMode::Paper, &HashMap::new());
        assert!((b - 0.09).abs() < 1e-12);
    }

    #[test]
    fn history_discounts_accumulate_per_site() {
        let history = vec![
            msg(0, vec![1.0, 1.0], 0.5, 0.5),
            msg(0, vec![2.0, 2.0], 0.5, 0.25),
            msg(1, vec![1.5, 1.5], 0.2, 0.2),
        ];
        let c = Candidate::new(msg(2, vec![3.0, 3.0], 0.9, 0.8), &history, full2());
        let b = c.bound(&[], full2(), BoundMode::Paper, &HashMap::new());
        // Site 0 contributes 0.5 × 0.5, site 1 contributes 0.8.
        assert!((b - 0.8 * 0.25 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut links: Vec<Box<dyn Link>> = Vec::new();
        let meter = BandwidthMeter::new();
        assert!(matches!(
            run(&mut links, &meter, 2.0, full2(), BoundMode::Paper, None),
            Err(Error::InvalidThreshold(_))
        ));
    }
}
