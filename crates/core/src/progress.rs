//! Progressiveness trace: one [`ProgressEvent`] per skyline tuple the
//! coordinator reports, stamped with cumulative bandwidth and elapsed time —
//! the samples behind the paper's progressiveness curves (Section 7.5,
//! Figs. 12–13).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use dsud_uncertain::TupleId;

/// One progressively-reported skyline result.
///
/// The paper evaluates progressiveness (Section 7.5, Figs. 12–13) by
/// plotting cumulative bandwidth and CPU time against the number of
/// skyline tuples already reported; each event is one sample of those
/// curves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressEvent {
    /// 1-based rank of this result in report order.
    pub reported: usize,
    /// The reported tuple.
    pub id: TupleId,
    /// Its exact global skyline probability.
    pub probability: f64,
    /// Tuples transmitted over the network up to (and including) this
    /// report.
    pub tuples_transmitted: u64,
    /// Wall-clock time elapsed since the query started.
    pub elapsed: Duration,
}

/// The full progressiveness trace of one query run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProgressLog {
    events: Vec<ProgressEvent>,
}

impl ProgressLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event. Called by the coordinators; `reported` is filled
    /// in automatically.
    pub(crate) fn push(
        &mut self,
        id: TupleId,
        probability: f64,
        tuples_transmitted: u64,
        elapsed: Duration,
    ) {
        let reported = self.events.len() + 1;
        self.events.push(ProgressEvent { reported, id, probability, tuples_transmitted, elapsed });
    }

    /// All events, in report order.
    pub fn events(&self) -> &[ProgressEvent] {
        &self.events
    }

    /// Number of results reported.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time to the first reported result, if any — the paper's headline
    /// progressiveness indicator.
    pub fn time_to_first(&self) -> Option<Duration> {
        self.events.first().map(|e| e.elapsed)
    }

    /// Bandwidth consumed up to the `k`-th report (1-based), if reached.
    pub fn bandwidth_at(&self, k: usize) -> Option<u64> {
        self.events.get(k.checked_sub(1)?).map(|e| e.tuples_transmitted)
    }
}

impl<'a> IntoIterator for &'a ProgressLog {
    type Item = &'a ProgressEvent;
    type IntoIter = std::slice::Iter<'a, ProgressEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_numbers_events() {
        let mut log = ProgressLog::new();
        log.push(TupleId::new(0, 1), 0.9, 10, Duration::from_millis(5));
        log.push(TupleId::new(1, 2), 0.7, 25, Duration::from_millis(9));
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].reported, 1);
        assert_eq!(log.events()[1].reported, 2);
        assert_eq!(log.time_to_first(), Some(Duration::from_millis(5)));
        assert_eq!(log.bandwidth_at(2), Some(25));
        assert_eq!(log.bandwidth_at(3), None);
        assert_eq!(log.bandwidth_at(0), None);
    }

    #[test]
    fn empty_log_behaviour() {
        let log = ProgressLog::new();
        assert!(log.is_empty());
        assert!(log.time_to_first().is_none());
        assert_eq!((&log).into_iter().count(), 0);
    }
}
