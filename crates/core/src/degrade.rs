//! Degraded-mode bookkeeping: which sites failed, why, and what that does
//! to the answer.
//!
//! Both coordinators route every site reply through a failure tracker.
//! Under [`FailurePolicy::Strict`] the first exhausted-retry transport
//! failure (or protocol violation) aborts the query with a typed error
//! naming the site. Under [`FailurePolicy::Degrade`] the site is
//! *quarantined* instead: it is excluded from every later broadcast and
//! refill, the query completes over the survivors, and the outcome is
//! stamped [`QueryOutcome::degraded`](crate::QueryOutcome::degraded) with
//! one [`SiteStatus`] per site.
//!
//! **Correctness caveat, by design:** a quarantined site's tuples can no
//! longer contribute their `(1 − P(t'))` survival factors to Lemma 1's
//! product, so every probability reported by a degraded run is an *upper
//! bound* on the true global skyline probability — the answer may contain
//! tuples a healthy run would have rejected, but never misses a tuple the
//! surviving sites alone would qualify. Callers that need the exact answer
//! must use strict mode (the default) and retry the query.

use serde::{Deserialize, Serialize};

use dsud_net::LinkError;
use dsud_obs::{Counter, Recorder};

use crate::{Error, FailurePolicy};

/// Why a site was quarantined during a degraded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The site's transport kept failing after the whole retry budget.
    Transport(LinkError),
    /// The site answered with something the protocol does not allow.
    Protocol(String),
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Transport(e) => write!(f, "transport failure: {e}"),
            QuarantineReason::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

/// Lifecycle state of one site in the quarantine → probation → recovered
/// loop.
///
/// A one-shot query only ever walks the first edge (healthy sites are
/// [`SiteState::Active`], failed ones end [`SiteState::Quarantined`]); the
/// long-lived session server drives the full cycle from its heartbeat
/// schedule: a quarantined site whose probe answers again is explicitly
/// reconnected and moved to [`SiteState::Probation`], resynced from the op
/// log, and promoted back to [`SiteState::Active`] once enough consecutive
/// probes succeed on the fresh evidence window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SiteState {
    /// Serving normally.
    Active,
    /// Reconnected after a quarantine: included in queries again, but
    /// still proving itself before the quarantine is forgotten.
    Probation {
        /// Op-log epoch at which the site rejoined the conversation.
        epoch: u64,
    },
    /// The coordinator has stopped talking to the site.
    Quarantined {
        /// Why the coordinator stopped talking to the site.
        reason: QuarantineReason,
        /// Op-log epoch at which the quarantine began — a later resync
        /// replays every update from this epoch on.
        epoch: u64,
    },
}

impl SiteState {
    /// Whether the coordinator should still talk to the site.
    pub fn is_active(&self) -> bool {
        !matches!(self, SiteState::Quarantined { .. })
    }
}

/// Post-run health record of one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteStatus {
    /// The site's index in the cluster.
    pub site: u32,
    /// `None` while the site served the whole query; the quarantine cause
    /// once the coordinator stopped talking to it.
    pub quarantined: Option<QuarantineReason>,
    /// Full lifecycle state, stamped by trackers that know it. Absent
    /// (`None`) in records written before the recovery lifecycle existed.
    #[serde(default)]
    pub state: Option<SiteState>,
}

impl SiteStatus {
    /// Whether the site served the whole query.
    pub fn healthy(&self) -> bool {
        self.quarantined.is_none()
    }
}

/// Failure ledger shared by the DSUD and e-DSUD coordinators — and, held
/// long-lived behind the session server, the lifecycle state machine the
/// heartbeat schedule drives.
#[derive(Debug)]
pub(crate) struct FailureTracker {
    policy: FailurePolicy,
    states: Vec<SiteState>,
    /// Consecutive successful probes per site, counted only on probation.
    probe_streak: Vec<u64>,
    /// Current op-log epoch, stamped into quarantine/probation records.
    epoch: u64,
    recorder: Recorder,
}

impl FailureTracker {
    pub(crate) fn new(sites: usize, policy: FailurePolicy, recorder: Recorder) -> Self {
        FailureTracker {
            policy,
            states: vec![SiteState::Active; sites],
            probe_streak: vec![0; sites],
            epoch: 0,
            recorder,
        }
    }

    /// Whether the coordinator should still talk to `site`.
    pub(crate) fn is_active(&self, site: usize) -> bool {
        self.states.get(site).is_none_or(SiteState::is_active)
    }

    /// Whether any site is currently quarantined.
    pub(crate) fn degraded(&self) -> bool {
        self.states.iter().any(|s| !s.is_active())
    }

    /// The lifecycle state of one site.
    pub(crate) fn state(&self, site: usize) -> &SiteState {
        &self.states[site]
    }

    /// Advances the op-log epoch stamped into later transitions.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// The per-site records for the query outcome.
    pub(crate) fn statuses(&self) -> Vec<SiteStatus> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| SiteStatus {
                site: i as u32,
                quarantined: match s {
                    SiteState::Quarantined { reason, .. } => Some(reason.clone()),
                    _ => None,
                },
                state: Some(s.clone()),
            })
            .collect()
    }

    pub(crate) fn quarantine(&mut self, site: usize, reason: QuarantineReason) {
        if self.states[site].is_active() {
            self.states[site] = SiteState::Quarantined { reason, epoch: self.epoch };
            self.probe_streak[site] = 0;
            self.recorder.incr(Counter::QuarantinedSites);
        }
    }

    /// A quarantined site answered a probe again: move it to probation and
    /// return the epoch its quarantine began at (where the resync replay
    /// must start). `None` when the site was not quarantined.
    pub(crate) fn begin_probation(&mut self, site: usize) -> Option<u64> {
        match &self.states[site] {
            SiteState::Quarantined { epoch, .. } => {
                let since = *epoch;
                self.states[site] = SiteState::Probation { epoch: self.epoch };
                self.probe_streak[site] = 0;
                Some(since)
            }
            _ => None,
        }
    }

    /// A successful probe of a probation site. Returns `true` when the
    /// streak reaches `needed` and the site is promoted back to
    /// [`SiteState::Active`] (the rejoin). Active sites stay active;
    /// quarantined sites are not counted here.
    pub(crate) fn probation_success(&mut self, site: usize, needed: u64) -> bool {
        if let SiteState::Probation { .. } = self.states[site] {
            self.probe_streak[site] += 1;
            if self.probe_streak[site] >= needed {
                self.states[site] = SiteState::Active;
                self.probe_streak[site] = 0;
                return true;
            }
        }
        false
    }

    /// Handles a transport failure from `site`: strict mode aborts, degrade
    /// mode quarantines and continues.
    pub(crate) fn transport_failure(
        &mut self,
        site: usize,
        source: LinkError,
    ) -> Result<(), Error> {
        match self.policy {
            FailurePolicy::Strict => Err(Error::SiteFailed { site: site as u32, source }),
            FailurePolicy::Degrade => {
                self.quarantine(site, QuarantineReason::Transport(source));
                Ok(())
            }
        }
    }

    /// Handles a protocol violation from `site`: strict mode aborts with
    /// the original error, degrade mode quarantines and continues — a site
    /// talking nonsense is as lost to the query as an unreachable one.
    pub(crate) fn protocol_failure(&mut self, site: usize, error: Error) -> Result<(), Error> {
        match self.policy {
            FailurePolicy::Strict => Err(error),
            FailurePolicy::Degrade => {
                self.quarantine(site, QuarantineReason::Protocol(error.to_string()));
                Ok(())
            }
        }
    }

    /// Interprets an upload reply (or transport failure) from `site`.
    /// `Ok(None)` covers both an exhausted site and a quarantined one.
    pub(crate) fn upload(
        &mut self,
        site: usize,
        reply: Result<dsud_net::Message, LinkError>,
    ) -> Result<Option<dsud_net::TupleMsg>, Error> {
        match reply {
            Ok(msg) => match crate::cluster::expect_upload(site as u32, msg) {
                Ok(t) => Ok(t),
                Err(e) => {
                    self.protocol_failure(site, e)?;
                    Ok(None)
                }
            },
            Err(e) => {
                self.transport_failure(site, e)?;
                Ok(None)
            }
        }
    }

    /// Interprets a survival reply (or transport failure) from `site`.
    /// `Ok(None)` means the site is lost and contributes no factor — the
    /// accumulated product becomes an upper bound (see the module docs).
    pub(crate) fn survival(
        &mut self,
        site: usize,
        reply: Result<dsud_net::Message, LinkError>,
    ) -> Result<Option<(f64, u64)>, Error> {
        match reply {
            Ok(msg) => match crate::cluster::expect_survival(site as u32, msg) {
                Ok(pair) => Ok(Some(pair)),
                Err(e) => {
                    self.protocol_failure(site, e)?;
                    Ok(None)
                }
            },
            Err(e) => {
                self.transport_failure(site, e)?;
                Ok(None)
            }
        }
    }

    /// Interprets a batched survival reply (or transport failure) from
    /// `site`. The reply must carry exactly `expected` factors — one per
    /// probe in the feedback batch — or the site is treated as violating
    /// the protocol. `Ok(None)` means the site is lost and contributes no
    /// factor to any probe in the batch.
    pub(crate) fn survival_batch(
        &mut self,
        site: usize,
        reply: Result<dsud_net::Message, LinkError>,
        expected: usize,
    ) -> Result<Option<(Vec<f64>, u64)>, Error> {
        match reply {
            Ok(msg) => match crate::cluster::expect_survival_batch(site as u32, msg, expected) {
                Ok(pair) => Ok(Some(pair)),
                Err(e) => {
                    self.protocol_failure(site, e)?;
                    Ok(None)
                }
            },
            Err(e) => {
                self.transport_failure(site, e)?;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_net::Message;

    #[test]
    fn strict_mode_aborts_on_first_transport_failure() {
        let mut tracker = FailureTracker::new(3, FailurePolicy::Strict, Recorder::disabled());
        let err = tracker.transport_failure(1, LinkError::Timeout).unwrap_err();
        assert_eq!(err, Error::SiteFailed { site: 1, source: LinkError::Timeout });
        assert!(!tracker.degraded());
    }

    #[test]
    fn degrade_mode_quarantines_and_continues() {
        let recorder = Recorder::enabled();
        let mut tracker = FailureTracker::new(3, FailurePolicy::Degrade, recorder.clone());
        tracker.transport_failure(1, LinkError::Disconnected).unwrap();
        assert!(tracker.degraded());
        assert!(!tracker.is_active(1));
        assert!(tracker.is_active(0) && tracker.is_active(2));
        // A second failure of the same site is not a second quarantine.
        tracker.transport_failure(1, LinkError::Timeout).unwrap();
        assert_eq!(recorder.counter(Counter::QuarantinedSites), 1);
        let statuses = tracker.statuses();
        assert_eq!(statuses.len(), 3);
        assert!(statuses[0].healthy() && statuses[2].healthy());
        assert_eq!(
            statuses[1].quarantined,
            Some(QuarantineReason::Transport(LinkError::Disconnected))
        );
    }

    #[test]
    fn degraded_replies_collapse_to_none() {
        let mut tracker = FailureTracker::new(2, FailurePolicy::Degrade, Recorder::disabled());
        assert_eq!(tracker.upload(0, Err(LinkError::Timeout)).unwrap(), None);
        assert_eq!(tracker.survival(1, Ok(Message::Ack)).unwrap(), None);
        assert!(!tracker.is_active(0) && !tracker.is_active(1));
    }

    #[test]
    fn survival_batch_checks_length_and_quarantines_on_mismatch() {
        let mut tracker = FailureTracker::new(3, FailurePolicy::Degrade, Recorder::disabled());
        let good = Message::SurvivalBatchReply { survivals: vec![0.5, 0.75], pruned: 2 };
        assert_eq!(tracker.survival_batch(0, Ok(good), 2).unwrap(), Some((vec![0.5, 0.75], 2)));
        // Too few factors: the site broke protocol and is quarantined.
        let short = Message::SurvivalBatchReply { survivals: vec![0.5], pruned: 0 };
        assert_eq!(tracker.survival_batch(1, Ok(short), 2).unwrap(), None);
        assert!(!tracker.is_active(1));
        // Strict mode aborts on the same mismatch.
        let mut strict = FailureTracker::new(3, FailurePolicy::Strict, Recorder::disabled());
        let short = Message::SurvivalBatchReply { survivals: vec![0.5], pruned: 0 };
        assert!(strict.survival_batch(1, Ok(short), 2).is_err());
    }

    #[test]
    fn statuses_serialize_round_trip() {
        let reason = QuarantineReason::Transport(LinkError::Io("boom".into()));
        let status = SiteStatus {
            site: 4,
            quarantined: Some(reason.clone()),
            state: Some(SiteState::Quarantined { reason, epoch: 7 }),
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: SiteStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
        assert!(!back.healthy());
        // Records written before the lifecycle existed still deserialize:
        // the state field defaults to None.
        let legacy: SiteStatus =
            serde_json::from_str(r#"{"site": 2, "quarantined": null}"#).unwrap();
        assert!(legacy.healthy());
        assert_eq!(legacy.state, None);
    }

    #[test]
    fn lifecycle_walks_quarantine_probation_active() {
        let recorder = Recorder::enabled();
        let mut tracker = FailureTracker::new(2, FailurePolicy::Degrade, recorder.clone());
        tracker.set_epoch(5);
        tracker.transport_failure(1, LinkError::Timeout).unwrap();
        assert_eq!(
            tracker.state(1),
            &SiteState::Quarantined {
                reason: QuarantineReason::Transport(LinkError::Timeout),
                epoch: 5
            }
        );
        assert!(!tracker.is_active(1));

        // Updates applied while the site is out advance the epoch; the
        // probation record carries the rejoin epoch, and begin_probation
        // hands back the quarantine epoch where the replay must start.
        tracker.set_epoch(9);
        assert_eq!(tracker.begin_probation(1), Some(5));
        assert_eq!(tracker.state(1), &SiteState::Probation { epoch: 9 });
        assert!(tracker.is_active(1), "probation sites serve queries again");
        assert!(!tracker.degraded(), "probation is not a degraded state");

        // Two of three required probes: still on probation.
        assert!(!tracker.probation_success(1, 3));
        assert!(!tracker.probation_success(1, 3));
        assert!(tracker.probation_success(1, 3), "third consecutive probe promotes");
        assert_eq!(tracker.state(1), &SiteState::Active);

        // begin_probation on a non-quarantined site is a no-op.
        assert_eq!(tracker.begin_probation(1), None);
        assert_eq!(tracker.begin_probation(0), None);
        // Only the one quarantine was counted.
        assert_eq!(recorder.counter(Counter::QuarantinedSites), 1);
    }

    #[test]
    fn probation_site_can_be_requarantined() {
        let mut tracker = FailureTracker::new(1, FailurePolicy::Degrade, Recorder::disabled());
        tracker.transport_failure(0, LinkError::Disconnected).unwrap();
        tracker.begin_probation(0);
        assert!(!tracker.probation_success(0, 2));
        // A fresh failure during probation throws the site back out and
        // resets the streak.
        tracker.transport_failure(0, LinkError::Timeout).unwrap();
        assert!(matches!(tracker.state(0), SiteState::Quarantined { .. }));
        tracker.begin_probation(0);
        assert!(!tracker.probation_success(0, 2), "the old streak must not carry over");
        assert!(tracker.probation_success(0, 2));
    }
}
