//! Degraded-mode bookkeeping: which sites failed, why, and what that does
//! to the answer.
//!
//! Both coordinators route every site reply through a failure tracker.
//! Under [`FailurePolicy::Strict`] the first exhausted-retry transport
//! failure (or protocol violation) aborts the query with a typed error
//! naming the site. Under [`FailurePolicy::Degrade`] the site is
//! *quarantined* instead: it is excluded from every later broadcast and
//! refill, the query completes over the survivors, and the outcome is
//! stamped [`QueryOutcome::degraded`](crate::QueryOutcome::degraded) with
//! one [`SiteStatus`] per site.
//!
//! **Correctness caveat, by design:** a quarantined site's tuples can no
//! longer contribute their `(1 − P(t'))` survival factors to Lemma 1's
//! product, so every probability reported by a degraded run is an *upper
//! bound* on the true global skyline probability — the answer may contain
//! tuples a healthy run would have rejected, but never misses a tuple the
//! surviving sites alone would qualify. Callers that need the exact answer
//! must use strict mode (the default) and retry the query.

use serde::{Deserialize, Serialize};

use dsud_net::LinkError;
use dsud_obs::{Counter, Recorder};

use crate::{Error, FailurePolicy};

/// Why a site was quarantined during a degraded run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The site's transport kept failing after the whole retry budget.
    Transport(LinkError),
    /// The site answered with something the protocol does not allow.
    Protocol(String),
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Transport(e) => write!(f, "transport failure: {e}"),
            QuarantineReason::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

/// Post-run health record of one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteStatus {
    /// The site's index in the cluster.
    pub site: u32,
    /// `None` while the site served the whole query; the quarantine cause
    /// once the coordinator stopped talking to it.
    pub quarantined: Option<QuarantineReason>,
}

impl SiteStatus {
    /// Whether the site served the whole query.
    pub fn healthy(&self) -> bool {
        self.quarantined.is_none()
    }
}

/// Per-query failure ledger shared by the DSUD and e-DSUD coordinators.
#[derive(Debug)]
pub(crate) struct FailureTracker {
    policy: FailurePolicy,
    quarantined: Vec<Option<QuarantineReason>>,
    recorder: Recorder,
}

impl FailureTracker {
    pub(crate) fn new(sites: usize, policy: FailurePolicy, recorder: Recorder) -> Self {
        FailureTracker { policy, quarantined: vec![None; sites], recorder }
    }

    /// Whether the coordinator should still talk to `site`.
    pub(crate) fn is_active(&self, site: usize) -> bool {
        self.quarantined.get(site).is_none_or(|q| q.is_none())
    }

    /// Whether any site has been quarantined.
    pub(crate) fn degraded(&self) -> bool {
        self.quarantined.iter().any(Option::is_some)
    }

    /// The per-site records for the query outcome.
    pub(crate) fn statuses(&self) -> Vec<SiteStatus> {
        self.quarantined
            .iter()
            .enumerate()
            .map(|(i, q)| SiteStatus { site: i as u32, quarantined: q.clone() })
            .collect()
    }

    fn quarantine(&mut self, site: usize, reason: QuarantineReason) {
        if self.quarantined[site].is_none() {
            self.quarantined[site] = Some(reason);
            self.recorder.incr(Counter::QuarantinedSites);
        }
    }

    /// Handles a transport failure from `site`: strict mode aborts, degrade
    /// mode quarantines and continues.
    pub(crate) fn transport_failure(
        &mut self,
        site: usize,
        source: LinkError,
    ) -> Result<(), Error> {
        match self.policy {
            FailurePolicy::Strict => Err(Error::SiteFailed { site: site as u32, source }),
            FailurePolicy::Degrade => {
                self.quarantine(site, QuarantineReason::Transport(source));
                Ok(())
            }
        }
    }

    /// Handles a protocol violation from `site`: strict mode aborts with
    /// the original error, degrade mode quarantines and continues — a site
    /// talking nonsense is as lost to the query as an unreachable one.
    pub(crate) fn protocol_failure(&mut self, site: usize, error: Error) -> Result<(), Error> {
        match self.policy {
            FailurePolicy::Strict => Err(error),
            FailurePolicy::Degrade => {
                self.quarantine(site, QuarantineReason::Protocol(error.to_string()));
                Ok(())
            }
        }
    }

    /// Interprets an upload reply (or transport failure) from `site`.
    /// `Ok(None)` covers both an exhausted site and a quarantined one.
    pub(crate) fn upload(
        &mut self,
        site: usize,
        reply: Result<dsud_net::Message, LinkError>,
    ) -> Result<Option<dsud_net::TupleMsg>, Error> {
        match reply {
            Ok(msg) => match crate::cluster::expect_upload(site as u32, msg) {
                Ok(t) => Ok(t),
                Err(e) => {
                    self.protocol_failure(site, e)?;
                    Ok(None)
                }
            },
            Err(e) => {
                self.transport_failure(site, e)?;
                Ok(None)
            }
        }
    }

    /// Interprets a survival reply (or transport failure) from `site`.
    /// `Ok(None)` means the site is lost and contributes no factor — the
    /// accumulated product becomes an upper bound (see the module docs).
    pub(crate) fn survival(
        &mut self,
        site: usize,
        reply: Result<dsud_net::Message, LinkError>,
    ) -> Result<Option<(f64, u64)>, Error> {
        match reply {
            Ok(msg) => match crate::cluster::expect_survival(site as u32, msg) {
                Ok(pair) => Ok(Some(pair)),
                Err(e) => {
                    self.protocol_failure(site, e)?;
                    Ok(None)
                }
            },
            Err(e) => {
                self.transport_failure(site, e)?;
                Ok(None)
            }
        }
    }

    /// Interprets a batched survival reply (or transport failure) from
    /// `site`. The reply must carry exactly `expected` factors — one per
    /// probe in the feedback batch — or the site is treated as violating
    /// the protocol. `Ok(None)` means the site is lost and contributes no
    /// factor to any probe in the batch.
    pub(crate) fn survival_batch(
        &mut self,
        site: usize,
        reply: Result<dsud_net::Message, LinkError>,
        expected: usize,
    ) -> Result<Option<(Vec<f64>, u64)>, Error> {
        match reply {
            Ok(msg) => match crate::cluster::expect_survival_batch(site as u32, msg, expected) {
                Ok(pair) => Ok(Some(pair)),
                Err(e) => {
                    self.protocol_failure(site, e)?;
                    Ok(None)
                }
            },
            Err(e) => {
                self.transport_failure(site, e)?;
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_net::Message;

    #[test]
    fn strict_mode_aborts_on_first_transport_failure() {
        let mut tracker = FailureTracker::new(3, FailurePolicy::Strict, Recorder::disabled());
        let err = tracker.transport_failure(1, LinkError::Timeout).unwrap_err();
        assert_eq!(err, Error::SiteFailed { site: 1, source: LinkError::Timeout });
        assert!(!tracker.degraded());
    }

    #[test]
    fn degrade_mode_quarantines_and_continues() {
        let recorder = Recorder::enabled();
        let mut tracker = FailureTracker::new(3, FailurePolicy::Degrade, recorder.clone());
        tracker.transport_failure(1, LinkError::Disconnected).unwrap();
        assert!(tracker.degraded());
        assert!(!tracker.is_active(1));
        assert!(tracker.is_active(0) && tracker.is_active(2));
        // A second failure of the same site is not a second quarantine.
        tracker.transport_failure(1, LinkError::Timeout).unwrap();
        assert_eq!(recorder.counter(Counter::QuarantinedSites), 1);
        let statuses = tracker.statuses();
        assert_eq!(statuses.len(), 3);
        assert!(statuses[0].healthy() && statuses[2].healthy());
        assert_eq!(
            statuses[1].quarantined,
            Some(QuarantineReason::Transport(LinkError::Disconnected))
        );
    }

    #[test]
    fn degraded_replies_collapse_to_none() {
        let mut tracker = FailureTracker::new(2, FailurePolicy::Degrade, Recorder::disabled());
        assert_eq!(tracker.upload(0, Err(LinkError::Timeout)).unwrap(), None);
        assert_eq!(tracker.survival(1, Ok(Message::Ack)).unwrap(), None);
        assert!(!tracker.is_active(0) && !tracker.is_active(1));
    }

    #[test]
    fn survival_batch_checks_length_and_quarantines_on_mismatch() {
        let mut tracker = FailureTracker::new(3, FailurePolicy::Degrade, Recorder::disabled());
        let good = Message::SurvivalBatchReply { survivals: vec![0.5, 0.75], pruned: 2 };
        assert_eq!(tracker.survival_batch(0, Ok(good), 2).unwrap(), Some((vec![0.5, 0.75], 2)));
        // Too few factors: the site broke protocol and is quarantined.
        let short = Message::SurvivalBatchReply { survivals: vec![0.5], pruned: 0 };
        assert_eq!(tracker.survival_batch(1, Ok(short), 2).unwrap(), None);
        assert!(!tracker.is_active(1));
        // Strict mode aborts on the same mismatch.
        let mut strict = FailureTracker::new(3, FailurePolicy::Strict, Recorder::disabled());
        let short = Message::SurvivalBatchReply { survivals: vec![0.5], pruned: 0 };
        assert!(strict.survival_batch(1, Ok(short), 2).is_err());
    }

    #[test]
    fn statuses_serialize_round_trip() {
        let status = SiteStatus {
            site: 4,
            quarantined: Some(QuarantineReason::Transport(LinkError::Io("boom".into()))),
        };
        let json = serde_json::to_string(&status).unwrap();
        let back: SiteStatus = serde_json::from_str(&json).unwrap();
        assert_eq!(back, status);
        assert!(!back.healthy());
    }
}
