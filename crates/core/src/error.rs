//! Error type of the distributed query layer: invalid thresholds, cluster
//! construction faults (dimension/site-id mismatches), subspace and PR-tree
//! failures, protocol violations observed by the coordinator, and site
//! failures surfaced by the fallible transports.

use std::fmt;

use dsud_net::LinkError;

/// Errors produced by the distributed query algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The probability threshold `q` was outside `(0, 1]`.
    InvalidThreshold(f64),
    /// The cluster was built with zero sites.
    NoSites,
    /// A caller-supplied parameter could not be interpreted.
    InvalidArgument(&'static str),
    /// A site database disagreed with the cluster's dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending dimensionality.
        actual: usize,
    },
    /// A site's tuples did not carry that site's id.
    WrongSiteId {
        /// Index the cluster assigned to the site.
        expected: u32,
        /// Site id found inside a tuple.
        actual: u32,
    },
    /// A subspace mask selected dimensions outside the data space.
    Subspace(dsud_uncertain::Error),
    /// An index-level failure (propagated from the PR-tree).
    Index(dsud_prtree::Error),
    /// A site answered a protocol request with an unexpected message.
    ProtocolViolation {
        /// The misbehaving site.
        site: u32,
        /// What the coordinator expected and did not get.
        what: &'static str,
    },
    /// A site's transport failed past its retry budget. Under
    /// [`crate::FailurePolicy::Strict`] (the default) this aborts the
    /// query; under [`crate::FailurePolicy::Degrade`] the site is
    /// quarantined instead and the error never surfaces.
    SiteFailed {
        /// The unreachable site.
        site: u32,
        /// The final transport error after retries.
        source: LinkError,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidThreshold(q) => {
                write!(f, "threshold {q} is outside the interval (0, 1]")
            }
            Error::NoSites => write!(f, "a cluster needs at least one site"),
            Error::InvalidArgument(what) => write!(f, "invalid argument: {what}"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} dimensions, got {actual}")
            }
            Error::WrongSiteId { expected, actual } => {
                write!(f, "site {expected} holds tuples labelled for site {actual}")
            }
            Error::Subspace(e) => write!(f, "invalid subspace: {e}"),
            Error::Index(e) => write!(f, "index failure: {e}"),
            Error::ProtocolViolation { site, what } => {
                write!(f, "protocol violation at site {site}: {what}")
            }
            Error::SiteFailed { site, source } => {
                write!(f, "site {site} failed: {source}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Subspace(e) => Some(e),
            Error::Index(e) => Some(e),
            Error::SiteFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<dsud_prtree::Error> for Error {
    fn from(e: dsud_prtree::Error) -> Self {
        Error::Index(e)
    }
}

impl From<dsud_uncertain::Error> for Error {
    fn from(e: dsud_uncertain::Error) -> Self {
        Error::Subspace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_failed_carries_its_transport_source() {
        let e = Error::SiteFailed { site: 3, source: LinkError::Timeout };
        assert_eq!(e.to_string(), "site 3 failed: request deadline elapsed");
        let source = std::error::Error::source(&e).expect("has a source");
        assert_eq!(source.to_string(), LinkError::Timeout.to_string());
    }

    #[test]
    fn protocol_violation_names_the_site() {
        let e = Error::ProtocolViolation { site: 7, what: "expected Upload reply" };
        assert!(e.to_string().contains("site 7"));
        assert!(e.to_string().contains("expected Upload reply"));
    }
}
