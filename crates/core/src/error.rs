//! Error type of the distributed query layer: invalid thresholds, cluster
//! construction faults (dimension/site-id mismatches), subspace and PR-tree
//! failures, and protocol violations observed by the coordinator.

use std::fmt;

/// Errors produced by the distributed query algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The probability threshold `q` was outside `(0, 1]`.
    InvalidThreshold(f64),
    /// The cluster was built with zero sites.
    NoSites,
    /// A site database disagreed with the cluster's dimensionality.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending dimensionality.
        actual: usize,
    },
    /// A site's tuples did not carry that site's id.
    WrongSiteId {
        /// Index the cluster assigned to the site.
        expected: u32,
        /// Site id found inside a tuple.
        actual: u32,
    },
    /// A subspace mask selected dimensions outside the data space.
    Subspace(dsud_uncertain::Error),
    /// An index-level failure (propagated from the PR-tree).
    Index(dsud_prtree::Error),
    /// A site answered a protocol request with an unexpected message.
    ProtocolViolation(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidThreshold(q) => {
                write!(f, "threshold {q} is outside the interval (0, 1]")
            }
            Error::NoSites => write!(f, "a cluster needs at least one site"),
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} dimensions, got {actual}")
            }
            Error::WrongSiteId { expected, actual } => {
                write!(f, "site {expected} holds tuples labelled for site {actual}")
            }
            Error::Subspace(e) => write!(f, "invalid subspace: {e}"),
            Error::Index(e) => write!(f, "index failure: {e}"),
            Error::ProtocolViolation(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Subspace(e) => Some(e),
            Error::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dsud_prtree::Error> for Error {
    fn from(e: dsud_prtree::Error) -> Self {
        Error::Index(e)
    }
}

impl From<dsud_uncertain::Error> for Error {
    fn from(e: dsud_uncertain::Error) -> Self {
        Error::Subspace(e)
    }
}
