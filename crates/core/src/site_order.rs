//! The one ascending-site fold order shared by every coordinator.
//!
//! Lemma 1 assembles a candidate's exact global probability as a product
//! of per-site survival factors. `f64` multiplication is not associative,
//! so *which order* the factors are multiplied in is part of the answer:
//! two coordinators that fold the same factors in different orders can
//! report probabilities differing in the last bit. Every fold in this
//! crate — the unbatched accumulation loop, the batched survival matrix,
//! the e-DSUD bound refresh, and the tree-topology merge at the root —
//! therefore multiplies in **ascending site order**, and this module is
//! the single place that order is defined and checked.
//!
//! [`SiteOrder::verify`] wraps a reply stream (from
//! [`dsud_net::Fanout::broadcast`] / [`dsud_net::Fanout::scatter`], flat or
//! tree) and debug-asserts the pairs really arrive in fold order, so a
//! transport or aggregator that reordered replies fails loudly in tests
//! instead of silently perturbing probabilities.

/// The ascending-site iteration order for an `m`-site cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteOrder {
    sites: usize,
}

impl SiteOrder {
    /// The fold order for `sites` sites.
    pub fn new(sites: usize) -> Self {
        SiteOrder { sites }
    }

    /// Number of sites in the order.
    pub fn len(&self) -> usize {
        self.sites
    }

    /// Whether the cluster has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites == 0
    }

    /// Every site index in fold order. This is the iteration every
    /// coordinator must use when visiting per-site state (survival
    /// matrices, scatter request assembly, status sweeps).
    pub fn iter(&self) -> std::ops::Range<usize> {
        0..self.sites
    }

    /// Checks that a reply stream is in fold order (strictly ascending
    /// site indices, all in range) and passes it through. The check is a
    /// debug assertion: release runs pay nothing, test runs catch a
    /// transport or aggregator that reordered replies before the
    /// misordered fold can perturb a probability.
    pub fn verify<T>(&self, replies: Vec<(usize, T)>) -> Vec<(usize, T)> {
        debug_assert!(
            replies.windows(2).all(|w| w[0].0 < w[1].0)
                && replies.last().is_none_or(|(x, _)| *x < self.sites),
            "replies must arrive in ascending site order within {} sites",
            self.sites
        );
        replies
    }

    /// Left-fold of survival factors in fold order (the Lemma 1 product
    /// grouping): `init × f(s_0) × f(s_1) × …` ascending. `factor`
    /// returns `None` for sites contributing nothing (the candidate's
    /// home site, quarantined sites, undelivered slots).
    pub fn fold_survival(&self, init: f64, mut factor: impl FnMut(usize) -> Option<f64>) -> f64 {
        let mut global = init;
        for x in self.iter() {
            if let Some(s) = factor(x) {
                global *= s;
            }
        }
        global
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_every_site_ascending() {
        let order = SiteOrder::new(5);
        assert_eq!(order.len(), 5);
        assert!(!order.is_empty());
        assert!(SiteOrder::new(0).is_empty());
        assert_eq!(order.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn verify_passes_ordered_replies_through() {
        let order = SiteOrder::new(4);
        let replies = vec![(0, "a"), (2, "b"), (3, "c")];
        assert_eq!(order.verify(replies.clone()), replies);
        assert_eq!(order.verify(Vec::<(usize, ())>::new()), vec![]);
    }

    #[test]
    #[should_panic(expected = "ascending site order")]
    #[cfg(debug_assertions)]
    fn verify_rejects_reordered_replies() {
        SiteOrder::new(4).verify(vec![(2, ()), (1, ())]);
    }

    #[test]
    #[should_panic(expected = "ascending site order")]
    #[cfg(debug_assertions)]
    fn verify_rejects_out_of_range_sites() {
        SiteOrder::new(2).verify(vec![(0, ()), (5, ())]);
    }

    #[test]
    fn fold_groups_left_to_right_ascending() {
        // The grouping matters: ((init × s0) × s2) with s1 skipped.
        let factors = [Some(0.3), None, Some(0.7)];
        let order = SiteOrder::new(3);
        let folded = order.fold_survival(0.9, |x| factors[x]);
        assert_eq!(folded.to_bits(), ((0.9_f64 * 0.3) * 0.7).to_bits());
    }
}
