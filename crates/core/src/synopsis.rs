//! Grid synopses: the "data synopsis" alternative the paper's Section 5.2
//! dismisses as too bandwidth-hungry — built so the claim can be measured.
//!
//! A site summarizes its database as a uniform grid over its bounding box;
//! each cell stores the survival product `∏ (1 − P(t))` of the tuples
//! whose values fall inside it. The server can then *locally* upper-bound
//! the survival product of any foreign point `p` at that site:
//!
//! ```text
//! survival_x(p)  <=  ∏_{cells entirely inside p's dominance region} cell_survival
//! ```
//!
//! because every tuple in a fully-dominating cell is a confirmed dominator
//! of `p` (a subset of the true dominators, so the product is an upper
//! bound). Full-space queries answer in `O(1)` via a precomputed prefix
//! product; subspace queries fall back to a cell scan.
//!
//! e-DSUD with synopses (`QueryConfig::synopsis`) expunges candidates with
//! these bounds in addition to the paper's free-information bounds — and
//! the synopsis transfer itself is charged its honest tuple-equivalent
//! bandwidth, so the ablation bench can show where (if anywhere) the trade
//! pays off.

use dsud_net::SynopsisMsg;
use dsud_uncertain::{SubspaceMask, UncertainTuple};

/// Builds a grid synopsis over the given tuples.
///
/// Returns `None` for an empty input (an empty site bounds everything by
/// 1 anyway). `resolution` is clamped into `[2, 32]` and the total cell
/// count is capped at 65,536 by reducing the effective resolution for high
/// dimensionalities.
pub fn build_synopsis<'a, I>(tuples: I, dims: usize, resolution: u16) -> Option<SynopsisMsg>
where
    I: IntoIterator<Item = &'a UncertainTuple> + Clone,
{
    let mut lower = vec![f64::INFINITY; dims];
    let mut upper = vec![f64::NEG_INFINITY; dims];
    let mut any = false;
    for t in tuples.clone() {
        any = true;
        for (d, &v) in t.values().iter().enumerate() {
            lower[d] = lower[d].min(v);
            upper[d] = upper[d].max(v);
        }
    }
    if !any {
        return None;
    }
    // Degenerate extents still need positive cell widths.
    for d in 0..dims {
        if upper[d] <= lower[d] {
            upper[d] = lower[d] + 1.0;
        }
    }
    let mut resolution = resolution.clamp(2, 32) as usize;
    while (resolution as f64).powi(dims as i32) > 65_536.0 && resolution > 2 {
        resolution -= 1;
    }

    let mut cells = vec![1.0f64; resolution.pow(dims as u32)];
    for t in tuples {
        let mut idx = 0usize;
        for d in 0..dims {
            let w = (upper[d] - lower[d]) / resolution as f64;
            let c = (((t.values()[d] - lower[d]) / w) as usize).min(resolution - 1);
            idx = idx * resolution + c;
        }
        cells[idx] *= t.prob().complement();
    }
    Some(SynopsisMsg { dims: dims as u16, resolution: resolution as u16, lower, upper, cells })
}

/// Server-side view of one site's synopsis with a precomputed prefix
/// product for `O(1)` full-space bounds.
#[derive(Debug, Clone)]
pub struct SynopsisBound {
    msg: SynopsisMsg,
    /// `prefix[i] = ∏ cells[j]` over all cells `j` whose index is `<= i`
    /// componentwise.
    prefix: Vec<f64>,
}

impl SynopsisBound {
    /// Prepares a received synopsis for querying.
    pub fn new(msg: SynopsisMsg) -> Self {
        let d = msg.dims as usize;
        let r = msg.resolution as usize;
        let mut prefix = msg.cells.clone();
        // Standard multidimensional prefix "sum" in product form: sweep
        // one axis at a time.
        let mut stride = 1usize;
        for _axis in 0..d {
            // For the axis with this stride, accumulate along it.
            let axis_len = r;
            let total = prefix.len();
            for i in 0..total {
                let coord = (i / stride) % axis_len;
                if coord > 0 {
                    prefix[i] *= prefix[i - stride];
                }
            }
            stride *= axis_len;
        }
        SynopsisBound { msg, prefix }
    }

    /// Upper bound on the site's survival product for `point`, over the
    /// dimensions in `mask`.
    pub fn survival_bound(&self, point: &[f64], mask: SubspaceMask) -> f64 {
        let d = self.msg.dims as usize;
        let r = self.msg.resolution as usize;
        if mask.len() == d && mask.max_dim() == Some(d - 1) {
            return self.full_space_bound(point);
        }
        // Subspace fallback: scan cells; a cell's tuples all dominate the
        // point (on the mask) iff the cell's upper corner is ≤ the point
        // everywhere masked and strictly below it somewhere.
        let mut bound = 1.0;
        for (i, &survival) in self.msg.cells.iter().enumerate() {
            let mut idx = i;
            let mut coords = vec![0usize; d];
            for dim in (0..d).rev() {
                coords[dim] = idx % r;
                idx /= r;
            }
            let mut ok = true;
            let mut strict = false;
            for dim in mask.dims().take_while(|&dim| dim < d) {
                let w = (self.msg.upper[dim] - self.msg.lower[dim]) / r as f64;
                let cell_upper = self.msg.lower[dim] + (coords[dim] + 1) as f64 * w;
                if cell_upper > point[dim] {
                    ok = false;
                    break;
                }
                if cell_upper < point[dim] {
                    strict = true;
                }
            }
            if ok && strict {
                bound *= survival;
            }
        }
        bound
    }

    fn full_space_bound(&self, point: &[f64]) -> f64 {
        let d = self.msg.dims as usize;
        let r = self.msg.resolution as usize;
        // Dominating cells are exactly those with index <= c_j − 1 on
        // every axis, where c_j is the point's cell coordinate: their
        // upper corners sit at or below the point. Require strictness in
        // at least one axis (skip the bound when the point lies exactly on
        // a grid corner in every dimension — conservative).
        let mut idx = 0usize;
        let mut strict = false;
        for (dim, &p_dim) in point.iter().enumerate().take(d) {
            let w = (self.msg.upper[dim] - self.msg.lower[dim]) / r as f64;
            let offset = (p_dim - self.msg.lower[dim]) / w;
            if offset < 1.0 {
                return 1.0; // no fully dominating cells on this axis
            }
            let c = (offset.floor() as usize).min(r);
            if p_dim > self.msg.lower[dim] + c as f64 * w {
                strict = true;
            }
            idx = idx * r + (c - 1).min(r - 1);
        }
        if !strict {
            return 1.0;
        }
        // `idx` was accumulated most-significant-axis-first, matching the
        // build order in `build_synopsis`.
        self.prefix[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{Probability, TupleId, UncertainDb};

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn random_tuples(n: usize, dims: usize, seed: u64) -> Vec<UncertainTuple> {
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                let values = (0..dims).map(|_| next() * 100.0).collect();
                let p = (next() * 0.99 + 0.005).clamp(0.005, 1.0);
                tuple(i as u64, values, p)
            })
            .collect()
    }

    #[test]
    fn bound_is_a_valid_upper_bound() {
        for dims in [2usize, 3] {
            let tuples = random_tuples(400, dims, dims as u64);
            let db = UncertainDb::from_tuples(dims, tuples.clone()).unwrap();
            let syn = build_synopsis(tuples.iter(), dims, 8).unwrap();
            let bound = SynopsisBound::new(syn);
            let mask = SubspaceMask::full(dims).unwrap();
            for probe in random_tuples(200, dims, 99) {
                let truth = db.survival_product(probe.values());
                let b = bound.survival_bound(probe.values(), mask);
                assert!(
                    b >= truth - 1e-12,
                    "dims {dims}: bound {b} below truth {truth} at {:?}",
                    probe.values()
                );
            }
        }
    }

    #[test]
    fn bound_is_nontrivial_for_interior_points() {
        let tuples = random_tuples(1_000, 2, 7);
        let db = UncertainDb::from_tuples(2, tuples.clone()).unwrap();
        let syn = build_synopsis(tuples.iter(), 2, 8).unwrap();
        let bound = SynopsisBound::new(syn);
        let mask = SubspaceMask::full(2).unwrap();
        // A point deep in the interior has many dominating cells.
        let p = [90.0, 90.0];
        let b = bound.survival_bound(&p, mask);
        let truth = db.survival_product(&p);
        assert!(b < 1e-3, "expected a crushing bound, got {b}");
        assert!(b >= truth - 1e-12);
    }

    #[test]
    fn subspace_bound_matches_scan_semantics() {
        let tuples = random_tuples(300, 3, 17);
        let db = UncertainDb::from_tuples(3, tuples.clone()).unwrap();
        let syn = build_synopsis(tuples.iter(), 3, 6).unwrap();
        let bound = SynopsisBound::new(syn);
        let mask = SubspaceMask::from_dims(&[0, 2]).unwrap();
        for probe in random_tuples(50, 3, 5) {
            let truth = db.survival_product_in(probe.values(), mask);
            let b = bound.survival_bound(probe.values(), mask);
            assert!(b >= truth - 1e-12, "bound {b} below truth {truth}");
        }
    }

    #[test]
    fn prefix_product_matches_naive_cell_product() {
        let tuples = random_tuples(500, 2, 23);
        let syn = build_synopsis(tuples.iter(), 2, 8).unwrap();
        let bound = SynopsisBound::new(syn.clone());
        let mask = SubspaceMask::full(2).unwrap();
        for probe in random_tuples(100, 2, 31) {
            let fast = bound.survival_bound(probe.values(), mask);
            // Naive: multiply cells whose upper corner strictly dominates.
            let r = syn.resolution as usize;
            let mut slow = 1.0;
            for (i, &s) in syn.cells.iter().enumerate() {
                let (ci, cj) = (i / r, i % r);
                let w0 = (syn.upper[0] - syn.lower[0]) / r as f64;
                let w1 = (syn.upper[1] - syn.lower[1]) / r as f64;
                let up0 = syn.lower[0] + (ci + 1) as f64 * w0;
                let up1 = syn.lower[1] + (cj + 1) as f64 * w1;
                let p = probe.values();
                if up0 <= p[0] && up1 <= p[1] && (up0 < p[0] || up1 < p[1]) {
                    slow *= s;
                }
            }
            // The fast path uses floor-cell indexing which may include one
            // fewer boundary cell row; both must stay valid upper bounds
            // and agree within the boundary-row factor. Exact agreement
            // holds off-boundary, which random data is almost surely.
            assert!((fast - slow).abs() < 1e-9 || fast >= slow, "fast {fast} vs slow {slow}");
        }
    }

    #[test]
    fn empty_input_yields_none() {
        assert!(build_synopsis([].iter(), 2, 8).is_none());
    }

    #[test]
    fn degenerate_extent_is_handled() {
        let tuples = [tuple(0, vec![5.0, 5.0], 0.5), tuple(1, vec![5.0, 9.0], 0.5)];
        let syn = build_synopsis(tuples.iter(), 2, 8).unwrap();
        assert!(syn.upper[0] > syn.lower[0]);
        let bound = SynopsisBound::new(syn);
        let mask = SubspaceMask::full(2).unwrap();
        assert!(bound.survival_bound(&[100.0, 100.0], mask) <= 0.5 + 1e-12);
    }

    #[test]
    fn cell_count_is_capped() {
        let tuples = random_tuples(50, 5, 3);
        let syn = build_synopsis(tuples.iter(), 5, 32).unwrap();
        assert!(syn.cells.len() <= 65_536, "{} cells", syn.cells.len());
    }
}
