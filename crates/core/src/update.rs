//! Continuous skyline maintenance under updates (paper Section 5.4).
//!
//! After the initial global skyline `SKY(H)` has been computed, local
//! databases keep changing. Two strategies are implemented:
//!
//! * **Naive** — apply updates locally and re-run e-DSUD from scratch
//!   whenever fresh results are needed;
//! * **Incremental** — replicate `SKY(H)` at every site so each site can
//!   decide *locally* whether an update can affect the global result, and
//!   repair only what changed:
//!   * an **insert** of `t` is purely local unless `t`'s own local skyline
//!     probability reaches `q` (it may be a new member) or `t` dominates a
//!     replica member (whose probability shrinks by `(1 − P(t))` and may
//!     fall below `q`);
//!   * a **delete** of `t` raises the probability of every tuple `t`
//!     dominated, so the server re-evaluates exactly `t`'s dominance
//!     region (a [`dsud_net::Message::RegionQuery`] per site) and restores
//!     member probabilities by dividing the `(1 − P(t))` factor back out.
//!
//! Deviation from the paper, documented in DESIGN.md: the paper treats a
//! deletion of a non-member, non-representative tuple as purely local,
//! which can miss promotions of tuples the deleted one was suppressing.
//! We always notify on delete (one tuple) and run the region re-evaluation,
//! keeping the incremental result *exactly* equal to a from-scratch
//! recomputation — which the test suite verifies.

use serde::{Deserialize, Serialize};

use dsud_net::{BandwidthMeter, Link, Message, TupleMsg};
use dsud_uncertain::{dominates_in, SkylineEntry, SubspaceMask, UncertainTuple};

use crate::cluster::expect_survival;
use crate::{edsud, BoundMode, Error, QueryOutcome, WireFormat};

/// One update at a local site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum UpdateOp {
    /// Insert the tuple at its home site.
    Insert(UncertainTuple),
    /// Delete the tuple from its home site.
    Delete(UncertainTuple),
}

impl UpdateOp {
    /// Home site of the update.
    pub fn site(&self) -> u32 {
        match self {
            UpdateOp::Insert(t) | UpdateOp::Delete(t) => t.id().site.0,
        }
    }
}

/// A current member of `SKY(H)` with its exact global probability.
#[derive(Debug, Clone)]
struct Member {
    msg: TupleMsg,
    prob: f64,
}

/// Server-side state of the incremental maintenance protocol.
#[derive(Debug)]
pub struct Maintainer {
    q: f64,
    mask: SubspaceMask,
    bound: BoundMode,
    members: Vec<Member>,
    /// Tuple ids currently present in the site replicas. A superset of the
    /// member ids: evictions leave replicas stale on purpose (sound, see
    /// `handle_insert`), but *deletions* of replicated tuples must be
    /// broadcast or the sites would reason about tuples that no longer
    /// exist.
    replicated: std::collections::HashSet<dsud_uncertain::TupleId>,
    /// Candidates the server has already evaluated (members or not): their
    /// existential probabilities are confirmed dominator factors that
    /// pre-filter later evaluations for free. Bounded FIFO.
    seen: std::collections::VecDeque<TupleMsg>,
    /// Wire layout for bulk replica broadcasts (a pure transport choice;
    /// per-tuple maintenance messages always use the legacy encoding).
    wire: WireFormat,
}

/// Upper bound on the evaluated-candidate cache.
const SEEN_CAP: usize = 4096;

impl Maintainer {
    /// Runs the initial e-DSUD query and replicates `SKY(H)` to every site.
    ///
    /// Returns the maintainer plus the bootstrap query outcome.
    ///
    /// # Errors
    ///
    /// Propagates query failures ([`Error::InvalidThreshold`],
    /// [`Error::ProtocolViolation`]).
    pub fn bootstrap(
        links: &mut [Box<dyn Link>],
        meter: &BandwidthMeter,
        q: f64,
        mask: SubspaceMask,
        bound: BoundMode,
    ) -> Result<(Self, QueryOutcome), Error> {
        let wire = WireFormat::default();
        let outcome = edsud::run(links, meter, q, mask, bound, None)?;
        let members: Vec<Member> = outcome
            .skyline
            .iter()
            .map(|e| Member { msg: TupleMsg::new(&e.tuple, e.probability), prob: e.probability })
            .collect();
        let replica: Vec<TupleMsg> = members.iter().map(|m| m.msg.clone()).collect();
        sync_replicas(links, &replica, wire)?;
        let replicated = replica.iter().map(|m| m.id).collect();
        let seen = replica.iter().cloned().collect();
        Ok((Maintainer { q, mask, bound, members, replicated, seen, wire }, outcome))
    }

    /// Switches the layout used for bulk replica broadcasts. Both layouts
    /// carry identical tuples, so the maintained skyline is unaffected;
    /// only the byte counts differ.
    #[must_use]
    pub fn wire_format(mut self, wire: WireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// The maintained global skyline, sorted by tuple id.
    pub fn skyline(&self) -> Vec<SkylineEntry> {
        let mut out: Vec<SkylineEntry> = self
            .members
            .iter()
            .map(|m| SkylineEntry { tuple: m.msg.to_tuple(), probability: m.prob })
            .collect();
        out.sort_by_key(|e| e.tuple.id());
        out
    }

    /// Applies one update incrementally.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProtocolViolation`] if a site misbehaves.
    pub fn apply_incremental(
        &mut self,
        links: &mut [Box<dyn Link>],
        op: &UpdateOp,
    ) -> Result<(), Error> {
        let home = op.site() as usize;
        let inject = match op {
            UpdateOp::Insert(t) => Message::InjectInsert(TupleMsg::new(t, 0.0)),
            UpdateOp::Delete(t) => Message::InjectDelete(TupleMsg::new(t, 0.0)),
        };
        match links[home].call(inject).map_err(|e| site_failed(home, e))? {
            Message::Ack => Ok(()), // purely local
            Message::NotifyInsert(t) => self.handle_insert(links, t),
            Message::NotifyDelete(t) => self.handle_delete(links, t),
            _ => Err(Error::ProtocolViolation {
                site: home as u32,
                what: "unexpected update notification",
            }),
        }
    }

    /// Applies one update without incremental repair (the naive strategy's
    /// first half): the site's tree changes, the notification is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SiteFailed`] if the link fails.
    pub fn apply_local_only(links: &mut [Box<dyn Link>], op: &UpdateOp) -> Result<(), Error> {
        let home = op.site() as usize;
        let inject = match op {
            UpdateOp::Insert(t) => Message::InjectInsert(TupleMsg::new(t, 0.0)),
            UpdateOp::Delete(t) => Message::InjectDelete(TupleMsg::new(t, 0.0)),
        };
        links[home].call(inject).map_err(|e| site_failed(home, e))?;
        Ok(())
    }

    /// The naive strategy's second half: recompute `SKY(H)` from scratch
    /// with e-DSUD and resynchronize the replicas.
    ///
    /// # Errors
    ///
    /// Propagates query failures.
    pub fn refresh_naive(
        &mut self,
        links: &mut [Box<dyn Link>],
        meter: &BandwidthMeter,
    ) -> Result<QueryOutcome, Error> {
        let outcome = edsud::run(links, meter, self.q, self.mask, self.bound, None)?;
        self.members = outcome
            .skyline
            .iter()
            .map(|e| Member { msg: TupleMsg::new(&e.tuple, e.probability), prob: e.probability })
            .collect();
        let replica: Vec<TupleMsg> = self.members.iter().map(|m| m.msg.clone()).collect();
        sync_replicas(links, &replica, self.wire)?;
        self.replicated = replica.iter().map(|m| m.id).collect();
        self.seen = replica.into_iter().collect();
        Ok(outcome)
    }

    fn handle_insert(&mut self, links: &mut [Box<dyn Link>], t: TupleMsg) -> Result<(), Error> {
        // Discount members the new tuple dominates; evict those that sink
        // below the threshold. Evicted tuples still *exist* in the data, so
        // the site replicas are deliberately left stale: a superset replica
        // only makes the sites' update filters more conservative (their
        // bounds multiply factors of real tuples), never unsound — and it
        // saves an m-tuple broadcast per eviction.
        let factor = 1.0 - t.prob;
        self.members.retain_mut(|m| {
            if dominates_in(&t.values, &m.msg.values, self.mask) {
                m.prob *= factor;
                m.msg.local_prob = m.prob;
                if m.prob < self.q {
                    return false;
                }
            }
            true
        });

        // The new tuple itself may be a member; pre-filter with confirmed
        // dominators before paying an (m − 1)-tuple evaluation.
        if t.local_prob >= self.q && self.seen_bound(&t) >= self.q {
            let global = self.evaluate(links, &t)?;
            if global >= self.q {
                self.add_member(links, t.clone(), global)?;
            }
            self.remember(t);
        }
        Ok(())
    }

    /// Sound upper bound on a candidate's global probability from the
    /// evaluated-candidate cache: every cached foreign tuple dominating it
    /// is a confirmed dominator contributing `(1 − P)`.
    ///
    /// Under [`crate::UpdatePolicy::Exact`] the cache is kept free of
    /// deleted tuples, so the bound is exact-sound; under
    /// [`crate::UpdatePolicy::Replica`] phantom entries can only cause
    /// extra rejections — the same incompleteness direction that policy
    /// already accepts.
    fn seen_bound(&self, t: &TupleMsg) -> f64 {
        let mut bound = t.local_prob;
        for c in &self.seen {
            if c.id != t.id
                && c.id.site != t.id.site
                && dominates_in(&c.values, &t.values, self.mask)
            {
                bound *= 1.0 - c.prob;
                if bound < self.q {
                    break;
                }
            }
        }
        bound
    }

    fn remember(&mut self, t: TupleMsg) {
        // One entry per tuple: a duplicate would apply its survival factor
        // twice in `seen_bound`, breaking the upper-bound property.
        self.seen.retain(|x| x.id != t.id);
        if self.seen.len() >= SEEN_CAP {
            self.seen.pop_front();
        }
        self.seen.push_back(t);
    }

    fn handle_delete(&mut self, links: &mut [Box<dyn Link>], t: TupleMsg) -> Result<(), Error> {
        // Drop the tuple itself if it was a member, and purge it from the
        // site replicas if it still sits there (it may be an
        // evicted-but-still-replicated tuple).
        if let Some(pos) = self.members.iter().position(|m| m.msg.id == t.id) {
            self.members.remove(pos);
        }
        if self.replicated.remove(&t.id) {
            broadcast_all(links, Message::ReplicaRemove(t.clone()))?;
        }
        self.seen.retain(|c| c.id != t.id);

        // Restore the (1 − P(t)) factor of members the tuple dominated.
        // A member's probability is strictly positive, so the factor is too
        // and the division is well defined.
        let factor = 1.0 - t.prob;
        for m in &mut self.members {
            if dominates_in(&t.values, &m.msg.values, self.mask) {
                m.prob /= factor;
                m.msg.local_prob = m.prob;
            }
        }

        // Re-evaluate the dominance region: only tuples the deleted one
        // dominated can have gained probability. All sites scan their
        // regions concurrently.
        let mut candidates: Vec<TupleMsg> = Vec::new();
        for (x, reply) in dsud_net::broadcast(links, |_| true, &Message::RegionQuery(t.clone())) {
            match reply.map_err(|e| site_failed(x, e))? {
                Message::RegionReply(mut tuples) => candidates.append(&mut tuples),
                Message::RegionReplyC(block) => candidates.extend(block.to_msgs()),
                _ => {
                    return Err(Error::ProtocolViolation {
                        site: x as u32,
                        what: "expected RegionReply",
                    })
                }
            }
        }
        for c in candidates {
            if self.members.iter().any(|m| m.msg.id == c.id) {
                continue;
            }
            if self.seen_bound(&c) < self.q {
                continue;
            }
            let global = self.evaluate(links, &c)?;
            if global >= self.q {
                self.add_member(links, c.clone(), global)?;
            }
            self.remember(c);
        }
        Ok(())
    }

    /// Exact global probability of a candidate: its fresh local probability
    /// times the survival products of all other sites (Lemma 1), gathered
    /// with a concurrent fan-out.
    fn evaluate(&self, links: &mut [Box<dyn Link>], t: &TupleMsg) -> Result<f64, Error> {
        let mut global = t.local_prob;
        let home = t.id.site.0 as usize;
        for (x, reply) in dsud_net::broadcast(links, |x| x != home, &Message::Feedback(t.clone())) {
            let (survival, _) = expect_survival(x as u32, reply.map_err(|e| site_failed(x, e))?)?;
            global *= survival;
        }
        Ok(global)
    }

    fn add_member(
        &mut self,
        links: &mut [Box<dyn Link>],
        mut msg: TupleMsg,
        global: f64,
    ) -> Result<(), Error> {
        msg.local_prob = global;
        broadcast_all(links, Message::ReplicaAdd(msg.clone()))?;
        self.replicated.insert(msg.id);
        self.members.push(Member { msg, prob: global });
        Ok(())
    }
}

fn site_failed(site: usize, source: dsud_net::LinkError) -> Error {
    Error::SiteFailed { site: site as u32, source }
}

/// Maintenance runs under strict semantics: a transport failure anywhere
/// in a replica broadcast aborts the batch, because half-synced replicas
/// would silently desynchronize the sites' update filters.
fn broadcast_all(links: &mut [Box<dyn Link>], msg: Message) -> Result<(), Error> {
    for (x, reply) in dsud_net::broadcast(links, |_| true, &msg) {
        reply.map_err(|e| site_failed(x, e))?;
    }
    Ok(())
}

fn sync_replicas(
    links: &mut [Box<dyn Link>],
    replica: &[TupleMsg],
    wire: WireFormat,
) -> Result<(), Error> {
    for (i, link) in links.iter_mut().enumerate() {
        let msg = match wire {
            WireFormat::Legacy => Message::ReplicaSync(replica.to_vec()),
            WireFormat::Columnar => Message::ReplicaSyncC(dsud_net::TupleBlock::from_msgs(replica)),
        };
        link.call(msg).map_err(|e| site_failed(i, e))?;
    }
    Ok(())
}

/// Convenience entry point used by the Fig. 14 experiment: applies a batch
/// of updates under the chosen strategy and returns the maintained skyline.
///
/// # Errors
///
/// Propagates protocol failures.
pub fn apply_batch(
    maintainer: &mut Maintainer,
    links: &mut [Box<dyn Link>],
    meter: &BandwidthMeter,
    ops: &[UpdateOp],
    incremental: bool,
) -> Result<Vec<SkylineEntry>, Error> {
    if incremental {
        for op in ops {
            maintainer.apply_incremental(links, op)?;
        }
    } else {
        for op in ops {
            Maintainer::apply_local_only(links, op)?;
        }
        maintainer.refresh_naive(links, meter)?;
    }
    Ok(maintainer.skyline())
}

// The heavier integration tests for this module (equivalence of both
// strategies against a from-scratch recomputation on random workloads)
// live in `tests/updates_equivalence.rs`.
#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{Probability, TupleId};

    fn tuple(site: u32, seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(site, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    #[test]
    fn update_op_reports_home_site() {
        let t = tuple(3, 0, vec![1.0, 1.0], 0.5);
        assert_eq!(UpdateOp::Insert(t.clone()).site(), 3);
        assert_eq!(UpdateOp::Delete(t).site(), 3);
    }
}
