//! Skyline-cardinality and feedback-cost estimation (paper Eqs. 6–8).
//!
//! Section 4 of the paper motivates the feedback-selection mechanism with a
//! cost analysis: the expected number of skyline tuples in a
//! `d`-dimensional uncertain database of cardinality `N` (tuples uniform,
//! dimensions independent, probabilities uniform over `[0, 1]`) is
//!
//! ```text
//! H(d, N) ≈ Σ_{n=0}^{N}  ln^{d−1}(n) / d!  ×  P(n)          (Eq. 6)
//! ```
//!
//! where `P(n)` is the probability that exactly `n` tuples materialize.
//! Feeding every skyline tuple back to all `m − 1` other sites then costs
//! `N_back = (m−1) × H(d, N)` tuples (Eq. 7), while the local skylines
//! shipped up cost `N_local = (m−1) × H(d, N/m)` (Eq. 8) — so blind
//! feedback is *more* expensive than no feedback, which is why e-DSUD
//! selects feedback by dominance power instead.
//!
//! With `P(t) ~ U(0,1]`, each tuple's uniform existence probability
//! marginalizes to a fair coin, so the materialized count is exactly
//! `Binomial(N, 1/2)`. For small `N` we enumerate that distribution
//! directly; for large `N` we approximate `P(n)` with a normal law and
//! integrate over ±6σ, which agrees with the exact sum to floating
//! precision for every `N` the experiments use.

use serde::{Deserialize, Serialize};

/// Below this cardinality the Gaussian smear is a poor stand-in for the
/// binomial law (at `N = 2` it is off by a quarter), so the expectation is
/// computed by exact enumeration instead.
const EXACT_N: usize = 64;

/// Expected skyline cardinality `H(d, N)` of Eq. (6).
///
/// Returns 0 for `N == 0` and `d == 0`.
///
/// # Example
///
/// ```
/// use dsud_core::estimate::expected_skyline_count;
///
/// // 2-d: H ≈ ln(N/2) / 2! — a few dozen tuples even at N = 2M.
/// let h = expected_skyline_count(2, 2_000_000);
/// assert!(h > 5.0 && h < 10.0, "{h}");
/// ```
pub fn expected_skyline_count(d: usize, n: usize) -> f64 {
    if d == 0 || n == 0 {
        return 0.0;
    }
    if n <= EXACT_N {
        return exact_expected(d, n);
    }
    let mean = n as f64 / 2.0;
    let std = (n as f64 / 6.0).sqrt();
    // Integrate kernel(n') × Normal(mean, std)(n') over ±6σ.
    let lo = ((mean - 6.0 * std).floor().max(1.0)) as usize;
    let hi = ((mean + 6.0 * std).ceil().min(n as f64)) as usize;
    let mut acc = 0.0;
    let mut weight = 0.0;
    for k in lo..=hi {
        let z = (k as f64 - mean) / std;
        let w = (-0.5 * z * z).exp();
        acc += kernel(d, k as f64) * w;
        weight += w;
    }
    if weight == 0.0 {
        kernel(d, mean.max(1.0))
    } else {
        acc / weight
    }
}

/// Exact Eq. (6) for small `N`: the materialized count is
/// `Binomial(n, 1/2)` (uniform existence probabilities marginalize to fair
/// coins), so sum the kernel over every count with its binomial weight,
/// including the empty world at `k = 0` where the kernel is zero.
fn exact_expected(d: usize, n: usize) -> f64 {
    let scale = 0.5f64.powi(n as i32);
    let mut binom = 1.0; // C(n, 0), advanced by the Pascal ratio below.
    let mut acc = 0.0;
    for k in 0..=n {
        acc += kernel(d, k as f64) * binom * scale;
        binom = binom * (n - k) as f64 / (k + 1) as f64;
    }
    acc
}

/// The paper's per-world skyline cardinality `ln^{d−1}(n) / d!`.
fn kernel(d: usize, n: f64) -> f64 {
    if n < 1.0 {
        return 0.0;
    }
    let mut fact = 1.0;
    for i in 2..=d {
        fact *= i as f64;
    }
    n.ln().powi(d as i32 - 1).max(if d == 1 { 1.0 } else { 0.0 }) / fact
}

/// Estimated feedback cost `N_back` of Eq. (7): every expected skyline
/// tuple broadcast to the `m − 1` other sites.
pub fn feedback_cost(m: usize, d: usize, n: usize) -> f64 {
    (m.saturating_sub(1)) as f64 * expected_skyline_count(d, n)
}

/// Estimated local-skyline upload volume `N_local` of Eq. (8).
///
/// Note: the paper writes an `(m − 1)` factor here; summing the `m` equal
/// local skylines would give `m × H(d, N/m)`. We follow the paper's
/// formula verbatim — the comparison `N_back > N_local` it supports holds
/// either way, because `H(d, N) > H(d, N/m)` for `m > 1`.
pub fn local_upload_cost(m: usize, d: usize, n: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    (m.saturating_sub(1)) as f64 * expected_skyline_count(d, n / m)
}

/// Summary of the Section-4 cost analysis for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostAnalysis {
    /// Expected global skyline cardinality `H(d, N)`.
    pub expected_skylines: f64,
    /// Eq. (7) feedback cost.
    pub n_back: f64,
    /// Eq. (8) local-skyline volume.
    pub n_local: f64,
}

/// Computes the full Section-4 analysis.
pub fn analyze(m: usize, d: usize, n: usize) -> CostAnalysis {
    CostAnalysis {
        expected_skylines: expected_skyline_count(d, n),
        n_back: feedback_cost(m, d, n),
        n_local: local_upload_cost(m, d, n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_with_dimensionality() {
        let n = 100_000;
        let mut prev = 0.0;
        for d in 2..=5 {
            let h = expected_skyline_count(d, n);
            assert!(h > prev, "H({d}, {n}) = {h} should exceed {prev}");
            prev = h;
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(expected_skyline_count(0, 100), 0.0);
        assert_eq!(expected_skyline_count(3, 0), 0.0);
        assert_eq!(feedback_cost(1, 3, 1000), 0.0);
        assert_eq!(local_upload_cost(0, 3, 1000), 0.0);
    }

    #[test]
    fn close_to_kernel_at_the_mean() {
        // The kernel is smooth, so the Gaussian smearing barely moves it.
        let n = 1_000_000;
        for d in 2..=5 {
            let smeared = expected_skyline_count(d, n);
            let point = kernel(d, n as f64 / 2.0);
            assert!((smeared - point).abs() / point < 0.01, "d={d}: {smeared} vs {point}");
        }
    }

    #[test]
    fn feedback_exceeds_local_uploads() {
        // The Section-4 conclusion that motivates e-DSUD: naive feedback
        // costs more than shipping all local skylines.
        for m in [40, 60, 80, 100] {
            for d in [2, 3, 4, 5] {
                let a = analyze(m, d, 2_000_000);
                assert!(
                    a.n_back > a.n_local,
                    "m={m} d={d}: N_back {} vs N_local {}",
                    a.n_back,
                    a.n_local
                );
            }
        }
    }

    #[test]
    fn exact_branch_matches_closed_forms() {
        // H(d ≥ 2, 1): the only non-empty world holds one tuple, whose
        // kernel ln^{d−1}(1)/d! is zero.
        assert_eq!(expected_skyline_count(2, 1), 0.0);
        assert_eq!(expected_skyline_count(5, 1), 0.0);
        // H(1, 1): the tuple materializes in half the worlds.
        assert!((expected_skyline_count(1, 1) - 0.5).abs() < 1e-15);
        // H(2, 2): only the both-present world (weight 1/4) has a
        // non-zero kernel, ln(2)/2!.
        let want = 2.0f64.ln() / 2.0 / 4.0;
        assert!((expected_skyline_count(2, 2) - want).abs() < 1e-15);
    }

    #[test]
    fn gaussian_tail_meets_the_exact_branch() {
        // Crossing the enumeration/approximation boundary must not show a
        // step: the Gaussian value one past the seam stays monotone and
        // within a few percent of the exact value at the seam.
        for d in 1..=5 {
            let exact = expected_skyline_count(d, 64);
            let approx = expected_skyline_count(d, 65);
            assert!(approx >= exact - 1e-12, "d={d}: {approx} vs {exact}");
            assert!((approx - exact) / exact.max(1e-12) < 0.05, "d={d}: seam step too large");
        }
    }

    #[test]
    fn one_dimensional_skyline_is_a_single_tuple() {
        // ln^0(n)/1! = 1: in 1-d the expected skyline is one tuple
        // (per materialized world).
        let h = expected_skyline_count(1, 10_000);
        assert!((h - 1.0).abs() < 1e-9, "{h}");
    }
}
