//! The adaptive round planner: a pre-query *plan phase* that sizes
//! `--batch auto` rounds from observed per-site skyline-probability
//! distributions instead of the closed-form Eq. 6 estimator in
//! [`crate::estimate`].
//!
//! With [`PlanMode::Sketch`] the coordinator gathers one mergeable
//! [`SiteSketch`] per physical link right after the Start broadcast —
//! sites build the sketches at load time and keep them updated through the
//! Section 5.4 maintenance path, so the gather costs exactly one compact
//! frame per site. Tree aggregators merge their children's sketches before
//! forwarding: sketch merge is associative (bucket-wise adds and
//! register-wise maxima), so unlike survival-product folds the tree may
//! legally combine them, and the root sees one frame per root link.
//!
//! Planning is a pure *scheduling* decision. The merged sketch's
//! `count_at_least(q)` is a conservative overestimate of the cluster-wide
//! candidate population, and the planner turns it into a batch cap for
//! [`BatchSize::Auto`] rounds; because batching never changes the answer
//! (see `crate::batch` and `tests/batching_determinism.rs`), neither does
//! planning. Any link error or unexpected reply during the gather degrades
//! the plan to the static schedule — it never fails or quarantines a run.

use std::time::Instant;

use dsud_net::{Fanout, Message};
use dsud_obs::{Counter, Recorder};
use dsud_sketch::SiteSketch;
use serde::{Deserialize, Serialize};

use crate::{BatchSize, PlanMode};

/// Smallest batch cap the planner will emit — never below the static
/// [`BatchSize::AUTO_MAX`], so a sketch plan can only deepen rounds, never
/// shrink them below what the static schedule would coalesce.
pub const PLAN_BATCH_MIN: usize = BatchSize::AUTO_MAX;

/// Largest batch cap the planner will emit. Caps coordinator memory for a
/// round's ledger and keeps progressiveness: a round reports nothing until
/// its scatter completes, so unbounded batches would starve the stream.
pub const PLAN_BATCH_MAX: usize = 256;

/// What the plan phase observed and decided, stamped into
/// [`crate::QueryOutcome::plan`] and from there into run reports.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanSummary {
    /// The mode that produced this summary (always [`PlanMode::Sketch`]
    /// today — static runs carry no summary at all).
    pub mode: PlanMode,
    /// Encoded bytes of every sketch frame the root received.
    pub sketch_bytes: u64,
    /// Wall-clock microseconds spent gathering and merging.
    pub plan_us: u64,
    /// The batch cap the planner chose for [`BatchSize::Auto`] rounds;
    /// `None` when the gather degraded and the static schedule was kept.
    pub planned_batch: Option<usize>,
    /// Sketch frames received at the root (one per physical link).
    pub frames: u64,
    /// Sketches folded at the root beyond the first. Aggregator-side
    /// merges ride inside the tree and are not separately counted.
    pub merges: u64,
    /// The merged sketch's conservative candidate-population estimate
    /// `count_at_least(q)` the cap was derived from.
    pub estimated_candidates: u64,
}

/// Turns the merged sketch's candidate-population estimate into a batch
/// cap: `⌈2·√C⌉` clamped to `[PLAN_BATCH_MIN, PLAN_BATCH_MAX]`.
///
/// The square-root shape balances the two frame costs a round pays: a
/// round of `K` candidates ships `O(m + K)` frames instead of the
/// unbatched `O(K·m)`, but the ledger flushes grow with `K`, so `K ∝ √C`
/// spreads a `C`-candidate run over `√C`-ish rounds of `√C`-ish size.
pub fn planned_batch(candidates: u64) -> usize {
    let cap = (2.0 * (candidates as f64).sqrt()).ceil() as usize;
    cap.clamp(PLAN_BATCH_MIN, PLAN_BATCH_MAX)
}

/// Runs the plan phase over the fan-out: one [`Message::SketchRequest`]
/// round-trip per physical link, merged at the root.
///
/// Tolerant by construction: any transport error or non-sketch reply
/// yields a summary with `planned_batch: None`, telling the caller to keep
/// the static schedule. The gather bypasses the round-op FIFO (no rounds
/// are in flight at plan time) and dead tree links answer their recorded
/// error without being re-driven, so a degraded cluster plans over nothing
/// rather than poisoning its links.
pub(crate) fn plan(fan: &mut Fanout<'_>, q: f64, rec: &Recorder) -> PlanSummary {
    let _span = rec.span("plan");
    let started = Instant::now();
    let mut merged: Option<SiteSketch> = None;
    let mut frames = 0u64;
    let mut merges = 0u64;
    let mut degraded = false;
    for reply in fan.gather_sketches() {
        match reply {
            Ok(Message::Sketch(sketch)) => {
                frames += 1;
                merged = Some(match merged.take() {
                    None => *sketch,
                    Some(mut m) => {
                        m.merge(&sketch);
                        merges += 1;
                        m
                    }
                });
            }
            _ => degraded = true,
        }
    }
    rec.add(Counter::SketchMerges, merges);
    let frame_len = 1 + SiteSketch::encoded_len() as u64; // tag byte + body
    let estimated_candidates = merged.as_ref().map_or(0, |m| m.count_at_least(q));
    PlanSummary {
        mode: PlanMode::Sketch,
        sketch_bytes: frames * frame_len,
        plan_us: started.elapsed().as_micros() as u64,
        planned_batch: (!degraded && merged.is_some()).then(|| planned_batch(estimated_candidates)),
        frames,
        merges,
        estimated_candidates,
    }
}

/// The effective batch size after planning: a successful sketch plan caps
/// [`BatchSize::Auto`] rounds at the planned size (acting like
/// `Fixed(cap)`, which the batching contract proves answer-preserving);
/// explicit `Fixed` sizes — a user decision — are never overridden.
pub(crate) fn apply(batch: BatchSize, summary: Option<&PlanSummary>) -> BatchSize {
    match (batch, summary.and_then(|s| s.planned_batch)) {
        (BatchSize::Auto, Some(cap)) => BatchSize::Fixed(cap),
        _ => batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planned_batch_follows_a_clamped_square_root() {
        assert_eq!(planned_batch(0), PLAN_BATCH_MIN);
        assert_eq!(planned_batch(64), PLAN_BATCH_MIN); // 2·8 = 16, exactly the floor
        assert_eq!(planned_batch(100), 20);
        assert_eq!(planned_batch(2_500), 100);
        assert_eq!(planned_batch(1_000_000), PLAN_BATCH_MAX);
        // Monotone in the candidate estimate.
        let caps: Vec<usize> = (0..2_000).step_by(50).map(|c| planned_batch(c as u64)).collect();
        assert!(caps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn apply_only_overrides_auto() {
        let summary = PlanSummary {
            mode: PlanMode::Sketch,
            sketch_bytes: 0,
            plan_us: 0,
            planned_batch: Some(40),
            frames: 1,
            merges: 0,
            estimated_candidates: 400,
        };
        assert_eq!(apply(BatchSize::Auto, Some(&summary)), BatchSize::Fixed(40));
        assert_eq!(apply(BatchSize::Fixed(4), Some(&summary)), BatchSize::Fixed(4));
        assert_eq!(apply(BatchSize::Fixed(1), Some(&summary)), BatchSize::Fixed(1));
        assert_eq!(apply(BatchSize::Auto, None), BatchSize::Auto);
        let degraded = PlanSummary { planned_batch: None, ..summary };
        assert_eq!(apply(BatchSize::Auto, Some(&degraded)), BatchSize::Auto);
    }

    #[test]
    fn summaries_serialize_round_trip() {
        let summary = PlanSummary {
            mode: PlanMode::Sketch,
            sketch_bytes: 1620,
            plan_us: 37,
            planned_batch: Some(16),
            frames: 1,
            merges: 0,
            estimated_candidates: 12,
        };
        let round: PlanSummary =
            serde_json::from_str(&serde_json::to_string(&summary).unwrap()).unwrap();
        assert_eq!(round, summary);
    }
}
