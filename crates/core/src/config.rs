//! Query configuration: the probability threshold `q` (Definition 1), the
//! optional subspace mask, the progressive top-k `limit`, and the e-DSUD
//! feedback-selection [`BoundMode`] (Section 5.2, Observation 2) plus the
//! optional grid-synopsis ablation the paper argues against.

use serde::{Deserialize, Serialize};

use dsud_uncertain::SubspaceMask;

use crate::Error;

/// How e-DSUD bounds the global skyline probability of a queued candidate
/// (the feedback-selection criterion of Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BoundMode {
    /// The paper's bound: for each other site, the tighter of (a) the
    /// accumulated `(1 − P(t))` discounts from already-broadcast dominators
    /// and (b) the Observation-2 transitive factor
    /// `P_sky(t', D_x)/P(t') × (1 − P(t'))` of the site's in-queue
    /// representative `t'` when it dominates the candidate. Reproduces the
    /// worked example of Table 2 exactly.
    #[default]
    Paper,
    /// Ablation: only the broadcast discounts (a) — a strictly looser
    /// bound, expunging later and broadcasting more.
    BroadcastOnly,
}

/// What the coordinator does when a site stays unreachable after its
/// transport's whole retry budget has been spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FailurePolicy {
    /// Abort the query with [`Error::SiteFailed`] naming the dead site.
    /// The default: a strict run either returns the exact answer or no
    /// answer at all.
    #[default]
    Strict,
    /// Quarantine the site and complete the query over the survivors.
    /// The outcome is stamped `degraded` with a per-site status list, and
    /// every reported probability becomes an *upper bound*: the missing
    /// sites' `(1 − P(t'))` survival factors can only shrink it.
    Degrade,
}

impl FailurePolicy {
    /// Stable lowercase name, as accepted by the [`std::str::FromStr`]
    /// impl.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailurePolicy::Strict => "strict",
            FailurePolicy::Degrade => "degrade",
        }
    }
}

impl std::fmt::Display for FailurePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for FailurePolicy {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(FailurePolicy::Strict),
            "degrade" => Ok(FailurePolicy::Degrade),
            _ => Err(Error::InvalidArgument("unknown failure policy (expected strict|degrade)")),
        }
    }
}

/// How many candidates the coordinator coalesces into one
/// [`FeedbackBatch`](dsud_net::Message::FeedbackBatch) frame per
/// Server-Delivery round.
///
/// Batching is a pure transport optimization: the coordinator draws the
/// whole batch from its queue *before* any of the batch's feedback is
/// sent, so results, probabilities, and pruning decisions are bit-identical
/// to [`BatchSize::Fixed`]`(1)` — only message and byte counts change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatchSize {
    /// Ship exactly `K ≥ 1` candidates per round (fewer when the queue
    /// holds fewer eligible candidates). `Fixed(1)` is the classic
    /// one-candidate round of the paper's Section 5.1.
    Fixed(usize),
    /// Grow the batch with the candidate queue: each round ships
    /// `min(queue depth, 16)` candidates, so a deep queue amortizes frames
    /// while a draining queue degrades gracefully to single-candidate
    /// rounds.
    Auto,
}

impl Default for BatchSize {
    fn default() -> Self {
        BatchSize::Fixed(1)
    }
}

impl BatchSize {
    /// Largest batch `auto` mode will coalesce into one frame.
    pub const AUTO_MAX: usize = 16;

    /// The batch budget for a round given the current candidate-queue
    /// depth. Always at least 1.
    pub fn budget(&self, queue_depth: usize) -> usize {
        match self {
            BatchSize::Fixed(k) => (*k).max(1),
            BatchSize::Auto => queue_depth.clamp(1, Self::AUTO_MAX),
        }
    }

    /// Stable lowercase name (`"1"`, `"16"`, `"auto"`), as accepted by the
    /// [`std::str::FromStr`] impl.
    pub fn name(&self) -> String {
        match self {
            BatchSize::Fixed(k) => k.to_string(),
            BatchSize::Auto => "auto".to_string(),
        }
    }
}

impl std::fmt::Display for BatchSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl std::str::FromStr for BatchSize {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "auto" {
            return Ok(BatchSize::Auto);
        }
        match s.parse::<usize>() {
            Ok(k) if k >= 1 => Ok(BatchSize::Fixed(k)),
            _ => Err(Error::InvalidArgument("unknown batch size (expected a count >= 1 or auto)")),
        }
    }
}

/// How many requests the coordinator keeps in flight per link — the
/// `--pipeline` window.
///
/// With a window above one the coordinators run double-buffered: while a
/// round's survival scatter is in flight, the next round's `RequestNext`
/// refills (and e-DSUD expunge probes) are already on the wire, and the
/// completions are folded in ascending site order regardless of arrival.
/// Pipelining is a pure latency optimization: the per-site message
/// sequences and the fold order are unchanged, so results are bit-identical
/// to [`PipelineDepth::Fixed`]`(1)` at every pool size and transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineDepth {
    /// Keep at most `W ≥ 1` requests in flight per link. `Fixed(1)` is the
    /// legacy fully synchronous schedule, byte-for-byte identical to the
    /// pre-pipelining coordinator.
    Fixed(usize),
    /// Let the coordinator pick: resolves to the double-buffered schedule
    /// (window 2), which already achieves the full refill/scatter overlap —
    /// the coordinator never has more than one refill to overlap per
    /// scatter, so deeper windows behave identically.
    Auto,
}

impl Default for PipelineDepth {
    fn default() -> Self {
        PipelineDepth::Fixed(1)
    }
}

impl PipelineDepth {
    /// The per-link in-flight window. Always at least 1; `Auto` resolves
    /// to 2 (see [`PipelineDepth::Auto`]).
    pub fn window(&self) -> usize {
        match self {
            PipelineDepth::Fixed(w) => (*w).max(1),
            PipelineDepth::Auto => 2,
        }
    }

    /// Whether the coordinators may overlap rounds (window above one).
    pub fn overlapped(&self) -> bool {
        self.window() > 1
    }

    /// Stable lowercase name (`"1"`, `"2"`, `"auto"`), as accepted by the
    /// [`std::str::FromStr`] impl.
    pub fn name(&self) -> String {
        match self {
            PipelineDepth::Fixed(w) => w.to_string(),
            PipelineDepth::Auto => "auto".to_string(),
        }
    }
}

impl std::fmt::Display for PipelineDepth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl std::str::FromStr for PipelineDepth {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "auto" {
            return Ok(PipelineDepth::Auto);
        }
        match s.parse::<usize>() {
            Ok(w) if w >= 1 => Ok(PipelineDepth::Fixed(w)),
            _ => Err(Error::InvalidArgument(
                "unknown pipeline depth (expected a window >= 1 or auto)",
            )),
        }
    }
}

/// How the coordinator's links reach the sites — directly (flat) or
/// through a layer of regional aggregators (tree) that merge frames on the
/// way up and fan broadcasts out on the way down.
///
/// The topology is a pure transport optimization: aggregators are stateless
/// scatter-gather proxies that never fold survival products, so the root
/// folds replies in the same ascending site order as a flat run and the
/// answer is bit-identical at every fanout. Only the number of frames (and
/// bytes) crossing the root's own links changes — from `O(m)` per round to
/// `O(root fanout)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Topology {
    /// One direct link per site, the original deployment shape. The
    /// default so pre-topology configs keep their exact link layout.
    Flat,
    /// Group sites under aggregators `F ≥ 2` children at a time, stacking
    /// layers until the root talks to at most `F` links (`O(log_F m)`
    /// depth). Degenerates to flat when the cluster has `≤ F` sites.
    Tree(u32),
    /// Let the coordinator pick: one aggregator layer of `⌈√m⌉`-site
    /// groups, cutting root fan-out to `O(√m)` with a single extra hop.
    Auto,
}

impl Default for Topology {
    fn default() -> Self {
        Topology::Flat
    }
}

impl Topology {
    /// Stable lowercase name (`"flat"`, `"tree:4"`, `"auto"`), as accepted
    /// by the [`std::str::FromStr`] impl.
    pub fn name(&self) -> String {
        match self {
            Topology::Flat => "flat".to_string(),
            Topology::Tree(f) => format!("tree:{f}"),
            Topology::Auto => "auto".to_string(),
        }
    }

    /// Resolves the fan-out plan for an `m`-site cluster.
    pub fn plan(&self, sites: usize) -> dsud_net::FanPlan {
        match self {
            Topology::Flat => dsud_net::FanPlan::flat(sites),
            Topology::Tree(f) => dsud_net::FanPlan::tree(sites, *f as usize),
            Topology::Auto => dsud_net::FanPlan::sqrt_auto(sites),
        }
    }
}

impl std::fmt::Display for Topology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl std::str::FromStr for Topology {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "flat" {
            return Ok(Topology::Flat);
        }
        if s == "auto" {
            return Ok(Topology::Auto);
        }
        if let Some(rest) = s.strip_prefix("tree:") {
            return match rest.parse::<u32>() {
                // A fanout of 0 or 1 merges nothing: every "group" would
                // hold one site and the tree would be flat with extra hops.
                Ok(f) if f >= 2 => Ok(Topology::Tree(f)),
                _ => Err(Error::InvalidArgument(
                    "unknown topology (expected flat|tree:<fanout>=2|auto)",
                )),
            };
        }
        Err(Error::InvalidArgument("unknown topology (expected flat|tree:<fanout>=2|auto)"))
    }
}

/// Which wire layout the coordinator uses for bulk-data frames (batched
/// feedback, batched survival replies, replica synchronization).
///
/// The wire format is a pure transport optimization: both layouts carry
/// exactly the same tuples in the same order, so results, probabilities,
/// progress order, and tuple-traffic accounting are bit-identical — only
/// byte counts (and decode cost) differ. Scalar per-candidate frames are
/// always sent in the legacy row encoding regardless of this setting: the
/// columnar header only pays for itself on multi-row frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum WireFormat {
    /// Row-oriented frames (one length-prefixed tuple record after
    /// another), the original encoding. The default so configs and byte
    /// counts serialized before the columnar layout existed stay valid.
    #[default]
    Legacy,
    /// Fixed-width columnar frames: coordinates as column-major `f64`
    /// lanes plus packed id/probability sections behind one validated
    /// header, decodable into a borrowed view without per-tuple work.
    Columnar,
}

impl WireFormat {
    /// Stable lowercase name, as accepted by the [`std::str::FromStr`]
    /// impl.
    pub fn as_str(&self) -> &'static str {
        match self {
            WireFormat::Legacy => "legacy",
            WireFormat::Columnar => "columnar",
        }
    }

    /// Whether bulk frames use the columnar layout.
    pub fn columnar(&self) -> bool {
        matches!(self, WireFormat::Columnar)
    }
}

impl std::fmt::Display for WireFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for WireFormat {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "legacy" => Ok(WireFormat::Legacy),
            "columnar" => Ok(WireFormat::Columnar),
            _ => Err(Error::InvalidArgument("unknown wire format (expected legacy|columnar)")),
        }
    }
}

/// How the coordinator sizes its rounds (batch budgets, refill shape).
///
/// Planning is a pure scheduling optimization: it only adjusts how many
/// candidates ride each Server-Delivery round when the batch size is
/// [`BatchSize::Auto`], never which tuples qualify. Results,
/// probabilities, progress order, and `RunStats` are bit-identical under
/// either mode — only frame counts (and the one-off plan-phase frames)
/// differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PlanMode {
    /// No plan phase: `--batch auto` uses the fixed queue-clamp heuristic.
    /// The default so configs and frame counts serialized before the plan
    /// phase existed stay valid.
    #[default]
    Static,
    /// Gather one mergeable sketch per site before the first round and
    /// size `--batch auto` budgets from the observed skyline-probability
    /// distribution instead of the Eq. 6 estimator.
    Sketch,
}

impl PlanMode {
    /// Stable lowercase name, as accepted by the [`std::str::FromStr`]
    /// impl.
    pub fn as_str(&self) -> &'static str {
        match self {
            PlanMode::Static => "static",
            PlanMode::Sketch => "sketch",
        }
    }

    /// Whether a plan phase (sketch gather) runs before the first round.
    pub fn sketch(&self) -> bool {
        matches!(self, PlanMode::Sketch)
    }
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for PlanMode {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(PlanMode::Static),
            "sketch" => Ok(PlanMode::Sketch),
            _ => Err(Error::InvalidArgument("unknown plan mode (expected sketch|static)")),
        }
    }
}

/// Configuration of one distributed skyline query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Probability threshold `q ∈ (0, 1]` (Definition 1).
    pub q: f64,
    /// Queried subspace; `None` means the full space of the cluster.
    pub mask: Option<SubspaceMask>,
    /// Bound mode for e-DSUD feedback selection.
    pub bound: BoundMode,
    /// Stop after this many reported results (progressive top-k); `None`
    /// retrieves the complete answer.
    pub limit: Option<usize>,
    /// e-DSUD only: request a grid synopsis of this resolution from every
    /// site at query start and use it for candidate bounding (the
    /// Section 5.2 trade-off the paper argues against — measured by the
    /// ablation benches). `None` uses only the paper's free bounds.
    pub synopsis: Option<u16>,
    /// What to do when a site stays unreachable after retries. Defaults to
    /// [`FailurePolicy::Strict`]; absent in configs serialized before the
    /// field existed, hence the serde default.
    #[serde(default)]
    pub failure: FailurePolicy,
    /// Candidates coalesced per Server-Delivery round. Defaults to
    /// [`BatchSize::Fixed`]`(1)` (the paper's one-candidate round); absent
    /// in configs serialized before the field existed, hence the serde
    /// default. Batching never changes the answer — see [`BatchSize`].
    #[serde(default)]
    pub batch: BatchSize,
    /// Per-link in-flight window for overlapped rounds. Defaults to
    /// [`PipelineDepth::Fixed`]`(1)` (the legacy synchronous schedule);
    /// absent in configs serialized before the field existed, hence the
    /// serde default. Pipelining never changes the answer — see
    /// [`PipelineDepth`].
    #[serde(default)]
    pub pipeline: PipelineDepth,
    /// Wire layout for bulk-data frames. Defaults to [`WireFormat::Legacy`]
    /// (the row encoding every pre-columnar byte count was measured
    /// against); absent in configs serialized before the field existed,
    /// hence the serde default. The wire format never changes the answer —
    /// see [`WireFormat`].
    #[serde(default)]
    pub wire: WireFormat,
    /// Per-query wall-clock deadline in milliseconds. When the deadline
    /// elapses mid-run the coordinator cancels cleanly at the next round
    /// boundary: the partial progressive outcome is returned with its
    /// `cancelled` flag set, links and session state are released
    /// normally, and nothing is cached. `None` (the default, and absent
    /// in configs serialized before the field existed) means no deadline.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Round-planning mode. Defaults to [`PlanMode::Static`] (no plan
    /// phase, the schedule every pre-planner frame count was measured
    /// against); absent in configs serialized before the field existed,
    /// hence the serde default. Planning never changes the answer — see
    /// [`PlanMode`].
    #[serde(default)]
    pub plan: PlanMode,
}

impl QueryConfig {
    /// Creates a full-space query with the paper's default bound mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidThreshold`] if `q` is outside `(0, 1]`.
    pub fn new(q: f64) -> Result<Self, Error> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(Error::InvalidThreshold(q));
        }
        Ok(QueryConfig {
            q,
            mask: None,
            bound: BoundMode::Paper,
            limit: None,
            synopsis: None,
            failure: FailurePolicy::Strict,
            batch: BatchSize::default(),
            pipeline: PipelineDepth::default(),
            wire: WireFormat::default(),
            deadline_ms: None,
            plan: PlanMode::default(),
        })
    }

    /// Selects the site-failure policy.
    pub fn failure_policy(mut self, failure: FailurePolicy) -> Self {
        self.failure = failure;
        self
    }

    /// Selects the candidate batch size per Server-Delivery round.
    pub fn batch_size(mut self, batch: BatchSize) -> Self {
        self.batch = batch;
        self
    }

    /// Selects the per-link in-flight window for overlapped rounds.
    pub fn pipeline_depth(mut self, pipeline: PipelineDepth) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Selects the wire layout for bulk-data frames.
    pub fn wire_format(mut self, wire: WireFormat) -> Self {
        self.wire = wire;
        self
    }

    /// Selects the round-planning mode.
    pub fn plan_mode(mut self, plan: PlanMode) -> Self {
        self.plan = plan;
        self
    }

    /// Sets a per-query wall-clock deadline in milliseconds; the query is
    /// cancelled cleanly (partial progressive outcome, stamped
    /// `cancelled`) when it elapses.
    pub fn deadline(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Restricts the query to a subspace (Section 4's subspace skylines).
    pub fn subspace(mut self, mask: SubspaceMask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Selects the e-DSUD bound mode.
    pub fn bound_mode(mut self, bound: BoundMode) -> Self {
        self.bound = bound;
        self
    }

    /// Requests per-site grid synopses at this resolution and folds them
    /// into the e-DSUD candidate bounds.
    pub fn synopsis(mut self, resolution: u16) -> Self {
        self.synopsis = Some(resolution);
        self
    }

    /// Stops the query after `k` reported results. The progressive
    /// coordinators report in discovery order, so the result is a prefix of
    /// the full run's report stream — the "first k answers" a user watching
    /// the stream would have seen.
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Resolves the effective mask for a `dims`-dimensional cluster.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Subspace`] if an explicit mask selects dimensions
    /// outside the data space.
    pub fn resolve_mask(&self, dims: usize) -> Result<SubspaceMask, Error> {
        match self.mask {
            Some(mask) => {
                mask.validate_for(dims)?;
                Ok(mask)
            }
            None => Ok(SubspaceMask::full(dims)?),
        }
    }
}

/// How a site decides whether a *deletion* must be reported to the server
/// (the update-maintenance protocol of Section 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum UpdatePolicy {
    /// Every deletion is reported (one tuple) and the server re-evaluates
    /// the deleted tuple's dominance region. Keeps the maintained skyline
    /// *exactly* equal to a from-scratch recomputation.
    #[default]
    Exact,
    /// The paper's heuristic: a deletion is reported only when the tuple is
    /// in the site's replica of `SKY(H)`. Much cheaper — non-member
    /// deletions cost zero bandwidth — but promotions of tuples the
    /// deleted one was suppressing are missed, so the maintained skyline is
    /// a *sound subset* of the exact answer (every reported member truly
    /// qualifies; some qualifying tuples may be missing until the next full
    /// query).
    Replica,
}

/// Site-local behaviour switches (ablations and maintenance policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteOptions {
    /// Whether the Local-Pruning phase is active. Disabling it isolates the
    /// value of the feedback mechanism (ablation C in DESIGN.md).
    pub pruning: bool,
    /// Deletion-reporting policy for update maintenance.
    pub update_policy: UpdatePolicy,
    /// Wire layout the site prefers for its own bulk replies (region-query
    /// responses during update maintenance). Feedback replies always answer
    /// in the format of the request, so this only matters for site-initiated
    /// bulk frames. Absent in options serialized before the field existed,
    /// hence the serde default ([`WireFormat::Legacy`]).
    #[serde(default)]
    pub wire: WireFormat,
}

impl Default for SiteOptions {
    fn default() -> Self {
        SiteOptions { pruning: true, update_policy: UpdatePolicy::Exact, wire: WireFormat::Legacy }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_thresholds() {
        for q in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(QueryConfig::new(q).is_err(), "{q}");
        }
        assert!(QueryConfig::new(1.0).is_ok());
    }

    #[test]
    fn resolves_full_mask_by_default() {
        let cfg = QueryConfig::new(0.3).unwrap();
        assert_eq!(cfg.resolve_mask(3).unwrap(), SubspaceMask::full(3).unwrap());
    }

    #[test]
    fn validates_explicit_mask() {
        let cfg =
            QueryConfig::new(0.3).unwrap().subspace(SubspaceMask::from_dims(&[0, 4]).unwrap());
        assert!(cfg.resolve_mask(5).is_ok());
        assert!(matches!(cfg.resolve_mask(2), Err(Error::Subspace(_))));
    }

    #[test]
    fn defaults_are_paper_faithful() {
        let cfg = QueryConfig::new(0.3).unwrap();
        assert_eq!(cfg.bound, BoundMode::Paper);
        assert_eq!(cfg.failure, FailurePolicy::Strict);
        assert!(SiteOptions::default().pruning);
    }

    #[test]
    fn failure_policy_round_trips_through_names() {
        for (name, policy) in
            [("strict", FailurePolicy::Strict), ("degrade", FailurePolicy::Degrade)]
        {
            let parsed: FailurePolicy = name.parse().expect("known policy");
            assert_eq!(parsed, policy);
            assert_eq!(policy.as_str(), name);
        }
        assert!(matches!("lenient".parse::<FailurePolicy>(), Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn configs_without_a_failure_field_deserialize_strict() {
        // A config serialized before the failure policy existed.
        let json = r#"{"q":0.3,"mask":null,"bound":"Paper","limit":null,"synopsis":null}"#;
        let cfg: QueryConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.failure, FailurePolicy::Strict);
        assert_eq!(cfg.batch, BatchSize::Fixed(1));
        assert_eq!(cfg.pipeline, PipelineDepth::Fixed(1));
    }

    #[test]
    fn batch_size_round_trips_through_names() {
        for (name, batch) in
            [("1", BatchSize::Fixed(1)), ("16", BatchSize::Fixed(16)), ("auto", BatchSize::Auto)]
        {
            let parsed: BatchSize = name.parse().expect("known batch size");
            assert_eq!(parsed, batch);
            assert_eq!(batch.name(), name);
            assert_eq!(batch.to_string(), name);
        }
        assert!(matches!("0".parse::<BatchSize>(), Err(Error::InvalidArgument(_))));
        assert!(matches!("many".parse::<BatchSize>(), Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn pipeline_depth_round_trips_through_names() {
        for (name, depth) in [
            ("1", PipelineDepth::Fixed(1)),
            ("8", PipelineDepth::Fixed(8)),
            ("auto", PipelineDepth::Auto),
        ] {
            let parsed: PipelineDepth = name.parse().expect("known pipeline depth");
            assert_eq!(parsed, depth);
            assert_eq!(depth.name(), name);
            assert_eq!(depth.to_string(), name);
        }
        assert!(matches!("0".parse::<PipelineDepth>(), Err(Error::InvalidArgument(_))));
        assert!(matches!("deep".parse::<PipelineDepth>(), Err(Error::InvalidArgument(_))));
    }

    #[test]
    fn wire_format_round_trips_through_names() {
        for (name, wire) in [("legacy", WireFormat::Legacy), ("columnar", WireFormat::Columnar)] {
            let parsed: WireFormat = name.parse().expect("known wire format");
            assert_eq!(parsed, wire);
            assert_eq!(wire.as_str(), name);
            assert_eq!(wire.to_string(), name);
        }
        assert!(matches!("soa".parse::<WireFormat>(), Err(Error::InvalidArgument(_))));
        assert!(WireFormat::Columnar.columnar());
        assert!(!WireFormat::Legacy.columnar());
    }

    #[test]
    fn configs_without_a_wire_field_deserialize_legacy() {
        // Configs and site options serialized before the wire format
        // existed must keep their original (row-encoded) byte behaviour.
        let json = r#"{"q":0.3,"mask":null,"bound":"Paper","limit":null,"synopsis":null}"#;
        let cfg: QueryConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.wire, WireFormat::Legacy);
        let json = r#"{"pruning":true,"update_policy":"Exact"}"#;
        let opts: SiteOptions = serde_json::from_str(json).unwrap();
        assert_eq!(opts.wire, WireFormat::Legacy);
        let cfg = QueryConfig::new(0.3).unwrap().wire_format(WireFormat::Columnar);
        assert_eq!(cfg.wire, WireFormat::Columnar);
    }

    #[test]
    fn plan_mode_round_trips_through_names() {
        for (name, plan) in [("static", PlanMode::Static), ("sketch", PlanMode::Sketch)] {
            let parsed: PlanMode = name.parse().expect("known plan mode");
            assert_eq!(parsed, plan);
            assert_eq!(plan.as_str(), name);
            assert_eq!(plan.to_string(), name);
        }
        assert!(matches!("adaptive".parse::<PlanMode>(), Err(Error::InvalidArgument(_))));
        assert!(PlanMode::Sketch.sketch());
        assert!(!PlanMode::Static.sketch());
    }

    #[test]
    fn configs_without_a_plan_field_deserialize_static() {
        // A config serialized before the plan phase existed must keep the
        // static auto-batch schedule (and its frame counts).
        let json = r#"{"q":0.3,"mask":null,"bound":"Paper","limit":null,"synopsis":null}"#;
        let cfg: QueryConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.plan, PlanMode::Static);
        let cfg = QueryConfig::new(0.3).unwrap().plan_mode(PlanMode::Sketch);
        assert_eq!(cfg.plan, PlanMode::Sketch);
        let round: QueryConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(round.plan, PlanMode::Sketch);
    }

    #[test]
    fn configs_without_a_deadline_field_deserialize_unbounded() {
        // A config serialized before per-query deadlines existed must keep
        // running without one.
        let json = r#"{"q":0.3,"mask":null,"bound":"Paper","limit":null,"synopsis":null}"#;
        let cfg: QueryConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.deadline_ms, None);
        let cfg = QueryConfig::new(0.3).unwrap().deadline(250);
        assert_eq!(cfg.deadline_ms, Some(250));
        let round: QueryConfig =
            serde_json::from_str(&serde_json::to_string(&cfg).unwrap()).unwrap();
        assert_eq!(round.deadline_ms, Some(250));
    }

    #[test]
    fn topology_round_trips_through_names() {
        for (name, topo) in [
            ("flat", Topology::Flat),
            ("tree:2", Topology::Tree(2)),
            ("tree:8", Topology::Tree(8)),
            ("auto", Topology::Auto),
        ] {
            let parsed: Topology = name.parse().expect("known topology");
            assert_eq!(parsed, topo);
            assert_eq!(topo.name(), name);
            assert_eq!(topo.to_string(), name);
        }
        for bad in ["tree:0", "tree:1", "tree:", "tree:-3", "star", "tree:two"] {
            assert!(matches!(bad.parse::<Topology>(), Err(Error::InvalidArgument(_))), "{bad}");
        }
    }

    #[test]
    fn topology_plans_resolve_shapes() {
        assert!(Topology::Flat.plan(64).is_flat());
        assert!(Topology::Tree(4).plan(3).is_flat()); // m <= fanout: nothing to merge
        let plan = Topology::Tree(4).plan(8);
        assert_eq!((plan.sites(), plan.depth(), plan.root_fanout()), (8, 1, 2));
        let plan = Topology::Auto.plan(64);
        assert_eq!((plan.sites(), plan.depth(), plan.root_fanout()), (64, 1, 8));
        assert_eq!(Topology::default(), Topology::Flat);
    }

    #[test]
    fn pipeline_windows_resolve() {
        assert_eq!(PipelineDepth::Fixed(1).window(), 1);
        assert!(!PipelineDepth::Fixed(1).overlapped());
        assert_eq!(PipelineDepth::Fixed(0).window(), 1); // degenerate, clamped
        assert_eq!(PipelineDepth::Fixed(8).window(), 8);
        assert_eq!(PipelineDepth::Auto.window(), 2);
        assert!(PipelineDepth::Auto.overlapped());
    }

    #[test]
    fn batch_budget_follows_queue_depth() {
        assert_eq!(BatchSize::Fixed(1).budget(100), 1);
        assert_eq!(BatchSize::Fixed(4).budget(1), 4);
        assert_eq!(BatchSize::Fixed(0).budget(5), 1); // degenerate, clamped
        assert_eq!(BatchSize::Auto.budget(0), 1);
        assert_eq!(BatchSize::Auto.budget(7), 7);
        assert_eq!(BatchSize::Auto.budget(1000), BatchSize::AUTO_MAX);
    }
}
