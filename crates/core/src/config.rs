//! Query configuration: the probability threshold `q` (Definition 1), the
//! optional subspace mask, the progressive top-k `limit`, and the e-DSUD
//! feedback-selection [`BoundMode`] (Section 5.2, Observation 2) plus the
//! optional grid-synopsis ablation the paper argues against.

use serde::{Deserialize, Serialize};

use dsud_uncertain::SubspaceMask;

use crate::Error;

/// How e-DSUD bounds the global skyline probability of a queued candidate
/// (the feedback-selection criterion of Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BoundMode {
    /// The paper's bound: for each other site, the tighter of (a) the
    /// accumulated `(1 − P(t))` discounts from already-broadcast dominators
    /// and (b) the Observation-2 transitive factor
    /// `P_sky(t', D_x)/P(t') × (1 − P(t'))` of the site's in-queue
    /// representative `t'` when it dominates the candidate. Reproduces the
    /// worked example of Table 2 exactly.
    #[default]
    Paper,
    /// Ablation: only the broadcast discounts (a) — a strictly looser
    /// bound, expunging later and broadcasting more.
    BroadcastOnly,
}

/// Configuration of one distributed skyline query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Probability threshold `q ∈ (0, 1]` (Definition 1).
    pub q: f64,
    /// Queried subspace; `None` means the full space of the cluster.
    pub mask: Option<SubspaceMask>,
    /// Bound mode for e-DSUD feedback selection.
    pub bound: BoundMode,
    /// Stop after this many reported results (progressive top-k); `None`
    /// retrieves the complete answer.
    pub limit: Option<usize>,
    /// e-DSUD only: request a grid synopsis of this resolution from every
    /// site at query start and use it for candidate bounding (the
    /// Section 5.2 trade-off the paper argues against — measured by the
    /// ablation benches). `None` uses only the paper's free bounds.
    pub synopsis: Option<u16>,
}

impl QueryConfig {
    /// Creates a full-space query with the paper's default bound mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidThreshold`] if `q` is outside `(0, 1]`.
    pub fn new(q: f64) -> Result<Self, Error> {
        if !(q > 0.0 && q <= 1.0) {
            return Err(Error::InvalidThreshold(q));
        }
        Ok(QueryConfig { q, mask: None, bound: BoundMode::Paper, limit: None, synopsis: None })
    }

    /// Restricts the query to a subspace (Section 4's subspace skylines).
    pub fn subspace(mut self, mask: SubspaceMask) -> Self {
        self.mask = Some(mask);
        self
    }

    /// Selects the e-DSUD bound mode.
    pub fn bound_mode(mut self, bound: BoundMode) -> Self {
        self.bound = bound;
        self
    }

    /// Requests per-site grid synopses at this resolution and folds them
    /// into the e-DSUD candidate bounds.
    pub fn synopsis(mut self, resolution: u16) -> Self {
        self.synopsis = Some(resolution);
        self
    }

    /// Stops the query after `k` reported results. The progressive
    /// coordinators report in discovery order, so the result is a prefix of
    /// the full run's report stream — the "first k answers" a user watching
    /// the stream would have seen.
    pub fn limit(mut self, k: usize) -> Self {
        self.limit = Some(k);
        self
    }

    /// Resolves the effective mask for a `dims`-dimensional cluster.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Subspace`] if an explicit mask selects dimensions
    /// outside the data space.
    pub fn resolve_mask(&self, dims: usize) -> Result<SubspaceMask, Error> {
        match self.mask {
            Some(mask) => {
                mask.validate_for(dims)?;
                Ok(mask)
            }
            None => Ok(SubspaceMask::full(dims)?),
        }
    }
}

/// How a site decides whether a *deletion* must be reported to the server
/// (the update-maintenance protocol of Section 5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum UpdatePolicy {
    /// Every deletion is reported (one tuple) and the server re-evaluates
    /// the deleted tuple's dominance region. Keeps the maintained skyline
    /// *exactly* equal to a from-scratch recomputation.
    #[default]
    Exact,
    /// The paper's heuristic: a deletion is reported only when the tuple is
    /// in the site's replica of `SKY(H)`. Much cheaper — non-member
    /// deletions cost zero bandwidth — but promotions of tuples the
    /// deleted one was suppressing are missed, so the maintained skyline is
    /// a *sound subset* of the exact answer (every reported member truly
    /// qualifies; some qualifying tuples may be missing until the next full
    /// query).
    Replica,
}

/// Site-local behaviour switches (ablations and maintenance policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteOptions {
    /// Whether the Local-Pruning phase is active. Disabling it isolates the
    /// value of the feedback mechanism (ablation C in DESIGN.md).
    pub pruning: bool,
    /// Deletion-reporting policy for update maintenance.
    pub update_policy: UpdatePolicy,
}

impl Default for SiteOptions {
    fn default() -> Self {
        SiteOptions { pruning: true, update_policy: UpdatePolicy::Exact }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_thresholds() {
        for q in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(QueryConfig::new(q).is_err(), "{q}");
        }
        assert!(QueryConfig::new(1.0).is_ok());
    }

    #[test]
    fn resolves_full_mask_by_default() {
        let cfg = QueryConfig::new(0.3).unwrap();
        assert_eq!(cfg.resolve_mask(3).unwrap(), SubspaceMask::full(3).unwrap());
    }

    #[test]
    fn validates_explicit_mask() {
        let cfg =
            QueryConfig::new(0.3).unwrap().subspace(SubspaceMask::from_dims(&[0, 4]).unwrap());
        assert!(cfg.resolve_mask(5).is_ok());
        assert!(matches!(cfg.resolve_mask(2), Err(Error::Subspace(_))));
    }

    #[test]
    fn defaults_are_paper_faithful() {
        let cfg = QueryConfig::new(0.3).unwrap();
        assert_eq!(cfg.bound, BoundMode::Paper);
        assert!(SiteOptions::default().pruning);
    }
}
