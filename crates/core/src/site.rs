//! The site side of the protocol: `S_i`'s query and update handlers.
//!
//! [`LocalSite`] owns one uncertain database `D_i` behind a PR-tree and
//! answers every coordinator [`Message`]: local-skyline extraction and
//! streaming (the To-Server phase, Section 5.1), survival products and
//! Local-Pruning on feedback (Server-Delivery phase), dominance-region
//! re-evaluation and replica bookkeeping for update maintenance
//! (Section 5.4), and grid synopses (Section 5.2). Because it implements
//! [`dsud_net::Service`], the identical code runs inline, on a thread, or
//! behind a TCP socket.

use std::collections::{HashMap, VecDeque};

use dsud_net::{wire, BatchView, Message, Service, TupleMsg};
use dsud_obs::Recorder;
use dsud_prtree::{bbs, BbsScratch, PrTree};
use dsud_uncertain::{
    dominates_in, ProbeRows, ProbeSet, SiteId, SubspaceMask, TupleId, UncertainTuple,
};

use crate::{Error, SiteOptions, UpdatePolicy, WireFormat};

/// Sketch key for a tuple: site in the high 32 bits, sequence below —
/// collision-free for sequence numbers under 2³², and identical on every
/// run, so sketches replay deterministically.
fn sketch_key(id: TupleId) -> u64 {
    (u64::from(id.site.0) << 32) ^ id.seq
}

/// A participant `S_i` of the distributed system: owns the uncertain
/// database `D_i` (indexed by a PR-tree) and implements the site side of
/// the DSUD / e-DSUD protocol plus update maintenance.
///
/// The site is driven entirely through [`Message`]s (it implements
/// [`Service`]), so the same code runs inline behind a
/// [`dsud_net::LocalLink`] or on its own thread behind a
/// [`dsud_net::ChannelLink`].
#[derive(Debug)]
pub struct LocalSite {
    id: SiteId,
    dims: usize,
    tree: PrTree,
    options: SiteOptions,
    query: Option<ActiveQuery>,
    /// Parked per-query cursors of the session layer: a
    /// [`Message::Tagged`] frame swaps the identified query's state into
    /// the `query` slot, dispatches the inner message through the ordinary
    /// handlers, and parks the state again — so multiplexed queries reuse
    /// the one-shot code paths verbatim and stay bit-identical to them.
    sessions: HashMap<u64, ActiveQuery>,
    /// Replica of the global skyline `SKY(H)` (Section 5.4): lets the site
    /// decide locally whether an update can affect the global result.
    replica: Vec<TupleMsg>,
    /// Reused BBS traversal buffers: a site answers one Start plus many
    /// region queries per workload, all against the same tree.
    scratch: BbsScratch,
    /// Reused feedback-batch buffers (probe rows gathered from a columnar
    /// view plus the survival factors of the reply), so a warm site
    /// answers every batched round without heap allocation.
    feed: FeedbackScratch,
    /// Mergeable plan-phase synopsis of the local skyline-probability
    /// distribution: built once at load and maintained incrementally
    /// through the §5.4 update path, so a served session re-plans after
    /// inserts/deletes without a rebuild. Pure scheduling input — it is
    /// never consulted when deciding whether a tuple qualifies.
    sketch: dsud_sketch::SiteSketch,
}

/// Site-held buffers for one batched feedback round, reused across rounds.
#[derive(Debug, Default)]
struct FeedbackScratch {
    rows: ProbeRows,
    survivals: Vec<f64>,
}

/// Per-query state: the surviving local skyline, in descending local
/// probability order, with accumulated feedback discounts.
#[derive(Debug)]
struct ActiveQuery {
    q: f64,
    mask: SubspaceMask,
    pending: VecDeque<PendingCandidate>,
    /// Candidates eliminated by feedback, remembered with the discounts
    /// that killed them. The paper's update protocol "retrieves the skyline
    /// tuples pruned by t" when a member `t` is deleted — this is that
    /// memory (used by [`UpdatePolicy::Replica`]).
    pruned: Vec<PendingCandidate>,
}

#[derive(Debug)]
struct PendingCandidate {
    tuple: UncertainTuple,
    local_prob: f64,
    /// Per-feedback discounts: each foreign feedback tuple that dominates
    /// this candidate contributes `(id, 1 − P(t))`. The product is the
    /// upper-bound discount on the candidate's global probability used by
    /// the Local-Pruning phase.
    discounted_by: Vec<(TupleId, f64)>,
}

impl PendingCandidate {
    fn discount(&self) -> f64 {
        self.discounted_by.iter().map(|(_, f)| f).product()
    }

    fn bound(&self) -> f64 {
        self.local_prob * self.discount()
    }

    /// Removes a deleted feedback tuple's factor; returns whether the
    /// candidate's bound crossed back over `q`.
    fn forget(&mut self, id: TupleId, q: f64) -> bool {
        let before = self.bound();
        self.discounted_by.retain(|(d, _)| *d != id);
        before < q && self.bound() >= q
    }
}

impl LocalSite {
    /// Builds a site over its local tuples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::WrongSiteId`] if a tuple is labelled for a
    /// different site, or [`Error::DimensionMismatch`] /
    /// [`Error::Index`] for malformed data.
    pub fn new(
        site_index: u32,
        dims: usize,
        tuples: Vec<UncertainTuple>,
        options: SiteOptions,
    ) -> Result<Self, Error> {
        if let Some(bad) = tuples.iter().find(|t| t.id().site.0 != site_index) {
            return Err(Error::WrongSiteId { expected: site_index, actual: bad.id().site.0 });
        }
        let tree = PrTree::bulk_load(dims, tuples)?;
        let mut scratch = BbsScratch::default();
        let sketch = Self::build_sketch(&tree, dims, &mut scratch);
        Ok(LocalSite {
            id: SiteId(site_index),
            dims,
            tree,
            options,
            query: None,
            sessions: HashMap::new(),
            replica: Vec::new(),
            scratch,
            feed: FeedbackScratch::default(),
            sketch,
        })
    }

    /// Probability floor of the load-time sketch build — the finest bucket
    /// the quantile sketch resolves (2⁻⁸). Query thresholds below the
    /// floor under-count, which only makes the planner more conservative;
    /// it never changes an answer.
    const SKETCH_FLOOR_Q: f64 = 1.0 / 256.0;

    /// Summarizes the full-space local skyline at the sketch floor. Runs
    /// before the observability recorder attaches, so load-time traversal
    /// counts in run reports are untouched.
    fn build_sketch(
        tree: &PrTree,
        dims: usize,
        scratch: &mut BbsScratch,
    ) -> dsud_sketch::SiteSketch {
        let mut sketch = dsud_sketch::SiteSketch::default();
        let Ok(mask) = SubspaceMask::full(dims) else { return sketch };
        if let Ok(sky) = bbs::local_skyline_with(tree, Self::SKETCH_FLOOR_Q, mask, scratch) {
            for e in &sky {
                sketch.record(sketch_key(e.tuple.id()), e.probability);
            }
        }
        sketch
    }

    /// The site's current plan-phase synopsis.
    pub fn sketch(&self) -> &dsud_sketch::SiteSketch {
        &self.sketch
    }

    /// Attaches an observability recorder to this site's PR-tree so its
    /// BBS traversals are counted in run reports.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        self.tree.set_recorder(recorder);
    }

    /// The site's identifier.
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Number of tuples currently stored.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the local database is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Read access to the local index (used by tests and examples).
    pub fn tree(&self) -> &PrTree {
        &self.tree
    }

    /// The site's current replica of `SKY(H)`.
    pub fn replica(&self) -> &[TupleMsg] {
        &self.replica
    }

    /// Number of local-skyline candidates not yet uploaded or pruned.
    pub fn pending_candidates(&self) -> usize {
        self.query.as_ref().map_or(0, |a| a.pending.len())
    }

    /// Reserved capacity of the site-held multi-probe feedback buffers.
    ///
    /// The pipelined coordinators keep every site answering a coalesced
    /// [`Message::FeedbackBatch`] per round; the traversal buffers behind
    /// those answers live on the site (inside its [`BbsScratch`]) and must
    /// stop growing after the first batch. Tests assert this footprint is
    /// stable in steady state.
    pub fn multi_probe_footprint(&self) -> usize {
        self.scratch.multi_probe_footprint()
    }

    /// Reserved capacity of the site-held feedback-batch buffers (gathered
    /// probe rows + survival factors), the other half of the batched
    /// round's steady-state footprint.
    pub fn feedback_scratch_footprint(&self) -> usize {
        self.feed.rows.footprint() + self.feed.survivals.capacity()
    }

    fn start(&mut self, q: f64, mask: SubspaceMask) -> Message {
        let sky = match bbs::local_skyline_with(&self.tree, q, mask, &mut self.scratch) {
            Ok(sky) => sky,
            // The coordinator validates q and mask before starting; a
            // failure here means the two sides disagree on the space.
            Err(_) => return Message::Upload(None),
        };
        let pending = sky
            .into_iter()
            .map(|e| PendingCandidate {
                tuple: e.tuple,
                local_prob: e.probability,
                discounted_by: Vec::new(),
            })
            .collect();
        self.query = Some(ActiveQuery { q, mask, pending, pruned: Vec::new() });
        self.next_candidate()
    }

    fn next_candidate(&mut self) -> Message {
        let Some(active) = self.query.as_mut() else {
            return Message::Upload(None);
        };
        match active.pending.pop_front() {
            Some(c) => Message::Upload(Some(TupleMsg::new(&c.tuple, c.local_prob))),
            None => Message::Upload(None),
        }
    }

    /// The Local-Pruning phase (Section 5.1): a feedback tuple `t` from
    /// another site multiplies the discount of every dominated candidate
    /// by `(1 − P(t))`; candidates whose upper bound
    /// `P_sky(s, D_i) × discount` falls below `q` can never reach the
    /// global threshold (Corollary 1 applied to the accumulated bound) and
    /// are dropped.
    fn feedback(&mut self, msg: &TupleMsg) -> Message {
        let mask = self.active_mask();
        let survival = self.tree.survival_product(&msg.values, mask);
        let pruned = self.apply_feedback_pruning(msg.id, msg.prob, &msg.values, mask);
        Message::SurvivalReply { survival, pruned }
    }

    /// Batched Server-Delivery: answer `K` feedbacks from one coalesced
    /// frame. All `K` survival products come from a single shared PR-tree
    /// traversal ([`PrTree::survival_products`]), then the `K` pruning
    /// passes run in batch order — survival products read only the tree,
    /// which feedback never mutates, so the reply and the site's pending
    /// queue are bit-identical to `K` back-to-back [`Message::Feedback`]s.
    fn feedback_batch(&mut self, msgs: &[TupleMsg]) -> Message {
        let mask = self.active_mask();
        // The traversal's heavy per-level buffers persist on `self.scratch`
        // across rounds; only the frame-borrowing probe list and the
        // reply-owned survival vector are built per call.
        let probes: Vec<&[f64]> = msgs.iter().map(|m| m.values.as_slice()).collect();
        let mut survivals = Vec::with_capacity(msgs.len());
        self.tree.survival_products(&probes, mask, self.scratch.multi_probe(), &mut survivals);
        let mut pruned = 0;
        for msg in msgs {
            pruned += self.apply_feedback_pruning(msg.id, msg.prob, &msg.values, mask);
        }
        Message::SurvivalBatchReply { survivals, pruned }
    }

    /// [`LocalSite::feedback_batch`] over a borrowed columnar view — the
    /// frame-level fast path behind [`Service::handle_frame`]. The probe
    /// rows are gathered into the site-held [`FeedbackScratch`] (so the
    /// strided columns become contiguous rows exactly once), the survival
    /// factors land in the same scratch for the caller to encode, and the
    /// pruning passes run in batch order — bit-identical to the
    /// message-level path, with zero per-tuple allocation once warm.
    fn feedback_batch_view(&mut self, view: &BatchView<'_>) -> u64 {
        let mask = self.active_mask();
        let mut feed = std::mem::take(&mut self.feed);
        view.gather_rows(&mut feed.rows);
        self.tree.survival_products(
            &feed.rows,
            mask,
            self.scratch.multi_probe(),
            &mut feed.survivals,
        );
        let mut pruned = 0;
        for k in 0..view.len() {
            pruned +=
                self.apply_feedback_pruning(view.id(k), view.prob(k), feed.rows.probe(k), mask);
        }
        self.feed = feed;
        pruned
    }

    fn active_mask(&self) -> SubspaceMask {
        self.query
            .as_ref()
            .map(|a| a.mask)
            .unwrap_or_else(|| SubspaceMask::full(self.dims).expect("dims validated at build"))
    }

    fn apply_feedback_pruning(
        &mut self,
        id: TupleId,
        prob: f64,
        values: &[f64],
        mask: SubspaceMask,
    ) -> u64 {
        let mut pruned = 0;
        if let Some(active) = self.query.as_mut() {
            if self.options.pruning && id.site != self.id {
                let q = active.q;
                let factor = 1.0 - prob;
                let mut graveyard: Vec<PendingCandidate> = Vec::new();
                active.pending.retain_mut(|c| {
                    if dominates_in(values, c.tuple.values(), mask) {
                        c.discounted_by.push((id, factor));
                        if c.bound() < q {
                            pruned += 1;
                            graveyard.push(PendingCandidate {
                                tuple: c.tuple.clone(),
                                local_prob: c.local_prob,
                                discounted_by: std::mem::take(&mut c.discounted_by),
                            });
                            return false;
                        }
                    }
                    true
                });
                active.pruned.append(&mut graveyard);
            }
        }
        pruned
    }

    fn inject_insert(&mut self, msg: &TupleMsg) -> Message {
        let tuple = msg.to_tuple();
        let values = tuple.values().to_vec();
        let prob = tuple.prob().get();
        if self.tree.insert(tuple).is_err() {
            // Duplicate or dimension mismatch: nothing changed locally.
            return Message::Ack;
        }
        // §5.4 sketch maintenance rides every successful insert, query or
        // no query: the full-space survival product approximates the
        // tuple's load-time skyline probability, so a served session
        // re-plans from fresh counts without a rebuild.
        if let Ok(full) = SubspaceMask::full(self.dims) {
            let p = prob * self.tree.survival_product(&values, full);
            self.sketch.record(sketch_key(msg.id), p);
        }
        let Some(active) = self.query.as_ref() else {
            return Message::Ack;
        };
        let (q, mask) = (active.q, active.mask);
        let local_prob = prob * self.tree.survival_product(&values, mask);
        let dominates_member = self.replica.iter().any(|r| dominates_in(&values, &r.values, mask));
        // Replica-based sound bound on the new tuple's global probability:
        // foreign replica members dominating it are confirmed dominators.
        let replica_bound = local_prob
            * self
                .replica
                .iter()
                .filter(|r| r.id.site != self.id && dominates_in(&r.values, &values, mask))
                .map(|r| 1.0 - r.prob)
                .product::<f64>();
        if (local_prob >= q && replica_bound >= q) || dominates_member {
            // The insertion can change SKY(H): either the new tuple itself
            // is a candidate, or it discounts a current member.
            Message::NotifyInsert(TupleMsg { local_prob, ..msg.clone() })
        } else {
            // Purely local: the tuple is provably no member itself and
            // every tuple it discounts is a non-member whose probability
            // only decreases.
            Message::Ack
        }
    }

    fn inject_delete(&mut self, msg: &TupleMsg) -> Message {
        if self.tree.remove(msg.id, &msg.values).is_none() {
            return Message::Ack;
        }
        // Sketch tombstone: the pre-delete skyline probability is gone with
        // the tuple, so the existential probability stands in — at worst
        // the decrement lands in a neighbouring bucket, which skews the
        // *plan* slightly and the answer not at all.
        self.sketch.forget(msg.prob);
        if self.query.is_none() {
            return Message::Ack;
        }
        match self.options.update_policy {
            // Deleting t raises the probability of every tuple it dominated
            // — anywhere in the system — so the server must re-evaluate
            // t's dominance region (and drop t itself if it was a member).
            UpdatePolicy::Exact => Message::NotifyDelete(msg.clone()),
            // Paper heuristic: only member deletions travel; missed
            // promotions are accepted (see UpdatePolicy docs).
            UpdatePolicy::Replica => {
                if self.replica.iter().any(|r| r.id == msg.id) {
                    Message::NotifyDelete(msg.clone())
                } else {
                    Message::Ack
                }
            }
        }
    }

    /// A region-query reply in the site's preferred wire layout
    /// ([`SiteOptions::wire`]); both layouts carry identical tuples.
    fn region_reply(&self, tuples: Vec<TupleMsg>) -> Message {
        match self.options.wire {
            WireFormat::Legacy => Message::RegionReply(tuples),
            WireFormat::Columnar => Message::RegionReplyC(dsud_net::TupleBlock::from_msgs(&tuples)),
        }
    }

    fn region_query(&mut self, msg: &TupleMsg) -> Message {
        if self.query.is_none() {
            return self.region_reply(Vec::new());
        }
        let active = self.query.as_mut().expect("checked above");
        // At the deleted tuple's home site its removal changed *local*
        // probabilities, so the region must be re-scanned regardless of
        // policy. At other sites:
        //   Exact   — full region scan (dominated tuples gained global
        //             probability even though local values are unchanged);
        //   Replica — the paper's cheaper memory: resurrect only candidates
        //             that the deleted tuple's feedback had pruned.
        let home = msg.id.site == self.id;
        if home || self.options.update_policy == UpdatePolicy::Exact {
            let (q, mask) = (active.q, active.mask);
            let tuples = match bbs::local_skyline_in_region_with(
                &self.tree,
                q,
                mask,
                &msg.values,
                &mut self.scratch,
            ) {
                Ok(entries) => {
                    entries.into_iter().map(|e| TupleMsg::new(&e.tuple, e.probability)).collect()
                }
                Err(_) => Vec::new(),
            };
            return self.region_reply(tuples);
        }
        let q = active.q;
        let mut resurrected = Vec::new();
        for c in &mut active.pruned {
            if c.forget(msg.id, q) {
                resurrected.push(TupleMsg::new(&c.tuple, c.local_prob));
            }
        }
        self.region_reply(resurrected)
    }

    fn replica_remove(&mut self, id: TupleId) {
        self.replica.retain(|r| r.id != id);
    }
}

impl Service for LocalSite {
    fn handle(&mut self, msg: Message) -> Message {
        match msg {
            // Session multiplexing: park the default cursor, swap in the
            // tagged query's cursor, run the inner message through the very
            // same arms below, and park the cursor again. The inner
            // handlers cannot tell a multiplexed round from a one-shot one.
            Message::Tagged { query_id, inner } => {
                if matches!(*inner, Message::Release) {
                    self.sessions.remove(&query_id);
                    return Message::Ack;
                }
                let parked = self.query.take();
                self.query = self.sessions.remove(&query_id);
                let reply = self.handle(*inner);
                if let Some(state) = self.query.take() {
                    self.sessions.insert(query_id, state);
                }
                self.query = parked;
                reply
            }
            // An untagged Release clears the default query slot.
            Message::Release => {
                self.query = None;
                Message::Ack
            }
            Message::Start { q, mask } => self.start(q, mask),
            Message::RequestNext => self.next_candidate(),
            Message::Feedback(t) => self.feedback(&t),
            Message::FeedbackBatch(ts) => self.feedback_batch(&ts),
            // Message-level fallback for columnar feedback (inline links
            // decode before dispatch, bypassing the frame fast path): same
            // computation, answered in kind.
            Message::FeedbackBatchC(block) => match self.feedback_batch(&block.to_msgs()) {
                Message::SurvivalBatchReply { survivals, pruned } => {
                    Message::SurvivalBatchReplyC { survivals, pruned }
                }
                other => other,
            },
            Message::InjectInsert(t) => self.inject_insert(&t),
            Message::InjectDelete(t) => self.inject_delete(&t),
            Message::RegionQuery(t) => self.region_query(&t),
            Message::ReplicaSync(tuples) => {
                self.replica = tuples;
                Message::Ack
            }
            Message::ReplicaSyncC(block) => {
                self.replica = block.to_msgs();
                Message::Ack
            }
            Message::ReplicaAdd(t) => {
                self.replica_remove(t.id);
                self.replica.push(t);
                Message::Ack
            }
            Message::ReplicaRemove(t) => {
                self.replica_remove(t.id);
                Message::Ack
            }
            Message::SynopsisRequest { resolution } => {
                let tuples: Vec<_> = self.tree.iter().cloned().collect();
                match crate::synopsis::build_synopsis(tuples.iter(), self.dims, resolution) {
                    Some(syn) => Message::Synopsis(syn),
                    None => Message::Ack, // empty site: nothing to summarize
                }
            }
            // Liveness probe from the session server's heartbeat: echo the
            // nonce so the coordinator can match the ack to its probe. No
            // query state is touched — a probe mid-query is invisible.
            Message::HealthProbe { nonce } => Message::HealthAck { nonce },
            // Plan phase: ship the maintained synopsis. No query state is
            // read or written, so a sketch request is invisible to every
            // cursor — multiplexed or one-shot.
            Message::SketchRequest => Message::Sketch(Box::new(self.sketch.clone())),
            // Aggregate container frames terminate at aggregators, never at
            // leaf sites; like the site-originated messages below they are
            // protocol errors by construction, answered inertly.
            Message::AggBroadcast { .. }
            | Message::AggScatter { .. }
            | Message::AggReplies { .. } => Message::Ack,
            // Site-originated messages arriving at a site are protocol
            // errors by construction; answer inertly rather than panic so a
            // buggy coordinator cannot take down a site thread.
            Message::Upload(_)
            | Message::SurvivalReply { .. }
            | Message::SurvivalBatchReply { .. }
            | Message::SurvivalBatchReplyC { .. }
            | Message::NotifyInsert(_)
            | Message::NotifyDelete(_)
            | Message::RegionReply(_)
            | Message::RegionReplyC(_)
            | Message::Synopsis(_)
            | Message::Sketch(_)
            | Message::HealthAck { .. }
            | Message::DecodeError
            | Message::Ack => Message::Ack,
        }
    }

    /// Frame-level fast path: a columnar feedback batch (bare or inside a
    /// [`Message::Tagged`] wrapper) is answered straight from the borrowed
    /// frame bytes — the probe coordinates are read out of the frame's
    /// column sections and the reply is encoded directly into the
    /// transport's reusable buffer, so a warm batched round runs socket to
    /// dominance kernel with zero per-tuple allocation. Every other frame
    /// (and any columnar frame that fails validation) takes the default
    /// decode → [`Service::handle`] → encode path.
    fn handle_frame(&mut self, frame: &[u8], out: &mut bytes::BytesMut) {
        let (query_id, body) = match frame.first() {
            Some(&t) if t == wire::TAG_FEEDBACK_BATCH_C => (None, frame),
            // Tagged wrapper: tag 21, big-endian query id, inner frame.
            Some(21) if frame.len() > 9 && frame[9] == wire::TAG_FEEDBACK_BATCH_C => {
                let qid = u64::from_be_bytes(frame[1..9].try_into().expect("8 bytes checked"));
                (Some(qid), &frame[9..])
            }
            _ => {
                return default_handle_frame(self, frame, out);
            }
        };
        let Some(view) = BatchView::parse(body) else {
            // Malformed columnar frame: the default path answers
            // `DecodeError` without panicking, exactly like any other
            // undecodable request.
            return default_handle_frame(self, frame, out);
        };
        let pruned = match query_id {
            None => self.feedback_batch_view(&view),
            Some(qid) => {
                // Same cursor swap as the Tagged arm of `handle`.
                let parked = self.query.take();
                self.query = self.sessions.remove(&qid);
                let pruned = self.feedback_batch_view(&view);
                if let Some(state) = self.query.take() {
                    self.sessions.insert(qid, state);
                }
                self.query = parked;
                pruned
            }
        };
        out.clear();
        out.reserve(wire::survivals_encoded_len(self.feed.survivals.len()));
        wire::encode_survivals(&self.feed.survivals, pruned, out);
    }
}

/// The [`Service::handle_frame`] default body, reachable from the
/// override's fallback arms (Rust has no `super` call for provided trait
/// methods).
fn default_handle_frame(site: &mut LocalSite, frame: &[u8], out: &mut bytes::BytesMut) {
    let reply = match Message::decode_slice(frame) {
        Some(msg) => site.handle(msg),
        None => Message::DecodeError,
    };
    reply.encode_into(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::Probability;

    fn tuple(site: u32, seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(site, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn full(d: usize) -> SubspaceMask {
        SubspaceMask::full(d).unwrap()
    }

    /// Site S1 of the paper's Table 2(a): local skyline
    /// (6,6,0.7,0.65), (8,4,0.8,0.6), (3,8,0.8,0.5).
    fn paper_site_s1() -> LocalSite {
        let tuples = vec![
            tuple(0, 0, vec![6.0, 6.0], 0.7),
            tuple(0, 1, vec![8.0, 4.0], 0.8),
            tuple(0, 2, vec![3.0, 8.0], 0.8),
            tuple(0, 3, vec![5.0, 5.0], 1.0 - 0.65 / 0.7),
            tuple(0, 4, vec![7.0, 3.0], 0.25),
            tuple(0, 5, vec![2.0, 7.0], 0.375),
        ];
        LocalSite::new(0, 2, tuples, SiteOptions::default()).unwrap()
    }

    #[test]
    fn rejects_foreign_tuples() {
        let err =
            LocalSite::new(0, 2, vec![tuple(3, 0, vec![1.0, 1.0], 0.5)], SiteOptions::default());
        assert_eq!(err.unwrap_err(), Error::WrongSiteId { expected: 0, actual: 3 });
    }

    #[test]
    fn start_uploads_best_local_candidate() {
        let mut site = paper_site_s1();
        let reply = site.handle(Message::Start { q: 0.5, mask: full(2) });
        let Message::Upload(Some(t)) = reply else { panic!("expected upload, got {reply:?}") };
        assert_eq!(t.values, vec![6.0, 6.0]);
        assert!((t.local_prob - 0.65).abs() < 1e-12);
        assert_eq!(site.pending_candidates(), 2);
    }

    #[test]
    fn request_next_streams_in_descending_order() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        let Message::Upload(Some(t2)) = site.handle(Message::RequestNext) else { panic!() };
        assert_eq!(t2.values, vec![8.0, 4.0]);
        let Message::Upload(Some(t3)) = site.handle(Message::RequestNext) else { panic!() };
        assert_eq!(t3.values, vec![3.0, 8.0]);
        assert!(matches!(site.handle(Message::RequestNext), Message::Upload(None)));
    }

    #[test]
    fn feedback_returns_survival_and_prunes() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        // Feedback (5.5, 5.5) with P = 0.9 from another site: it dominates
        // the remaining candidates... (6,6) already uploaded; remaining are
        // (8,4) and (3,8); (5.5,5.5) dominates neither... use (2,2).
        let foreign = tuple(1, 0, vec![2.0, 2.0], 0.9);
        let reply = site.handle(Message::Feedback(TupleMsg::new(&foreign, 0.9)));
        let Message::SurvivalReply { survival, pruned } = reply else { panic!() };
        // Nothing in the tree dominates (2,2).
        assert_eq!(survival, 1.0);
        // (2,2) dominates both pending candidates; bounds 0.6×0.1 and
        // 0.5×0.1 both fall below q = 0.5.
        assert_eq!(pruned, 2);
        assert_eq!(site.pending_candidates(), 0);
    }

    #[test]
    fn feedback_survival_matches_definition() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        let probe = tuple(1, 0, vec![10.0, 10.0], 0.5);
        let Message::SurvivalReply { survival, .. } =
            site.handle(Message::Feedback(TupleMsg::new(&probe, 0.5)))
        else {
            panic!()
        };
        // All six stored tuples dominate (10,10).
        let expected: f64 =
            [0.7, 0.8, 0.8, 1.0 - 0.65 / 0.7, 0.25, 0.375].iter().map(|p| 1.0 - p).product();
        assert!((survival - expected).abs() < 1e-12);
    }

    #[test]
    fn pruning_respects_accumulated_discounts() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.3, mask: full(2) });
        // Two weak dominators, each insufficient alone, together push
        // (8,4) (local 0.6) below 0.3: 0.6 × 0.7 × 0.7 = 0.294.
        for seq in 0..2 {
            let weak = tuple(1, seq, vec![7.5, 3.5], 0.3);
            site.handle(Message::Feedback(TupleMsg::new(&weak, 0.3)));
        }
        // (6,6) was uploaded; at q = 0.3 the filler (2,7) with P = 0.375
        // also qualifies, so the queue was [(8,4), (3,8), (2,7)] and only
        // (8,4) is pruned.
        assert_eq!(site.pending_candidates(), 2);
        let Message::Upload(Some(t)) = site.handle(Message::RequestNext) else { panic!() };
        assert_eq!(t.values, vec![3.0, 8.0]);
    }

    #[test]
    fn feedback_batch_is_bit_identical_to_back_to_back_feedbacks() {
        let feedbacks: Vec<TupleMsg> = vec![
            TupleMsg::new(&tuple(1, 0, vec![7.5, 3.5], 0.3), 0.3),
            TupleMsg::new(&tuple(1, 1, vec![10.0, 10.0], 0.5), 0.5),
            TupleMsg::new(&tuple(1, 2, vec![7.5, 3.5], 0.3), 0.3),
            TupleMsg::new(&tuple(2, 0, vec![2.0, 7.5], 0.4), 0.4),
        ];

        let mut single = paper_site_s1();
        single.handle(Message::Start { q: 0.3, mask: full(2) });
        let mut expected_survivals = Vec::new();
        let mut expected_pruned = 0;
        for f in &feedbacks {
            let Message::SurvivalReply { survival, pruned } =
                single.handle(Message::Feedback(f.clone()))
            else {
                panic!()
            };
            expected_survivals.push(survival);
            expected_pruned += pruned;
        }

        let mut batched = paper_site_s1();
        batched.handle(Message::Start { q: 0.3, mask: full(2) });
        let Message::SurvivalBatchReply { survivals, pruned } =
            batched.handle(Message::FeedbackBatch(feedbacks))
        else {
            panic!()
        };
        assert_eq!(
            survivals.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            expected_survivals.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(pruned, expected_pruned);
        assert_eq!(batched.pending_candidates(), single.pending_candidates());
        // The surviving queues stream identically afterwards.
        loop {
            let a = batched.handle(Message::RequestNext);
            let b = single.handle(Message::RequestNext);
            assert_eq!(a, b);
            if matches!(a, Message::Upload(None)) {
                break;
            }
        }
    }

    /// Batched feedback must reach an allocation-free steady state: once
    /// the first `FeedbackBatch` has sized the site-held multi-probe
    /// buffers, later batches of no greater size must not grow them. A
    /// regression here (e.g. a per-call `MultiProbeScratch::default()`)
    /// shows up as a footprint that keeps moving — or never warms at all.
    #[test]
    fn batched_feedback_reaches_allocation_free_steady_state() {
        // A tree deep enough to exercise the per-level buffers (fan-out is
        // 32, so 256 tuples give an internal level above the leaves).
        let tuples: Vec<_> = (0..256)
            .map(|i| tuple(0, i, vec![(i % 16) as f64 + 1.0, (i / 16) as f64 + 1.0], 0.6))
            .collect();
        let mut site = LocalSite::new(0, 2, tuples, SiteOptions::default()).unwrap();
        site.handle(Message::Start { q: 0.01, mask: full(2) });

        let batch: Vec<TupleMsg> = (0..8)
            .map(|k| {
                let probe = tuple(1, k, vec![4.0 + k as f64, 12.0 - k as f64], 0.5);
                TupleMsg::new(&probe, 0.5)
            })
            .collect();

        site.handle(Message::FeedbackBatch(batch.clone()));
        let warmed = site.multi_probe_footprint();
        assert!(warmed > 0, "first batch must size the multi-probe buffers");

        let mut steady_rounds = 0;
        for round in 0..8 {
            site.handle(Message::FeedbackBatch(batch.clone()));
            assert_eq!(
                site.multi_probe_footprint(),
                warmed,
                "batch round {round} re-allocated the site scratch"
            );
            steady_rounds += 1;
        }
        assert_eq!(steady_rounds, 8);

        // The columnar frame path holds the same invariant for its own
        // scratch: one warm-up round sizes the gathered probe rows and the
        // survival vector, after which neither the multi-probe buffers nor
        // the feedback scratch may move again.
        let frame = Message::FeedbackBatchC(dsud_net::TupleBlock::from_msgs(&batch)).encode();
        let mut out = bytes::BytesMut::new();
        site.handle_frame(&frame, &mut out);
        let warmed_probe = site.multi_probe_footprint();
        let warmed_feed = site.feedback_scratch_footprint();
        assert!(warmed_feed > 0, "first frame must size the feedback scratch");
        for round in 0..8 {
            site.handle_frame(&frame, &mut out);
            assert_eq!(
                site.multi_probe_footprint(),
                warmed_probe,
                "frame round {round} re-allocated the multi-probe scratch"
            );
            assert_eq!(
                site.feedback_scratch_footprint(),
                warmed_feed,
                "frame round {round} re-allocated the feedback scratch"
            );
        }
    }

    /// The frame-level columnar fast path must be indistinguishable from
    /// the message-level path: same survival bits, same prune count, same
    /// surviving queue. This is the invariant that lets transports pick
    /// `handle_frame` freely.
    #[test]
    fn columnar_frame_fast_path_matches_the_message_path_bit_for_bit() {
        let feedbacks: Vec<TupleMsg> = vec![
            TupleMsg::new(&tuple(1, 0, vec![7.5, 3.5], 0.3), 0.3),
            TupleMsg::new(&tuple(1, 1, vec![10.0, 10.0], 0.5), 0.5),
            TupleMsg::new(&tuple(1, 2, vec![7.5, 3.5], 0.3), 0.3),
            TupleMsg::new(&tuple(2, 0, vec![2.0, 7.5], 0.4), 0.4),
        ];

        let mut by_msg = paper_site_s1();
        by_msg.handle(Message::Start { q: 0.3, mask: full(2) });
        let Message::SurvivalBatchReply { survivals: want_survivals, pruned: want_pruned } =
            by_msg.handle(Message::FeedbackBatch(feedbacks.clone()))
        else {
            panic!()
        };

        let mut by_frame = paper_site_s1();
        by_frame.handle(Message::Start { q: 0.3, mask: full(2) });
        let frame = Message::FeedbackBatchC(dsud_net::TupleBlock::from_msgs(&feedbacks)).encode();
        let mut out = bytes::BytesMut::new();
        by_frame.handle_frame(&frame, &mut out);
        let Some(Message::SurvivalBatchReplyC { survivals, pruned }) = Message::decode_slice(&out)
        else {
            panic!("fast path must answer a columnar survival batch")
        };

        assert_eq!(
            survivals.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want_survivals.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(pruned, want_pruned);
        assert_eq!(by_frame.pending_candidates(), by_msg.pending_candidates());
        loop {
            let a = by_frame.handle(Message::RequestNext);
            let b = by_msg.handle(Message::RequestNext);
            assert_eq!(a, b);
            if matches!(a, Message::Upload(None)) {
                break;
            }
        }
    }

    /// A tagged columnar frame must swap in exactly the identified
    /// session's cursor — pruning that session's queue, leaving the
    /// default cursor untouched — just like the message-level Tagged arm.
    #[test]
    fn tagged_columnar_frames_swap_the_right_session_cursor() {
        let feedbacks = vec![TupleMsg::new(&tuple(1, 0, vec![2.0, 2.0], 0.9), 0.9)];
        let tagged = |inner: Message| Message::Tagged { query_id: 7, inner: Box::new(inner) };

        let mut by_msg = paper_site_s1();
        by_msg.handle(tagged(Message::Start { q: 0.5, mask: full(2) }));
        let Message::SurvivalBatchReply { survivals: want_survivals, pruned: want_pruned } =
            by_msg.handle(tagged(Message::FeedbackBatch(feedbacks.clone())))
        else {
            panic!()
        };

        let mut by_frame = paper_site_s1();
        by_frame.handle(tagged(Message::Start { q: 0.5, mask: full(2) }));
        let frame =
            tagged(Message::FeedbackBatchC(dsud_net::TupleBlock::from_msgs(&feedbacks))).encode();
        let mut out = bytes::BytesMut::new();
        by_frame.handle_frame(&frame, &mut out);
        let Some(Message::SurvivalBatchReplyC { survivals, pruned }) = Message::decode_slice(&out)
        else {
            panic!("tagged fast path must answer a columnar survival batch")
        };

        assert_eq!(
            survivals.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            want_survivals.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(pruned, want_pruned);
        // The default cursor was never started; the session's queue took
        // the pruning. Stream session 7 on both sites and compare.
        loop {
            let a = by_frame.handle(tagged(Message::RequestNext));
            let b = by_msg.handle(tagged(Message::RequestNext));
            assert_eq!(a, b);
            if matches!(a, Message::Upload(None)) {
                break;
            }
        }
    }

    /// A malformed columnar frame must come back as `DecodeError`, not a
    /// panic — the fast path falls through to the default decode path,
    /// which rejects it like any other garbage frame.
    #[test]
    fn malformed_columnar_frames_answer_decode_error() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        let good = Message::FeedbackBatchC(dsud_net::TupleBlock::from_msgs(&[TupleMsg::new(
            &tuple(1, 0, vec![2.0, 2.0], 0.9),
            0.9,
        )]))
        .encode();
        let mut out = bytes::BytesMut::new();
        for mutilate in [
            // truncated mid-section
            good[..good.len() - 3].to_vec(),
            // corrupted magic
            {
                let mut f = good.to_vec();
                f[1] ^= 0xff;
                f
            },
            // absurd row count
            {
                let mut f = good.to_vec();
                f[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
                f
            },
        ] {
            site.handle_frame(&mutilate, &mut out);
            assert!(
                matches!(Message::decode_slice(&out), Some(Message::DecodeError)),
                "mutilated frame must be rejected, not crash"
            );
        }
    }

    #[test]
    fn pruning_can_be_disabled() {
        let tuples = vec![tuple(0, 0, vec![6.0, 6.0], 0.7), tuple(0, 1, vec![8.0, 4.0], 0.8)];
        let mut site =
            LocalSite::new(0, 2, tuples, SiteOptions { pruning: false, ..SiteOptions::default() })
                .unwrap();
        site.handle(Message::Start { q: 0.3, mask: full(2) });
        let killer = tuple(1, 0, vec![1.0, 1.0], 0.99);
        let Message::SurvivalReply { pruned, .. } =
            site.handle(Message::Feedback(TupleMsg::new(&killer, 0.99)))
        else {
            panic!()
        };
        assert_eq!(pruned, 0);
        assert_eq!(site.pending_candidates(), 1);
    }

    #[test]
    fn own_site_feedback_does_not_discount() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        // A (hypothetical) echo of the site's own tuple must not prune:
        // same-site dominators are already in the local probabilities.
        let own = tuple(0, 0, vec![1.0, 1.0], 0.9);
        let Message::SurvivalReply { pruned, .. } =
            site.handle(Message::Feedback(TupleMsg::new(&own, 0.9)))
        else {
            panic!()
        };
        assert_eq!(pruned, 0);
    }

    #[test]
    fn insert_classifies_notifications() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        // Strong new tuple: must notify.
        let strong = tuple(0, 100, vec![1.0, 1.0], 0.9);
        let reply = site.handle(Message::InjectInsert(TupleMsg::new(&strong, 0.0)));
        assert!(matches!(reply, Message::NotifyInsert(_)));
        // Weak dominated tuple, empty replica: purely local.
        let weak = tuple(0, 101, vec![100.0, 100.0], 0.01);
        let reply = site.handle(Message::InjectInsert(TupleMsg::new(&weak, 0.0)));
        assert!(matches!(reply, Message::Ack));
        assert_eq!(site.len(), 8);
    }

    #[test]
    fn insert_notifies_when_dominating_replica_member() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        let member = tuple(1, 0, vec![50.0, 50.0], 0.9);
        site.handle(Message::ReplicaSync(vec![TupleMsg::new(&member, 0.9)]));
        // Weak itself (P small ⇒ local prob < q) but dominates the member.
        let weak = tuple(0, 102, vec![40.0, 40.0], 0.2);
        let reply = site.handle(Message::InjectInsert(TupleMsg::new(&weak, 0.0)));
        assert!(matches!(reply, Message::NotifyInsert(_)));
    }

    #[test]
    fn delete_notifies_and_removes() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        let victim = tuple(0, 0, vec![6.0, 6.0], 0.7);
        let reply = site.handle(Message::InjectDelete(TupleMsg::new(&victim, 0.65)));
        assert!(matches!(reply, Message::NotifyDelete(_)));
        assert_eq!(site.len(), 5);
        // Deleting it again is a no-op.
        let reply = site.handle(Message::InjectDelete(TupleMsg::new(&victim, 0.65)));
        assert!(matches!(reply, Message::Ack));
    }

    #[test]
    fn region_query_returns_dominated_candidates() {
        let mut site = paper_site_s1();
        site.handle(Message::Start { q: 0.5, mask: full(2) });
        // Region dominated by (5,3): contains (8,4) only (6,6 has y=6 > 3? no
        // wait (5,3) ≺ (6,6)? 5≤6, 3≤6 strict → yes; (5,3) ≺ (8,4) yes;
        // (5,3) ≺ (3,8) no).
        let origin = tuple(1, 0, vec![5.0, 3.0], 0.5);
        let Message::RegionReply(tuples) =
            site.handle(Message::RegionQuery(TupleMsg::new(&origin, 0.5)))
        else {
            panic!()
        };
        let mut vals: Vec<Vec<f64>> = tuples.iter().map(|t| t.values.clone()).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(vals, vec![vec![6.0, 6.0], vec![8.0, 4.0]]);
    }

    #[test]
    fn replica_delta_sync() {
        let mut site = paper_site_s1();
        let a = TupleMsg::new(&tuple(1, 0, vec![1.0, 1.0], 0.5), 0.5);
        let b = TupleMsg::new(&tuple(2, 0, vec![2.0, 2.0], 0.5), 0.5);
        site.handle(Message::ReplicaSync(vec![a.clone()]));
        assert_eq!(site.replica().len(), 1);
        site.handle(Message::ReplicaAdd(b.clone()));
        assert_eq!(site.replica().len(), 2);
        site.handle(Message::ReplicaRemove(a));
        assert_eq!(site.replica().len(), 1);
        assert_eq!(site.replica()[0].id, b.id);
    }

    #[test]
    fn unexpected_messages_are_answered_inertly() {
        let mut site = paper_site_s1();
        assert!(matches!(site.handle(Message::Ack), Message::Ack));
        assert!(matches!(site.handle(Message::Upload(None)), Message::Ack));
    }
}
