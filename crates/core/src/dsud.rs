//! The DSUD algorithm (paper Section 5.1).
//!
//! Each site computes its threshold-qualified local skyline `SKY(D_i)` and
//! streams it to the server in descending local-probability order, one
//! representative at a time. The server keeps at most one candidate per
//! site in a priority queue `L`; each iteration it takes the head (largest
//! local skyline probability), broadcasts it to the other `m − 1` sites,
//! multiplies the returned survival products into the exact global
//! probability (Lemma 1), reports the tuple if it meets `q`, and asks the
//! head's home site for its next representative. The broadcast doubles as
//! *feedback*: sites drop pending candidates whose accumulated upper bound
//! falls below `q` (Local-Pruning phase).
//!
//! Termination is safe once `L` empties or its head's local probability
//! falls below `q`: by Corollary 1 every unfetched tuple is bounded by
//! that head.

use std::time::Instant;

use dsud_net::{BandwidthMeter, Link, Message, TupleMsg};
use dsud_obs::Counter;
use dsud_uncertain::{SkylineEntry, SubspaceMask};

use crate::degrade::FailureTracker;
use crate::{Error, FailurePolicy, ProgressLog, QueryOutcome, RunStats};

/// Runs DSUD over the given site links under the strict failure policy.
///
/// `links[i]` must address site `i`; `q` must lie in `(0, 1]` and `mask`
/// must fit the sites' data space (both validated by
/// [`crate::Cluster::run_dsud`], which is the intended entry point).
///
/// # Errors
///
/// Returns [`Error::InvalidThreshold`], [`Error::ProtocolViolation`], or
/// [`Error::SiteFailed`].
pub fn run(
    links: &mut [Box<dyn Link>],
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    limit: Option<usize>,
) -> Result<QueryOutcome, Error> {
    run_with_policy(links, meter, q, mask, limit, FailurePolicy::Strict)
}

/// [`run`] with an explicit site-failure policy. Under
/// [`FailurePolicy::Degrade`] a site whose transport stays broken after
/// retries is quarantined — excluded from every later broadcast and refill
/// — and the query completes over the survivors with
/// [`QueryOutcome::degraded`] set (see [`crate::degrade`] for what that
/// does to the reported probabilities).
///
/// # Errors
///
/// Same as [`run`]; [`Error::SiteFailed`] only under
/// [`FailurePolicy::Strict`].
pub fn run_with_policy(
    links: &mut [Box<dyn Link>],
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    limit: Option<usize>,
    policy: FailurePolicy,
) -> Result<QueryOutcome, Error> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(Error::InvalidThreshold(q));
    }
    let start_traffic = meter.snapshot();
    let started = Instant::now();
    let rec = meter.recorder().clone();
    let query_span = rec.span("query:dsud");
    let mut tracker = FailureTracker::new(links.len(), policy, rec.clone());
    let mut stats = RunStats::default();
    let mut progress = ProgressLog::new();
    let mut skyline: Vec<SkylineEntry> = Vec::new();

    // To-Server phase, first iteration: every site extracts its local
    // skyline and sends its best representative. The broadcast fans the
    // extraction across sites (replies stay in link order, so the queue is
    // identical to a sequential poll).
    let mut queue: Vec<TupleMsg> = Vec::with_capacity(links.len());
    {
        let _span = rec.span("to-server:start");
        for (x, reply) in dsud_net::broadcast(links, |_| true, &Message::Start { q, mask }) {
            if let Some(t) = tracker.upload(x, reply)? {
                queue.push(t);
            }
        }
    }

    // Head of L each iteration: the candidate with the largest local
    // skyline probability (ties broken by id for determinism).
    while let Some(head_idx) = argmax_local(&queue) {
        if queue[head_idx].local_prob < q {
            // Corollary 1: nothing fetched or unfetched can still qualify.
            break;
        }
        let round_span = rec.span("round");
        rec.incr(Counter::Rounds);
        let cand = queue.swap_remove(head_idx);
        stats.iterations += 1;
        stats.broadcasts += 1;
        rec.incr(Counter::FeedbackBroadcasts);

        // Server-Delivery phase: assemble the exact global probability.
        // The broadcast is put in flight on every other site at once, so
        // concurrent transports overlap the survival computations.
        // Quarantined sites are skipped: their factors are lost, which is
        // exactly what makes a degraded answer an upper bound.
        let mut global = cand.local_prob;
        let home = cand.id.site.0 as usize;
        {
            let _span = rec.span("server-delivery");
            let active = |x: usize| x != home && tracker.is_active(x);
            for (x, reply) in dsud_net::broadcast(links, active, &Message::Feedback(cand.clone())) {
                if let Some((survival, pruned)) = tracker.survival(x, reply)? {
                    global *= survival;
                    stats.pruned_at_sites += pruned;
                    rec.add(Counter::PrunedAtSites, pruned);
                }
            }
        }

        if global >= q {
            skyline.push(SkylineEntry { tuple: cand.to_tuple(), probability: global });
            let transmitted = meter.snapshot().since(&start_traffic).tuples_transmitted();
            rec.progressive(cand.id.site.0, cand.id.seq, global, transmitted);
            progress.push(cand.id, global, transmitted, started.elapsed());
            if limit.is_some_and(|k| skyline.len() >= k) {
                drop(round_span);
                break;
            }
        }

        // Next To-Server phase: refill from the consumed site (unless it
        // was quarantined mid-round — its queue slot simply stays empty).
        let _span = rec.span("to-server");
        if tracker.is_active(home) {
            let reply = links[home].call(Message::RequestNext);
            if let Some(next) = tracker.upload(home, reply)? {
                queue.push(next);
            }
        }
    }
    drop(query_span);

    Ok(QueryOutcome {
        skyline,
        progress,
        traffic: meter.snapshot().since(&start_traffic),
        stats,
        degraded: tracker.degraded(),
        sites: tracker.statuses(),
    })
}

/// Index of the queue entry with the largest local skyline probability.
fn argmax_local(queue: &[TupleMsg]) -> Option<usize> {
    queue
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| {
            a.local_prob
                .partial_cmp(&b.local_prob)
                .expect("probabilities are finite")
                .then_with(|| b.id.cmp(&a.id))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(site: u32, seq: u64, local_prob: f64) -> TupleMsg {
        TupleMsg {
            id: dsud_uncertain::TupleId::new(site, seq),
            values: vec![1.0, 1.0],
            prob: 0.5,
            local_prob,
        }
    }

    #[test]
    fn argmax_prefers_probability_then_lowest_id() {
        let queue = vec![msg(0, 0, 0.5), msg(1, 0, 0.9), msg(2, 0, 0.9)];
        assert_eq!(argmax_local(&queue), Some(1));
        assert_eq!(argmax_local(&[]), None);
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut links: Vec<Box<dyn Link>> = Vec::new();
        let meter = BandwidthMeter::new();
        let mask = SubspaceMask::full(2).unwrap();
        assert!(matches!(
            run(&mut links, &meter, 0.0, mask, None),
            Err(Error::InvalidThreshold(_))
        ));
    }
}
