//! The DSUD algorithm (paper Section 5.1).
//!
//! Each site computes its threshold-qualified local skyline `SKY(D_i)` and
//! streams it to the server in descending local-probability order, one
//! representative at a time. The server keeps at most one candidate per
//! site in a priority queue `L`; each iteration it takes the head (largest
//! local skyline probability), broadcasts it to the other `m − 1` sites,
//! multiplies the returned survival products into the exact global
//! probability (Lemma 1), reports the tuple if it meets `q`, and asks the
//! head's home site for its next representative. The broadcast doubles as
//! *feedback*: sites drop pending candidates whose accumulated upper bound
//! falls below `q` (Local-Pruning phase).
//!
//! With a batch size above one ([`BatchSize`]), a round draws up to `K`
//! heads and coalesces their feedback into one
//! [`Message::FeedbackBatch`] frame per site — same answer, ~`K×` fewer
//! messages (see `crate::batch` for the invariant that keeps the runs
//! bit-identical).
//!
//! Termination is safe once `L` empties or its head's local probability
//! falls below `q`: by Corollary 1 every unfetched tuple is bounded by
//! that head.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use dsud_net::{BandwidthMeter, Fanout, Link, Message, TupleMsg};
use dsud_obs::Counter;
use dsud_uncertain::{SkylineEntry, SubspaceMask};

use crate::batch::BatchRound;
use crate::degrade::FailureTracker;
use crate::pipeline::InflightRefill;
use crate::{
    planner, BatchSize, Error, FailurePolicy, PipelineDepth, PlanMode, ProgressLog, QueryOutcome,
    RunStats, SiteOrder, WireFormat,
};

/// A candidate in the server's priority queue `L`, ordered so that a
/// max-heap pops the largest local skyline probability first, ties broken
/// toward the lowest tuple id. This replaces a linear `argmax` scan per
/// round with an `O(log m)` pop/push pair.
struct QueueEntry(TupleMsg);

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .local_prob
            .partial_cmp(&other.0.local_prob)
            .expect("probabilities are finite")
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for QueueEntry {}

/// Runs DSUD over the given site links under the strict failure policy
/// with the paper's one-candidate rounds.
///
/// `links[i]` must address site `i`; `q` must lie in `(0, 1]` and `mask`
/// must fit the sites' data space (both validated by
/// [`crate::Cluster::run_dsud`], which is the intended entry point).
///
/// # Errors
///
/// Returns [`Error::InvalidThreshold`], [`Error::ProtocolViolation`], or
/// [`Error::SiteFailed`].
pub fn run(
    links: &mut [Box<dyn Link>],
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    limit: Option<usize>,
) -> Result<QueryOutcome, Error> {
    run_with_policy(
        links,
        meter,
        q,
        mask,
        limit,
        FailurePolicy::Strict,
        BatchSize::default(),
        PipelineDepth::default(),
        WireFormat::default(),
        None,
    )
}

/// [`run`] with an explicit site-failure policy, batch size, and pipeline
/// depth, plus the wire layout for batched feedback frames (a pure
/// transport choice: [`WireFormat::Columnar`] ships the same tuples in a
/// fixed-width columnar frame the sites can answer without decoding —
/// answers, progress order, and tuple traffic are bit-identical to
/// [`WireFormat::Legacy`]). Under [`FailurePolicy::Degrade`] a site whose transport stays
/// broken after retries is quarantined — excluded from every later
/// broadcast and refill — and the query completes over the survivors with
/// [`QueryOutcome::degraded`] set (see [`crate::degrade`] for what that
/// does to the reported probabilities).
///
/// A `deadline_ms` of `Some(ms)` cancels the run at the first round
/// boundary after `ms` milliseconds of wall-clock time: the partial
/// progressive outcome gathered so far is returned with
/// [`QueryOutcome::cancelled`] set, every in-flight frame already drained
/// (cancellation only happens between rounds, never mid-scatter), and
/// [`Counter::Cancelled`] bumped.
///
/// With an overlapped [`PipelineDepth`] the round's refill request is put
/// on the wire *before* the survival scatter and completed after the fold
/// (see the crate-private `pipeline` module): on concurrent transports the home site's
/// extraction overlaps the other sites' survival work. Completions fold in
/// send order, so the answer, stats, and tuple traffic are bit-identical
/// to `PipelineDepth::Fixed(1)` on healthy runs; under
/// [`FailurePolicy::Degrade`] a pipelined run may have sent a refill that
/// the sequential schedule would have skipped after a mid-round
/// quarantine (the reply is discarded, so the answer still matches).
///
/// # Errors
///
/// Same as [`run`]; [`Error::SiteFailed`] only under
/// [`FailurePolicy::Strict`].
#[allow(clippy::too_many_arguments)]
pub fn run_with_policy(
    links: &mut [Box<dyn Link>],
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    limit: Option<usize>,
    policy: FailurePolicy,
    batch: BatchSize,
    pipeline: PipelineDepth,
    wire: WireFormat,
    deadline_ms: Option<u64>,
) -> Result<QueryOutcome, Error> {
    let mut fan = Fanout::flat(links);
    run_on(
        &mut fan,
        meter,
        q,
        mask,
        limit,
        policy,
        batch,
        pipeline,
        wire,
        deadline_ms,
        PlanMode::Static,
    )
}

/// [`run_with_policy`] over an arbitrary [`Fanout`] — the actual
/// coordinator. A flat fan-out reproduces the per-link traffic of the
/// pre-topology coordinator byte for byte; a tree fan-out routes the same
/// per-site message sequences through aggregator links, and because the
/// fan-out returns replies in ascending site order either way, the
/// survival folds (and hence the answer) are bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_on(
    fan: &mut Fanout<'_>,
    meter: &BandwidthMeter,
    q: f64,
    mask: SubspaceMask,
    limit: Option<usize>,
    policy: FailurePolicy,
    batch: BatchSize,
    pipeline: PipelineDepth,
    wire: WireFormat,
    deadline_ms: Option<u64>,
    plan: PlanMode,
) -> Result<QueryOutcome, Error> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(Error::InvalidThreshold(q));
    }
    let start_traffic = meter.snapshot();
    let started = Instant::now();
    let deadline = deadline_ms.map(std::time::Duration::from_millis);
    let mut cancelled = false;
    let rec = meter.recorder().clone();
    let query_span = rec.span("query:dsud");
    let overlap = pipeline.overlapped();
    rec.add(Counter::PipelineDepth, pipeline.window() as u64);
    let order = SiteOrder::new(fan.len());
    let mut tracker = FailureTracker::new(order.len(), policy, rec.clone());
    let mut stats = RunStats::default();
    let mut progress = ProgressLog::new();
    let mut skyline: Vec<SkylineEntry> = Vec::new();

    // To-Server phase, first iteration: every site extracts its local
    // skyline and sends its best representative. The broadcast fans the
    // extraction across sites (replies stay in ascending site order, so
    // the queue is identical to a sequential poll).
    let mut queue: BinaryHeap<QueueEntry> = BinaryHeap::with_capacity(order.len());
    {
        let _span = rec.span("to-server:start");
        for (x, reply) in order.verify(fan.broadcast(|_| true, &Message::Start { q, mask })) {
            if let Some(t) = tracker.upload(x, reply)? {
                queue.push(QueueEntry(t));
            }
        }
    }

    // Plan phase: size `--batch auto` rounds from the sites' sketched
    // probability distributions instead of the static queue clamp. A pure
    // scheduling decision — see `crate::planner` for why it cannot change
    // the answer, and why a failed gather just keeps the static schedule.
    let plan_summary = plan.sketch().then(|| planner::plan(fan, q, &rec));
    let batch = planner::apply(batch, plan_summary.as_ref());

    // Corollary 1: once the head's local probability falls below `q`,
    // nothing fetched or unfetched can still qualify.
    'rounds: while queue.peek().is_some_and(|h| h.0.local_prob >= q) {
        // Deadline checks sit on round boundaries only, so a cancelled run
        // never leaves a frame in flight: links and session state are
        // released exactly as a completed run releases them.
        if deadline.is_some_and(|d| started.elapsed() >= d) {
            cancelled = true;
            rec.incr(Counter::Cancelled);
            break 'rounds;
        }
        let round_span = rec.span("round");
        rec.incr(Counter::Rounds);
        let budget = batch.budget(queue.len());

        if budget == 1 {
            // The paper's one-candidate round, wire-identical to the
            // pre-batching protocol.
            let cand = queue.pop().expect("peek succeeded").0;
            stats.iterations += 1;
            stats.broadcasts += 1;
            rec.incr(Counter::FeedbackBroadcasts);

            let home = cand.id.site.0 as usize;

            // Pipelined refill: put the next To-Server request on the wire
            // before the survival scatter, so the home site's extraction
            // overlaps the fold below. The scatter excludes `home`, so no
            // per-link order changes. Skipped for a round that could hit
            // the `limit` break — the sequential schedule would never have
            // sent the request, and traffic must stay identical.
            let may_finish = limit.is_some_and(|k| skyline.len() + 1 >= k);
            let refill = (overlap && !may_finish && tracker.is_active(home)).then(|| {
                rec.incr(Counter::OverlappedRounds);
                (InflightRefill::send(fan, home), rec.span("overlap"))
            });

            // Server-Delivery phase: assemble the exact global
            // probability. The broadcast is put in flight on every other
            // site at once, so concurrent transports overlap the survival
            // computations. Quarantined sites are skipped: their factors
            // are lost, which is exactly what makes a degraded answer an
            // upper bound.
            let mut global = cand.local_prob;
            {
                let _span = rec.span("server-delivery");
                let active = |x: usize| x != home && tracker.is_active(x);
                for (x, reply) in
                    order.verify(fan.broadcast(active, &Message::Feedback(cand.clone())))
                {
                    if let Some((survival, pruned)) = tracker.survival(x, reply)? {
                        global *= survival;
                        stats.pruned_at_sites += pruned;
                        rec.add(Counter::PrunedAtSites, pruned);
                    }
                }
            }

            if global >= q {
                skyline.push(SkylineEntry { tuple: cand.to_tuple(), probability: global });
                let transmitted = meter.snapshot().since(&start_traffic).tuples_transmitted();
                rec.progressive(cand.id.site.0, cand.id.seq, global, transmitted);
                progress.push(cand.id, global, transmitted, started.elapsed());
                if limit.is_some_and(|k| skyline.len() >= k) {
                    drop(round_span);
                    break;
                }
            }

            // Next To-Server phase: refill from the consumed site (unless
            // it was quarantined mid-round — its slot simply stays empty).
            let _span = rec.span("to-server");
            if let Some((slot, overlap_span)) = refill {
                let reply = slot.complete(fan, &rec);
                drop(overlap_span);
                // A mid-scatter quarantine means the sequential schedule
                // would have skipped this refill: discard the reply so the
                // queue evolves identically.
                if tracker.is_active(home) {
                    if let Some(next) = tracker.upload(home, reply)? {
                        queue.push(QueueEntry(next));
                    }
                }
            } else if tracker.is_active(home) {
                let reply = fan.call(home, Message::RequestNext);
                if let Some(next) = tracker.upload(home, reply)? {
                    queue.push(QueueEntry(next));
                }
            }
            continue;
        }

        // Batched round: draw up to `budget` heads, refilling after each
        // draw exactly as the one-candidate protocol does. The ledger
        // flushes a site's pending feedback right before its refill, so
        // every site observes the unbatched event order (see
        // [`crate::batch`]).
        let mut round = BatchRound::new(order.len(), budget, wire);
        {
            let _span = rec.span("to-server");
            let mut overlap_span = None;
            while round.len() < budget && queue.peek().is_some_and(|h| h.0.local_prob >= q) {
                let cand = queue.pop().expect("peek succeeded").0;
                stats.iterations += 1;
                stats.broadcasts += 1;
                rec.incr(Counter::FeedbackBroadcasts);
                let home = cand.id.site.0 as usize;
                round.push(cand);
                if overlap {
                    // Pipelined draw: the feedback flush and the refill
                    // ride `home`'s link back to back (FIFO preserves the
                    // flush-before-refill site order); the site serves
                    // both over one coordinator wait instead of two.
                    let fed = round.deliver_send(fan, home, &tracker);
                    let refill = tracker.is_active(home).then(|| InflightRefill::send(fan, home));
                    if fed.is_some() && refill.is_some() && overlap_span.is_none() {
                        rec.incr(Counter::OverlappedRounds);
                        overlap_span = Some(rec.span("overlap"));
                    }
                    // Drain both tickets before interpreting either reply,
                    // so an error path leaves no outstanding frames.
                    let fed_reply =
                        fed.map(|(t, idxs)| (t.and_then(|t| fan.complete(home, t)), idxs));
                    let refill_reply = refill.map(|slot| slot.complete(fan, &rec));
                    if let Some((reply, idxs)) = fed_reply {
                        round.absorb_reply(home, &idxs, reply, &mut tracker, &mut stats, &rec)?;
                    }
                    if let Some(reply) = refill_reply {
                        // Discarded if the feedback reply quarantined the
                        // site (see the unbatched path above).
                        if tracker.is_active(home) {
                            if let Some(next) = tracker.upload(home, reply)? {
                                queue.push(QueueEntry(next));
                            }
                        }
                    }
                } else {
                    round.deliver(fan, home, &mut tracker, &mut stats, &rec)?;
                    if tracker.is_active(home) {
                        let reply = fan.call(home, Message::RequestNext);
                        if let Some(next) = tracker.upload(home, reply)? {
                            queue.push(QueueEntry(next));
                        }
                    }
                }
            }
            drop(overlap_span);
        }
        if round.len() > 1 {
            rec.incr(Counter::BatchedRounds);
        }

        // Server-Delivery phase: one coalesced frame per remaining site,
        // all in flight at once.
        {
            let _span = rec.span("server-delivery");
            round.deliver_all(fan, &mut tracker, &mut stats, &rec)?;
        }

        for j in 0..round.len() {
            let global = round.global_probability(j);
            if global >= q {
                let cand = round.candidate(j);
                skyline.push(SkylineEntry { tuple: cand.to_tuple(), probability: global });
                let transmitted = meter.snapshot().since(&start_traffic).tuples_transmitted();
                rec.progressive(cand.id.site.0, cand.id.seq, global, transmitted);
                progress.push(cand.id, global, transmitted, started.elapsed());
                if limit.is_some_and(|k| skyline.len() >= k) {
                    drop(round_span);
                    break 'rounds;
                }
            }
        }
    }
    drop(query_span);

    Ok(QueryOutcome {
        skyline,
        progress,
        traffic: meter.snapshot().since(&start_traffic),
        stats,
        degraded: tracker.degraded(),
        cancelled,
        sites: tracker.statuses(),
        plan: plan_summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(site: u32, seq: u64, local_prob: f64) -> TupleMsg {
        TupleMsg {
            id: dsud_uncertain::TupleId::new(site, seq),
            values: vec![1.0, 1.0],
            prob: 0.5,
            local_prob,
        }
    }

    #[test]
    fn heap_pops_by_probability_then_lowest_id() {
        let mut queue = BinaryHeap::new();
        for m in [msg(0, 0, 0.5), msg(1, 0, 0.9), msg(2, 0, 0.9)] {
            queue.push(QueueEntry(m));
        }
        let order: Vec<(u32, f64)> =
            std::iter::from_fn(|| queue.pop()).map(|e| (e.0.id.site.0, e.0.local_prob)).collect();
        assert_eq!(order, vec![(1, 0.9), (2, 0.9), (0, 0.5)]);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn rejects_bad_threshold() {
        let mut links: Vec<Box<dyn Link>> = Vec::new();
        let meter = BandwidthMeter::new();
        let mask = SubspaceMask::full(2).unwrap();
        assert!(matches!(
            run(&mut links, &meter, 0.0, mask, None),
            Err(Error::InvalidThreshold(_))
        ));
    }
}
