use rand::seq::SliceRandom;
use rand::Rng;

use dsud_uncertain::{Probability, TupleId, UncertainTuple};

use crate::Error;

/// Splits raw `(values, probability)` rows into `m` equally-sized local
/// databases by uniform random assignment, re-identifying every tuple as
/// `(site, seq)`.
///
/// This follows the paper's Section 7 setup: "each tuple from the synthetic
/// uncertain database D is assigned to site S_i chosen uniformly ... every
/// local server possesses an equal number of points". When `n` is not a
/// multiple of `m`, the first `n mod m` sites receive one extra tuple.
///
/// # Errors
///
/// Returns [`Error::InvalidSiteCount`] if `m` is zero or exceeds the number
/// of rows, so that no site is ever empty.
pub fn partition_uniform<R: Rng + ?Sized>(
    rows: Vec<(Vec<f64>, Probability)>,
    m: usize,
    rng: &mut R,
) -> Result<Vec<Vec<UncertainTuple>>, Error> {
    let n = rows.len();
    if m == 0 || m > n {
        return Err(Error::InvalidSiteCount { sites: m, cardinality: n });
    }
    let mut rows = rows;
    rows.shuffle(rng);
    let base = n / m;
    let extra = n % m;
    let mut sites = Vec::with_capacity(m);
    let mut iter = rows.into_iter();
    for site in 0..m {
        let take = base + usize::from(site < extra);
        let tuples = (&mut iter)
            .take(take)
            .enumerate()
            .map(|(seq, (values, prob))| {
                UncertainTuple::new(TupleId::new(site as u32, seq as u64), values, prob)
                    .expect("generated rows are valid")
            })
            .collect();
        sites.push(tuples);
    }
    Ok(sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rows(n: usize) -> Vec<(Vec<f64>, Probability)> {
        (0..n).map(|i| (vec![i as f64, (n - i) as f64], Probability::new(0.5).unwrap())).collect()
    }

    #[test]
    fn splits_evenly() {
        let mut rng = StdRng::seed_from_u64(1);
        let sites = partition_uniform(rows(100), 4, &mut rng).unwrap();
        assert_eq!(sites.len(), 4);
        assert!(sites.iter().all(|s| s.len() == 25));
    }

    #[test]
    fn distributes_remainder_to_leading_sites() {
        let mut rng = StdRng::seed_from_u64(2);
        let sites = partition_uniform(rows(10), 3, &mut rng).unwrap();
        assert_eq!(sites.iter().map(Vec::len).collect::<Vec<_>>(), vec![4, 3, 3]);
    }

    #[test]
    fn ids_are_unique_and_site_scoped() {
        let mut rng = StdRng::seed_from_u64(3);
        let sites = partition_uniform(rows(50), 5, &mut rng).unwrap();
        for (i, site) in sites.iter().enumerate() {
            for (seq, t) in site.iter().enumerate() {
                assert_eq!(t.id(), TupleId::new(i as u32, seq as u64));
            }
        }
    }

    #[test]
    fn preserves_all_rows() {
        let mut rng = StdRng::seed_from_u64(4);
        let input = rows(33);
        let mut expected: Vec<Vec<f64>> = input.iter().map(|(v, _)| v.clone()).collect();
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let sites = partition_uniform(input, 7, &mut rng).unwrap();
        let mut got: Vec<Vec<f64>> = sites.iter().flatten().map(|t| t.values().to_vec()).collect();
        got.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(got, expected);
    }

    #[test]
    fn rejects_degenerate_site_counts() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(partition_uniform(rows(5), 0, &mut rng).is_err());
        assert!(partition_uniform(rows(5), 6, &mut rng).is_err());
    }

    #[test]
    fn shuffling_is_seed_deterministic() {
        let a = partition_uniform(rows(40), 4, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = partition_uniform(rows(40), 4, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
