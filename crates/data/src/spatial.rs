use rand::Rng;
use serde::{Deserialize, Serialize};

/// Spatial distribution of synthetic attribute values, after Börzsönyi
/// et al.'s classic skyline benchmark generator (the paper's Fig. 7 shows
/// *Independent* and *Anticorrelated*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SpatialDistribution {
    /// Attribute values drawn independently and uniformly from `[0, 1)`.
    #[default]
    Independent,
    /// Values clustered around the diagonal: points good on one dimension
    /// tend to be good on all. Produces very few skyline points.
    Correlated,
    /// Values clustered around the anti-diagonal plane `Σ x_i ≈ d/2`:
    /// points good on one dimension tend to be bad on the others. Produces
    /// many skyline points (the hard case in every experiment).
    Anticorrelated,
    /// A Gaussian mixture around a handful of fixed cluster centres — the
    /// "clustered" workload common in the skyline literature, useful for
    /// stressing the PR-tree's spatial grouping.
    Clustered,
}

impl SpatialDistribution {
    /// Samples one `dims`-dimensional point in `[0, 1]^d`.
    pub fn sample<R: Rng + ?Sized>(self, dims: usize, rng: &mut R) -> Vec<f64> {
        match self {
            SpatialDistribution::Independent => (0..dims).map(|_| rng.gen::<f64>()).collect(),
            SpatialDistribution::Correlated => {
                // A common centre drawn from a triangular "peak" law, then
                // small independent jitter, clamped to the unit cube.
                let centre = peak_sample(rng);
                (0..dims)
                    .map(|_| (centre + (rng.gen::<f64>() - 0.5) * 0.2).clamp(0.0, 1.0))
                    .collect()
            }
            SpatialDistribution::Clustered => {
                // Five deterministic centres spread across the cube.
                const CENTRES: [f64; 5] = [0.15, 0.35, 0.55, 0.75, 0.9];
                let c = CENTRES[rng.gen_range(0..CENTRES.len())];
                (0..dims).map(|_| (c + (rng.gen::<f64>() - 0.5) * 0.18).clamp(0.0, 1.0)).collect()
            }
            SpatialDistribution::Anticorrelated => {
                // Börzsönyi's procedure: start from a point on the diagonal
                // plane, then repeatedly shift mass between random pairs of
                // dimensions, keeping the coordinate sum constant.
                let centre = peak_sample(rng);
                let mut v = vec![centre; dims];
                let span = if centre < 0.5 { centre } else { 1.0 - centre };
                let rounds = dims * dims * 2;
                for _ in 0..rounds {
                    let i = rng.gen_range(0..dims);
                    let j = rng.gen_range(0..dims);
                    if i == j {
                        continue;
                    }
                    let delta = (rng.gen::<f64>() * 2.0 - 1.0) * span;
                    let (a, b) = (v[i] + delta, v[j] - delta);
                    if (0.0..=1.0).contains(&a) && (0.0..=1.0).contains(&b) {
                        v[i] = a;
                        v[j] = b;
                    }
                }
                v
            }
        }
    }
}

/// Approximately normal sample in `[0, 1]` centred on `0.5` (sum of 12
/// uniforms, the trick used by the original `randdataset` generator).
fn peak_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    (s / 12.0).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn samples_stay_in_unit_cube() {
        let mut rng = StdRng::seed_from_u64(1);
        for dist in [
            SpatialDistribution::Independent,
            SpatialDistribution::Correlated,
            SpatialDistribution::Anticorrelated,
            SpatialDistribution::Clustered,
        ] {
            for _ in 0..500 {
                let p = dist.sample(4, &mut rng);
                assert_eq!(p.len(), 4);
                assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)), "{dist:?}: {p:?}");
            }
        }
    }

    #[test]
    fn anticorrelated_concentrates_coordinate_sums() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = 3;
        let anti: Vec<f64> = (0..2000)
            .map(|_| SpatialDistribution::Anticorrelated.sample(d, &mut rng).iter().sum())
            .collect();
        let indep: Vec<f64> = (0..2000)
            .map(|_| SpatialDistribution::Independent.sample(d, &mut rng).iter().sum())
            .collect();
        let var = |v: &[f64]| {
            let m = mean(v);
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        // Sums cluster tightly around d/2 for anticorrelated data.
        assert!((mean(&anti) - d as f64 / 2.0).abs() < 0.1);
        assert!(var(&anti) < var(&indep) / 2.0, "{} vs {}", var(&anti), var(&indep));
    }

    #[test]
    fn correlated_coordinates_move_together() {
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Vec<f64>> =
            (0..2000).map(|_| SpatialDistribution::Correlated.sample(2, &mut rng)).collect();
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p[1]).collect();
        let (mx, my) = (mean(&xs), mean(&ys));
        let cov =
            xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / xs.len() as f64;
        // Centre variance of the 12-uniform peak law is 1/144 ≈ 0.007;
        // jitter is independent, so covariance ≈ 0.007.
        assert!(cov > 0.004, "expected positive covariance, got {cov}");
    }

    #[test]
    fn anticorrelated_coordinates_oppose_in_2d() {
        let mut rng = StdRng::seed_from_u64(4);
        let pts: Vec<Vec<f64>> =
            (0..2000).map(|_| SpatialDistribution::Anticorrelated.sample(2, &mut rng)).collect();
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p[1]).collect();
        let (mx, my) = (mean(&xs), mean(&ys));
        let cov =
            xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum::<f64>() / xs.len() as f64;
        assert!(cov < -0.01, "expected negative covariance, got {cov}");
    }

    #[test]
    fn clustered_points_sit_near_centres() {
        let mut rng = StdRng::seed_from_u64(6);
        const CENTRES: [f64; 5] = [0.15, 0.35, 0.55, 0.75, 0.9];
        for _ in 0..500 {
            let p = SpatialDistribution::Clustered.sample(3, &mut rng);
            // Each coordinate lies within the jitter radius of some centre.
            for &x in &p {
                assert!(
                    CENTRES.iter().any(|&c| (x - c).abs() <= 0.091),
                    "coordinate {x} is not near any centre"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = SpatialDistribution::Anticorrelated.sample(3, &mut StdRng::seed_from_u64(9));
        let b = SpatialDistribution::Anticorrelated.sample(3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
