use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use dsud_uncertain::Probability;

use crate::Error;

/// Law used to assign each tuple its existential probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ProbabilityLaw {
    /// `P(t)` uniform over `(0, 1]` — the default of the paper's Table 3.
    #[default]
    Uniform,
    /// `P(t)` drawn from `N(mean, std_dev)` and clamped into `(0, 1]` —
    /// used for the NYSE experiments (Section 7.4; μ ∈ 0.3..0.9, σ = 0.2).
    Gaussian {
        /// Mean appearance probability μ.
        mean: f64,
        /// Standard deviation σ.
        std_dev: f64,
    },
}

impl ProbabilityLaw {
    /// The paper's Gaussian default `N(0.5, 0.2)` (Section 7.5).
    pub fn gaussian_default() -> Self {
        ProbabilityLaw::Gaussian { mean: 0.5, std_dev: 0.2 }
    }

    /// Validates the law's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidGaussian`] if a Gaussian law has a
    /// non-finite mean or a non-finite / non-positive standard deviation.
    pub fn validate(self) -> Result<(), Error> {
        match self {
            ProbabilityLaw::Uniform => Ok(()),
            ProbabilityLaw::Gaussian { mean, std_dev } => {
                if mean.is_finite() && std_dev.is_finite() && std_dev > 0.0 {
                    Ok(())
                } else {
                    Err(Error::InvalidGaussian { mean, std_dev })
                }
            }
        }
    }

    /// Samples one probability.
    ///
    /// Out-of-range Gaussian draws are clamped into `(0, 1]`, matching the
    /// paper's "randomly assign a probability value ... following gaussian
    /// distribution" with valid probabilities.
    ///
    /// # Panics
    ///
    /// Panics if the law fails [`ProbabilityLaw::validate`]; validate at
    /// configuration time.
    pub fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Probability {
        match self {
            ProbabilityLaw::Uniform => {
                // U(0,1]: shift the half-open [0,1) draw away from zero.
                let raw: f64 = rng.gen::<f64>();
                Probability::clamped(1.0 - raw)
            }
            ProbabilityLaw::Gaussian { mean, std_dev } => {
                let normal = Normal::new(mean, std_dev).expect("validated parameters");
                Probability::clamped(normal.sample(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 =
            (0..n).map(|_| ProbabilityLaw::Uniform.sample(&mut rng).get()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "uniform mean {mean}");
    }

    #[test]
    fn gaussian_tracks_requested_mean() {
        let mut rng = StdRng::seed_from_u64(6);
        for mu in [0.3, 0.5, 0.7] {
            let law = ProbabilityLaw::Gaussian { mean: mu, std_dev: 0.2 };
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| law.sample(&mut rng).get()).sum::<f64>() / n as f64;
            // Clamping shifts the mean slightly; allow a loose band.
            assert!((mean - mu).abs() < 0.05, "gaussian(μ={mu}) mean {mean}");
        }
    }

    #[test]
    fn samples_are_valid_probabilities() {
        let mut rng = StdRng::seed_from_u64(7);
        let law = ProbabilityLaw::Gaussian { mean: 0.1, std_dev: 0.5 };
        for _ in 0..5_000 {
            let p = law.sample(&mut rng).get();
            assert!(p > 0.0 && p <= 1.0);
        }
    }

    #[test]
    fn validation_rejects_bad_gaussians() {
        assert!(ProbabilityLaw::Uniform.validate().is_ok());
        assert!(ProbabilityLaw::gaussian_default().validate().is_ok());
        assert!(ProbabilityLaw::Gaussian { mean: 0.5, std_dev: 0.0 }.validate().is_err());
        assert!(ProbabilityLaw::Gaussian { mean: f64::NAN, std_dev: 0.2 }.validate().is_err());
        assert!(ProbabilityLaw::Gaussian { mean: 0.5, std_dev: f64::INFINITY }.validate().is_err());
    }
}
