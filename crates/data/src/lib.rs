//! Workload generators for distributed uncertain skyline experiments.
//!
//! Reproduces the data sets of the paper's Section 7:
//!
//! * **Synthetic** spatial distributions *Independent*, *Correlated* and
//!   *Anticorrelated* in the style of Börzsönyi et al. (the paper's Fig. 7
//!   uses the first and last);
//! * **Existential probability assignment** following a *Uniform* `U(0,1]`
//!   or *Gaussian* `N(μ, σ)` law (Section 7.4 uses μ ∈ 0.3..0.9, σ = 0.2);
//! * A **synthetic NYSE** stock-trade generator substituting for the
//!   proprietary real data set (2M Dell trades, Section 7.4) — see
//!   [`nyse`];
//! * **Horizontal partitioning** of the global database into `m`
//!   equally-sized, randomly-assigned local databases, as the paper
//!   prescribes ("a local site server keeps a random sample set of the
//!   underlying data set, and the sample sets are mutually disjoint").
//!
//! All generation is deterministic given a seed.
//!
//! # Example
//!
//! ```
//! use dsud_data::{ProbabilityLaw, SpatialDistribution, WorkloadSpec};
//!
//! # fn main() -> Result<(), dsud_data::Error> {
//! let spec = WorkloadSpec::new(1_000, 3)
//!     .spatial(SpatialDistribution::Anticorrelated)
//!     .probability_law(ProbabilityLaw::Uniform)
//!     .seed(42);
//! let sites = spec.generate_partitioned(4)?;
//! assert_eq!(sites.len(), 4);
//! assert_eq!(sites.iter().map(Vec::len).sum::<usize>(), 1_000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod nyse;
mod partition;
mod prob;
mod spatial;
mod spec;

pub use error::Error;
pub use partition::partition_uniform;
pub use prob::ProbabilityLaw;
pub use spatial::SpatialDistribution;
pub use spec::WorkloadSpec;
