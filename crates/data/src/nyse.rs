//! Synthetic NYSE stock-trade workload.
//!
//! The paper's Section 7.4 evaluates on "NYSE", 2 million Dell Inc. stock
//! transactions from 1/12/2000 to 22/5/2001 (borrowed from Zhang et al.),
//! with two attributes per trade: average price per share and total volume.
//! That extract is not publicly distributable, so this module generates a
//! synthetic equivalent that reproduces the properties the experiments
//! depend on:
//!
//! * prices follow a geometric random walk with a mild downward drift
//!   (Dell lost roughly half its value over that window), so trades form a
//!   strongly banded, correlated cloud rather than an anticorrelated one;
//! * volumes are heavy-tailed (log-normal) with round-lot clustering;
//! * a "good" trade has *low* price and *high* volume, so the skyline
//!   orientation flips the volume axis (`value = VOLUME_CAP − volume`) to
//!   keep the library-wide "smaller is better" convention.
//!
//! The result, like the real extract, yields far fewer skyline points than
//! an anticorrelated synthetic set of the same size — which is exactly the
//! contrast the paper's Figs. 11 and 13 exercise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, LogNormal, Normal};
use serde::{Deserialize, Serialize};

use dsud_uncertain::{Probability, UncertainTuple};

use crate::{partition_uniform, Error, ProbabilityLaw};

/// Upper bound on per-trade volume; used to flip the volume axis into
/// "smaller is better" orientation.
pub const VOLUME_CAP: f64 = 1_000_000.0;

/// One synthetic stock trade.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Trade {
    /// Average price per share, in dollars.
    pub price: f64,
    /// Number of shares exchanged.
    pub volume: f64,
}

impl Trade {
    /// Converts the trade into skyline attribute values with the
    /// "smaller is better" orientation on both dimensions:
    /// `[price, VOLUME_CAP − volume]`.
    pub fn to_skyline_values(self) -> Vec<f64> {
        vec![self.price, VOLUME_CAP - self.volume]
    }
}

/// Declarative description of a synthetic NYSE workload.
///
/// # Example
///
/// ```
/// use dsud_data::nyse::NyseSpec;
///
/// # fn main() -> Result<(), dsud_data::Error> {
/// let sites = NyseSpec::new(2_000).seed(1).generate_partitioned(4)?;
/// assert_eq!(sites.iter().map(Vec::len).sum::<usize>(), 2_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NyseSpec {
    n: usize,
    seed: u64,
    prob: ProbabilityLaw,
}

impl NyseSpec {
    /// Creates a spec for `n` trades with uniform probabilities and seed 0.
    pub fn new(n: usize) -> Self {
        NyseSpec { n, seed: 0, prob: ProbabilityLaw::Uniform }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the probability assignment law (Section 7.4 uses both Uniform
    /// and Gaussian with μ ∈ 0.3..0.9, σ = 0.2).
    pub fn probability_law(mut self, prob: ProbabilityLaw) -> Self {
        self.prob = prob;
        self
    }

    /// Number of trades.
    pub fn cardinality(&self) -> usize {
        self.n
    }

    /// Generates the raw trades.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyWorkload`] if `n` is zero.
    pub fn generate_trades(&self) -> Result<Vec<Trade>, Error> {
        if self.n == 0 {
            return Err(Error::EmptyWorkload);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Geometric random walk: Dell traded near $25 entering 12/2000 and
        // drifted to the high teens by 5/2001.
        let step = Normal::new(-1.5e-7, 2e-4).expect("constant parameters are valid");
        let volume_law = LogNormal::new(5.8, 1.4).expect("constant parameters are valid");
        let mut log_price = 25f64.ln();
        let mut trades = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            log_price += step.sample(&mut rng);
            log_price = log_price.clamp(5f64.ln(), 60f64.ln());
            // Intra-trade noise around the walk (spread, odd lots).
            let price =
                (log_price.exp() * (1.0 + (rng.gen::<f64>() - 0.5) * 0.01) * 100.0).round() / 100.0;
            let mut volume: f64 = volume_law.sample(&mut rng);
            volume = volume.round().clamp(1.0, VOLUME_CAP);
            // Round-lot clustering: most orders are multiples of 100 shares.
            if volume >= 100.0 && rng.gen::<f64>() < 0.7 {
                volume = (volume / 100.0).round() * 100.0;
            }
            trades.push(Trade { price, volume });
        }
        Ok(trades)
    }

    /// Generates skyline-oriented `(values, probability)` rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyWorkload`] for `n == 0` or
    /// [`Error::InvalidGaussian`] for bad probability-law parameters.
    pub fn generate_rows(&self) -> Result<Vec<(Vec<f64>, Probability)>, Error> {
        self.prob.validate()?;
        let trades = self.generate_trades()?;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5851_f42d_4c95_7f2d);
        Ok(trades
            .into_iter()
            .map(|t| (t.to_skyline_values(), self.prob.sample(&mut rng)))
            .collect())
    }

    /// Generates the workload and partitions it uniformly across `m` sites
    /// ("The entire NYSE data set is assigned to m local sites equally").
    ///
    /// # Errors
    ///
    /// Same as [`NyseSpec::generate_rows`], plus
    /// [`Error::InvalidSiteCount`] for a degenerate `m`.
    pub fn generate_partitioned(&self, m: usize) -> Result<Vec<Vec<UncertainTuple>>, Error> {
        let rows = self.generate_rows()?;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        partition_uniform(rows, m, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{certain_skyline, SubspaceMask};

    #[test]
    fn trades_have_plausible_ranges() {
        let trades = NyseSpec::new(10_000).seed(2).generate_trades().unwrap();
        assert_eq!(trades.len(), 10_000);
        for t in &trades {
            assert!(t.price >= 5.0 && t.price <= 61.0, "price {}", t.price);
            assert!(t.volume >= 1.0 && t.volume <= VOLUME_CAP, "volume {}", t.volume);
        }
    }

    #[test]
    fn volumes_are_heavy_tailed() {
        let trades = NyseSpec::new(20_000).seed(3).generate_trades().unwrap();
        let mut volumes: Vec<f64> = trades.iter().map(|t| t.volume).collect();
        volumes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = volumes[volumes.len() / 2];
        let p99 = volumes[volumes.len() * 99 / 100];
        assert!(p99 / median > 10.0, "median {median}, p99 {p99}");
    }

    #[test]
    fn skyline_is_small_relative_to_anticorrelated() {
        // The real-data experiments rely on NYSE having a compact skyline.
        let rows = NyseSpec::new(5_000).seed(4).generate_rows().unwrap();
        let pts: Vec<Vec<f64>> = rows.iter().map(|(v, _)| v.clone()).collect();
        let sky = certain_skyline(&pts, SubspaceMask::full(2).unwrap());
        assert!(
            sky.len() < 60,
            "expected a compact certain skyline, got {} of {}",
            sky.len(),
            pts.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = NyseSpec::new(100).seed(9).generate_rows().unwrap();
        let b = NyseSpec::new(100).seed(9).generate_rows().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_empty_and_bad_laws() {
        assert!(NyseSpec::new(0).generate_trades().is_err());
        let bad = NyseSpec::new(10)
            .probability_law(ProbabilityLaw::Gaussian { mean: 0.5, std_dev: -0.2 });
        assert!(bad.generate_rows().is_err());
    }

    #[test]
    fn skyline_orientation_flips_volume() {
        let t = Trade { price: 20.0, volume: 400.0 };
        assert_eq!(t.to_skyline_values(), vec![20.0, VOLUME_CAP - 400.0]);
    }
}
