use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use dsud_uncertain::{Probability, SubspaceMask, TupleId, UncertainTuple};

use crate::{partition_uniform, Error, ProbabilityLaw, SpatialDistribution};

/// Declarative description of a synthetic workload (the knobs of the
/// paper's Table 3), with builder-style configuration.
///
/// # Example
///
/// ```
/// use dsud_data::{ProbabilityLaw, SpatialDistribution, WorkloadSpec};
///
/// # fn main() -> Result<(), dsud_data::Error> {
/// let tuples = WorkloadSpec::new(500, 2)
///     .spatial(SpatialDistribution::Independent)
///     .probability_law(ProbabilityLaw::gaussian_default())
///     .seed(7)
///     .generate()?;
/// assert_eq!(tuples.len(), 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    n: usize,
    dims: usize,
    spatial: SpatialDistribution,
    prob: ProbabilityLaw,
    seed: u64,
}

impl WorkloadSpec {
    /// Creates a spec for `n` tuples in `dims` dimensions with the paper's
    /// defaults: independent values, uniform probabilities, seed 0.
    pub fn new(n: usize, dims: usize) -> Self {
        WorkloadSpec {
            n,
            dims,
            spatial: SpatialDistribution::Independent,
            prob: ProbabilityLaw::Uniform,
            seed: 0,
        }
    }

    /// Sets the spatial distribution.
    pub fn spatial(mut self, spatial: SpatialDistribution) -> Self {
        self.spatial = spatial;
        self
    }

    /// Sets the probability assignment law.
    pub fn probability_law(mut self, prob: ProbabilityLaw) -> Self {
        self.prob = prob;
        self
    }

    /// Sets the RNG seed; the same spec always yields the same data.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cardinality `N`.
    pub fn cardinality(&self) -> usize {
        self.n
    }

    /// Dimensionality `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    fn validate(&self) -> Result<(), Error> {
        if self.n == 0 {
            return Err(Error::EmptyWorkload);
        }
        if self.dims == 0 || self.dims > SubspaceMask::MAX_DIMS {
            return Err(Error::InvalidDimensionality(self.dims));
        }
        self.prob.validate()
    }

    /// Generates raw `(values, probability)` rows.
    ///
    /// # Errors
    ///
    /// Returns a validation error for empty workloads, bad dimensionality,
    /// or invalid probability-law parameters.
    pub fn generate_rows(&self) -> Result<Vec<(Vec<f64>, Probability)>, Error> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        Ok((0..self.n)
            .map(|_| {
                let values = self.spatial.sample(self.dims, &mut rng);
                let prob = self.prob.sample(&mut rng);
                (values, prob)
            })
            .collect())
    }

    /// Generates the workload as a single (centralized) list of tuples with
    /// ids `(site 0, 0..n)`.
    ///
    /// # Errors
    ///
    /// Same as [`WorkloadSpec::generate_rows`].
    pub fn generate(&self) -> Result<Vec<UncertainTuple>, Error> {
        Ok(self
            .generate_rows()?
            .into_iter()
            .enumerate()
            .map(|(seq, (values, prob))| {
                UncertainTuple::new(TupleId::new(0, seq as u64), values, prob)
                    .expect("generated rows are valid")
            })
            .collect())
    }

    /// Generates the workload and partitions it uniformly across `m` sites
    /// (the paper's horizontal partitioning).
    ///
    /// # Errors
    ///
    /// Same as [`WorkloadSpec::generate_rows`], plus
    /// [`Error::InvalidSiteCount`] for a degenerate `m`.
    pub fn generate_partitioned(&self, m: usize) -> Result<Vec<Vec<UncertainTuple>>, Error> {
        let rows = self.generate_rows()?;
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        partition_uniform(rows, m, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let tuples = WorkloadSpec::new(100, 4).seed(3).generate().unwrap();
        assert_eq!(tuples.len(), 100);
        assert!(tuples.iter().all(|t| t.dims() == 4));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WorkloadSpec::new(50, 2).seed(11).generate().unwrap();
        let b = WorkloadSpec::new(50, 2).seed(11).generate().unwrap();
        let c = WorkloadSpec::new(50, 2).seed(12).generate().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn partitioned_covers_everything() {
        let spec = WorkloadSpec::new(101, 3).seed(5);
        let sites = spec.generate_partitioned(10).unwrap();
        assert_eq!(sites.len(), 10);
        assert_eq!(sites.iter().map(Vec::len).sum::<usize>(), 101);
    }

    #[test]
    fn validation_errors() {
        assert_eq!(WorkloadSpec::new(0, 2).generate().unwrap_err(), Error::EmptyWorkload);
        assert!(matches!(
            WorkloadSpec::new(10, 0).generate(),
            Err(Error::InvalidDimensionality(0))
        ));
        let bad = WorkloadSpec::new(10, 2)
            .probability_law(ProbabilityLaw::Gaussian { mean: 0.5, std_dev: -1.0 });
        assert!(matches!(bad.generate(), Err(Error::InvalidGaussian { .. })));
    }
}
