use std::fmt;

/// Errors produced by workload generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The requested cardinality was zero.
    EmptyWorkload,
    /// The requested dimensionality was invalid (zero or above the
    /// subspace-mask limit).
    InvalidDimensionality(usize),
    /// The number of sites was zero or exceeded the cardinality.
    InvalidSiteCount {
        /// Requested number of sites.
        sites: usize,
        /// Workload cardinality.
        cardinality: usize,
    },
    /// A Gaussian probability law had a non-finite or non-positive spread.
    InvalidGaussian {
        /// Requested mean.
        mean: f64,
        /// Requested standard deviation.
        std_dev: f64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyWorkload => write!(f, "workload cardinality must be positive"),
            Error::InvalidDimensionality(d) => write!(f, "dimensionality {d} is not supported"),
            Error::InvalidSiteCount { sites, cardinality } => {
                write!(f, "cannot split {cardinality} tuples across {sites} sites")
            }
            Error::InvalidGaussian { mean, std_dev } => {
                write!(f, "invalid gaussian parameters: mean {mean}, std dev {std_dev}")
            }
        }
    }
}

impl std::error::Error for Error {}
