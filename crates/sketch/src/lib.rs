//! Mergeable synopses for the pre-query plan phase.
//!
//! Each site summarizes its *local* skyline-probability distribution in a
//! fixed-size [`SiteSketch`]: a log-bucket quantile sketch (UddSketch-style
//! geometric buckets over `(0, 1]`), a HyperLogLog distinct-tuple estimator,
//! and a small dominance-frequency count-min. All three structures share the
//! property the plan phase depends on: **merge is associative and
//! commutative** (bucket counts add, HLL registers take the max, count-min
//! cells add), so tree aggregators may legally combine child sketches before
//! forwarding — unlike survival-product folds, whose floating-point order the
//! root must own.
//!
//! Sketches only ever inform *scheduling* (batch caps, round shapes). They
//! never decide which tuples qualify, so a stale or lossy sketch can cost
//! frames but can never change an answer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bytes::{Buf, BufMut};
use serde::{Deserialize, Serialize};

/// Number of geometric probability buckets in [`QuantileSketch`].
pub const QUANTILE_BUCKETS: usize = 64;
/// Number of HyperLogLog registers in [`DistinctSketch`].
pub const HLL_REGISTERS: usize = 64;
/// Rows in [`CountMinSketch`] — one independent hash per row.
pub const CM_ROWS: usize = 4;
/// Columns per row in [`CountMinSketch`].
pub const CM_COLS: usize = 64;

/// Buckets per octave: bucket `i` covers probabilities in
/// `(2^-((i+1)/8), 2^-(i/8)]`, a relative-error guarantee of ~9% per
/// bucket, UddSketch-style.
const BUCKETS_PER_OCTAVE: f64 = 8.0;

/// SplitMix64 — the deterministic, dependency-free hash every sketch
/// shares. Identical on every site and every run, which is what keeps the
/// plan phase replayable.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Log-bucket quantile sketch over skyline probabilities in `(0, 1]`.
///
/// Insertions land in geometric buckets of the probability's base-2
/// logarithm; merge is element-wise addition of bucket counts, so any merge
/// order yields the same sketch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSketch {
    counts: [u64; QUANTILE_BUCKETS],
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self { counts: [0; QUANTILE_BUCKETS] }
    }
}

impl QuantileSketch {
    /// Bucket index for a probability. Values at or above 1.0 land in
    /// bucket 0; values at or below the smallest representable bucket
    /// (≈ 2⁻⁸) land in the last bucket, which doubles as the underflow bin.
    fn bucket(p: f64) -> usize {
        if !(p > 0.0) || p >= 1.0 {
            return if p >= 1.0 { 0 } else { QUANTILE_BUCKETS - 1 };
        }
        let idx = (-p.log2() * BUCKETS_PER_OCTAVE).floor() as usize;
        idx.min(QUANTILE_BUCKETS - 1)
    }

    /// Record one observation.
    pub fn insert(&mut self, p: f64) {
        self.counts[Self::bucket(p)] += 1;
    }

    /// Remove one observation previously inserted at the same probability.
    /// Saturates at zero so replayed deletes cannot underflow.
    pub fn remove(&mut self, p: f64) {
        let b = Self::bucket(p);
        self.counts[b] = self.counts[b].saturating_sub(1);
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Conservative (never-under) estimate of how many observations have
    /// probability ≥ `q`: every bucket wholly above `q` plus the bucket
    /// straddling it.
    pub fn count_at_least(&self, q: f64) -> u64 {
        let cutoff = Self::bucket(q);
        self.counts[..=cutoff].iter().sum()
    }

    /// Element-wise additive merge — associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
    }
}

/// HyperLogLog distinct-tuple estimator with 64 six-bit registers (stored
/// one per byte for a fixed, simple wire layout). Merge takes the
/// element-wise register maximum.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistinctSketch {
    registers: [u8; HLL_REGISTERS],
}

impl Default for DistinctSketch {
    fn default() -> Self {
        Self { registers: [0; HLL_REGISTERS] }
    }
}

impl DistinctSketch {
    /// Record one key (a tuple id).
    pub fn insert(&mut self, key: u64) {
        let h = splitmix64(key);
        let idx = (h >> 58) as usize; // top 6 bits pick the register
        let rank = ((h << 6) | 0x20).leading_zeros() as u8 + 1; // rank of the rest
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Standard HLL cardinality estimate with linear counting for the
    /// small-range correction.
    pub fn estimate(&self) -> f64 {
        let m = HLL_REGISTERS as f64;
        let raw_sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
        let raw = 0.709 * m * m / raw_sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        }
    }

    /// Element-wise register maximum — associative, commutative, idempotent.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.registers.iter_mut().zip(other.registers.iter()) {
            *a = (*a).max(*b);
        }
    }
}

/// Count-min sketch over dominance frequencies: sites bump a key each time
/// a tuple participates in a dominance comparison outcome worth tracking
/// (here, each local-skyline survivor keyed by id). Merge is element-wise
/// addition, estimates are upper bounds.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountMinSketch {
    rows: [[u32; CM_COLS]; CM_ROWS],
}

impl Default for CountMinSketch {
    fn default() -> Self {
        Self { rows: [[0; CM_COLS]; CM_ROWS] }
    }
}

impl CountMinSketch {
    fn col(row: usize, key: u64) -> usize {
        (splitmix64(key ^ ((row as u64 + 1) << 56)) % CM_COLS as u64) as usize
    }

    /// Add `count` occurrences of `key`.
    pub fn insert(&mut self, key: u64, count: u32) {
        for (r, row) in self.rows.iter_mut().enumerate() {
            let c = Self::col(r, key);
            row[c] = row[c].saturating_add(count);
        }
    }

    /// Upper-bound estimate of the count recorded for `key`.
    pub fn estimate(&self, key: u64) -> u32 {
        self.rows.iter().enumerate().map(|(r, row)| row[Self::col(r, key)]).min().unwrap_or(0)
    }

    /// Element-wise additive merge — associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.rows.iter_mut().zip(other.rows.iter()) {
            for (a, b) in mine.iter_mut().zip(theirs.iter()) {
                *a = a.saturating_add(*b);
            }
        }
    }
}

/// Magic word opening every encoded [`SiteSketch`] section.
pub const SKETCH_MAGIC: u16 = 0x5AD5;
/// Wire-format version of the sketch payload.
pub const SKETCH_VERSION: u8 = 1;

/// The composite synopsis one site ships in its single plan-phase frame.
///
/// `tuples` counts live local-skyline observations and `deletes` counts
/// tombstones applied through the §5.4 maintenance path; both are plain
/// sums under merge, so the aggregate sketch of a subtree is exactly the
/// sketch the subtree's sites would have produced together.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteSketch {
    /// Distribution of local skyline probabilities.
    pub quantile: QuantileSketch,
    /// Distinct tuple ids observed in local skylines.
    pub distinct: DistinctSketch,
    /// Dominance-frequency heavy-hitter counts keyed by tuple id.
    pub dominance: CountMinSketch,
    /// Live observations summarized (inserts minus nothing — deletes are
    /// tracked separately as tombstones).
    pub tuples: u64,
    /// Tombstones applied via maintenance since the sketch was built.
    pub deletes: u64,
}

impl SiteSketch {
    /// Record one local-skyline entry: id into the distinct and dominance
    /// sketches, probability into the quantile sketch.
    pub fn record(&mut self, id: u64, probability: f64) {
        self.quantile.insert(probability);
        self.distinct.insert(id);
        self.dominance.insert(id, 1);
        self.tuples += 1;
    }

    /// Apply a maintenance delete: the quantile bucket count drops and a
    /// tombstone is noted (HLL and count-min cannot unsee the id, which
    /// only makes downstream plans conservative, never wrong).
    pub fn forget(&mut self, probability: f64) {
        self.quantile.remove(probability);
        self.tuples = self.tuples.saturating_sub(1);
        self.deletes += 1;
    }

    /// Associative, commutative merge of two sketches.
    pub fn merge(&mut self, other: &Self) {
        self.quantile.merge(&other.quantile);
        self.distinct.merge(&other.distinct);
        self.dominance.merge(&other.dominance);
        self.tuples = self.tuples.saturating_add(other.tuples);
        self.deletes = self.deletes.saturating_add(other.deletes);
    }

    /// Conservative count of summarized tuples with probability ≥ `q`.
    pub fn count_at_least(&self, q: f64) -> u64 {
        self.quantile.count_at_least(q)
    }

    /// Exact encoded size in bytes: magic + version + counters + the three
    /// fixed-width sections.
    pub const fn encoded_len() -> usize {
        2 + 1 // magic + version
            + 8 + 8 // tuples + deletes
            + QUANTILE_BUCKETS * 8
            + HLL_REGISTERS
            + CM_ROWS * CM_COLS * 4
    }

    /// Serialize into `buf` — always exactly [`Self::encoded_len`] bytes.
    pub fn encode(&self, buf: &mut impl BufMut) {
        buf.put_u16(SKETCH_MAGIC);
        buf.put_u8(SKETCH_VERSION);
        buf.put_u64(self.tuples);
        buf.put_u64(self.deletes);
        for &c in &self.quantile.counts {
            buf.put_u64(c);
        }
        buf.put_slice(&self.distinct.registers);
        for row in &self.dominance.rows {
            for &cell in row.iter() {
                buf.put_u32(cell);
            }
        }
    }

    /// Decode one sketch from the front of `buf`, consuming exactly
    /// [`Self::encoded_len`] bytes. Returns `None` on a short buffer, a
    /// wrong magic, or an unknown version — the caller treats the frame as
    /// malformed and falls back to static planning.
    pub fn decode(buf: &mut &[u8]) -> Option<Self> {
        if buf.remaining() < Self::encoded_len() {
            return None;
        }
        if buf.get_u16() != SKETCH_MAGIC || buf.get_u8() != SKETCH_VERSION {
            return None;
        }
        let tuples = buf.get_u64();
        let deletes = buf.get_u64();
        let mut quantile = QuantileSketch::default();
        for c in quantile.counts.iter_mut() {
            *c = buf.get_u64();
        }
        let mut distinct = DistinctSketch::default();
        for r in distinct.registers.iter_mut() {
            *r = buf.get_u8();
        }
        let mut dominance = CountMinSketch::default();
        for row in dominance.rows.iter_mut() {
            for cell in row.iter_mut() {
                *cell = buf.get_u32();
            }
        }
        Some(Self { quantile, distinct, dominance, tuples, deletes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64, n: u64) -> SiteSketch {
        let mut s = SiteSketch::default();
        for i in 0..n {
            let h = splitmix64(seed.wrapping_mul(1000) + i);
            let p = (h % 1000) as f64 / 1000.0;
            s.record(seed * 10_000 + i, p);
        }
        s
    }

    #[test]
    fn quantile_count_at_least_never_undercounts() {
        let mut qs = QuantileSketch::default();
        let probs: Vec<f64> = (1..=200).map(|i| f64::from(i) / 200.0).collect();
        for &p in &probs {
            qs.insert(p);
        }
        for q in [0.05, 0.1, 0.3, 0.5, 0.9, 1.0] {
            let exact = probs.iter().filter(|&&p| p >= q).count() as u64;
            assert!(
                qs.count_at_least(q) >= exact,
                "q={q}: sketch said {} but {} qualify",
                qs.count_at_least(q),
                exact
            );
        }
        assert_eq!(qs.total(), 200);
    }

    #[test]
    fn quantile_handles_degenerate_probabilities() {
        let mut qs = QuantileSketch::default();
        qs.insert(0.0);
        qs.insert(-1.0);
        qs.insert(f64::NAN);
        qs.insert(1.0);
        qs.insert(2.0);
        assert_eq!(qs.total(), 5);
        assert_eq!(qs.count_at_least(1.0), 2, "only the >=1.0 inserts sit in bucket 0");
    }

    #[test]
    fn quantile_remove_reverses_insert_and_saturates() {
        let mut qs = QuantileSketch::default();
        qs.insert(0.42);
        qs.remove(0.42);
        assert_eq!(qs, QuantileSketch::default());
        qs.remove(0.42); // already empty — must not underflow
        assert_eq!(qs.total(), 0);
    }

    #[test]
    fn distinct_estimate_is_in_the_ballpark() {
        let mut hll = DistinctSketch::default();
        for id in 0..5_000u64 {
            hll.insert(id);
            hll.insert(id); // duplicates must not move the estimate
        }
        let est = hll.estimate();
        assert!((2_500.0..=10_000.0).contains(&est), "5000 distinct keys estimated as {est}");
    }

    #[test]
    fn count_min_never_underestimates() {
        let mut cm = CountMinSketch::default();
        for key in 0..300u64 {
            cm.insert(key, (key % 7) as u32 + 1);
        }
        for key in 0..300u64 {
            assert!(cm.estimate(key) >= (key % 7) as u32 + 1, "key {key}");
        }
        assert_eq!(cm.estimate(999_999), cm.estimate(999_999)); // deterministic
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (sample(1, 50), sample(2, 80), sample(3, 30));

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");

        // a ⊔ b == b ⊔ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");

        assert_eq!(left.tuples, 160);
        assert!(left.count_at_least(0.3) >= a.count_at_least(0.3));
    }

    #[test]
    fn encode_decode_roundtrips_exactly() {
        let sketch = sample(7, 120);
        let mut raw = bytes::BytesMut::new();
        sketch.encode(&mut raw);
        let buf = raw.to_vec();
        assert_eq!(buf.len(), SiteSketch::encoded_len());
        let mut slice = buf.as_slice();
        let decoded = SiteSketch::decode(&mut slice).expect("well-formed sketch decodes");
        assert!(slice.is_empty(), "decode must consume exactly encoded_len bytes");
        assert_eq!(decoded, sketch);
    }

    #[test]
    fn malformed_sketches_decode_to_none() {
        let sketch = sample(9, 40);
        let mut raw = bytes::BytesMut::new();
        sketch.encode(&mut raw);
        let buf = raw.to_vec();

        // Truncation at every section boundary (and a few interior cuts).
        for cut in [0, 1, 2, 3, 10, 19, 19 + 512, 19 + 512 + 64, buf.len() - 1] {
            let mut slice = &buf[..cut];
            assert!(SiteSketch::decode(&mut slice).is_none(), "truncated at {cut}");
        }

        // Corrupted magic and unknown version.
        for (at, label) in [(0, "magic"), (2, "version")] {
            let mut bad = buf.clone();
            bad[at] ^= 0xFF;
            let mut slice = bad.as_slice();
            assert!(SiteSketch::decode(&mut slice).is_none(), "corrupted {label}");
        }
    }

    #[test]
    fn forget_tracks_tombstones_conservatively() {
        let mut s = SiteSketch::default();
        s.record(1, 0.8);
        s.record(2, 0.6);
        s.forget(0.6);
        assert_eq!(s.tuples, 1);
        assert_eq!(s.deletes, 1);
        assert_eq!(s.count_at_least(0.7), 1);
        assert!(s.distinct.estimate() >= 1.0, "HLL never forgets — only conservative");
    }
}
