use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Error, Probability};

/// Identifier of a local site in the distributed system.
///
/// Site `0..m` are the participants `S_1..S_m` of the paper; the central
/// server is not a site and has no `SiteId`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub u32);

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Globally unique tuple identifier: the home site plus a per-site sequence
/// number.
///
/// The paper assumes tuples across local databases are unique (Section 3.1);
/// the `(site, seq)` pair encodes that uniqueness structurally.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TupleId {
    /// Home site of the tuple.
    pub site: SiteId,
    /// Sequence number unique within the home site.
    pub seq: u64,
}

impl TupleId {
    /// Creates a tuple id from a raw site number and sequence number.
    pub fn new(site: u32, seq: u64) -> Self {
        TupleId { site: SiteId(site), seq }
    }
}

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.site, self.seq)
    }
}

/// A tuple of the uncertainty data model: attribute values plus an
/// existential probability (the paper's Fig. 2).
///
/// Smaller attribute values are preferable on every dimension (the usual
/// skyline convention used throughout the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainTuple {
    id: TupleId,
    values: Vec<f64>,
    prob: Probability,
}

impl UncertainTuple {
    /// Creates a tuple from its id, attribute values, and existential
    /// probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFiniteValue`] if any attribute is NaN or
    /// infinite, and [`Error::InvalidDimensionality`] if `values` is empty.
    ///
    /// # Example
    ///
    /// ```
    /// use dsud_uncertain::{Probability, TupleId, UncertainTuple};
    ///
    /// # fn main() -> Result<(), dsud_uncertain::Error> {
    /// // The paper's running example: hotel <340, 66> with confidence 0.8.
    /// let t = UncertainTuple::new(TupleId::new(1, 7), vec![340.0, 66.0], Probability::new(0.8)?)?;
    /// assert_eq!(t.dims(), 2);
    /// assert_eq!(t.prob().get(), 0.8);
    /// # Ok(())
    /// # }
    /// ```
    pub fn new(id: TupleId, values: Vec<f64>, prob: Probability) -> Result<Self, Error> {
        if values.is_empty() {
            return Err(Error::InvalidDimensionality(0));
        }
        if let Some(&bad) = values.iter().find(|v| !v.is_finite()) {
            return Err(Error::NonFiniteValue(bad));
        }
        Ok(UncertainTuple { id, values, prob })
    }

    /// The tuple's globally unique identifier.
    pub fn id(&self) -> TupleId {
        self.id
    }

    /// The attribute values; smaller is better on every dimension.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The existential probability `P(t)`.
    pub fn prob(&self) -> Probability {
        self.prob
    }

    /// Number of dimensions of this tuple.
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Sum of coordinates — the L1 distance from the space origin, i.e. the
    /// `mindist` key used by BBS-style traversal (paper Section 6.2).
    pub fn mindist(&self) -> f64 {
        self.values.iter().sum()
    }
}

impl fmt::Display for UncertainTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "; P={})", self.prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn rejects_empty_values() {
        assert_eq!(
            UncertainTuple::new(TupleId::new(0, 0), vec![], p(0.5)),
            Err(Error::InvalidDimensionality(0))
        );
    }

    #[test]
    fn rejects_non_finite_values() {
        let err = UncertainTuple::new(TupleId::new(0, 0), vec![1.0, f64::NAN], p(0.5));
        assert!(matches!(err, Err(Error::NonFiniteValue(_))));
        let err = UncertainTuple::new(TupleId::new(0, 0), vec![f64::INFINITY], p(0.5));
        assert!(matches!(err, Err(Error::NonFiniteValue(_))));
    }

    #[test]
    fn mindist_is_coordinate_sum() {
        let t = UncertainTuple::new(TupleId::new(0, 0), vec![3.0, 8.0], p(0.8)).unwrap();
        assert_eq!(t.mindist(), 11.0);
    }

    #[test]
    fn ids_order_by_site_then_seq() {
        assert!(TupleId::new(0, 99) < TupleId::new(1, 0));
        assert!(TupleId::new(1, 0) < TupleId::new(1, 1));
    }

    #[test]
    fn display_is_informative() {
        let t = UncertainTuple::new(TupleId::new(2, 5), vec![6.0, 6.0], p(0.7)).unwrap();
        assert_eq!(t.to_string(), "(6, 6; P=0.7)");
        assert_eq!(t.id().to_string(), "S2#5");
    }
}
