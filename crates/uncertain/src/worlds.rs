//! Possible-world semantics: exhaustive enumeration used as ground truth.
//!
//! An uncertain database of `n` tuples induces `2^n` possible worlds; world
//! `W` occurs with probability `∏_{t ∈ W} P(t) × ∏_{t ∉ W} (1 − P(t))`
//! (Eq. 1). The skyline probability of a tuple is the total probability of
//! the worlds whose skyline contains it (Eq. 2). Enumerating worlds is
//! exponential and only viable for tiny inputs, which is exactly the role of
//! this module: an oracle against which the closed-form Eq. 3 computation
//! and all distributed algorithms are validated.

use crate::{dominance, Error, SubspaceMask, UncertainDb};

/// Largest database size for which world enumeration is permitted (`2^22`
/// worlds ≈ 4M skyline computations).
pub const MAX_ENUMERABLE: usize = 22;

/// A single possible world: the subset of tuple indices that materialized,
/// and the probability of this exact world.
#[derive(Debug, Clone, PartialEq)]
pub struct PossibleWorld {
    /// Bitmask over tuple indices: bit `i` set means tuple `i` appears.
    pub members: u64,
    /// Occurrence probability `P(W)` of Eq. (1).
    pub probability: f64,
}

impl PossibleWorld {
    /// Whether tuple index `i` appears in this world.
    pub fn contains(&self, i: usize) -> bool {
        i < 64 && self.members & (1u64 << i) != 0
    }
}

/// Enumerates every possible world of `db` together with its probability.
///
/// # Errors
///
/// Returns [`Error::TooManyWorlds`] if `db` has more than
/// [`MAX_ENUMERABLE`] tuples.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{worlds, Probability, TupleId, UncertainDb, UncertainTuple};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let db = UncertainDb::from_tuples(2, [
///     UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 2.0], Probability::new(0.8)?)?,
/// ])?;
/// let all = worlds::enumerate(&db)?;
/// assert_eq!(all.len(), 2);
/// let total: f64 = all.iter().map(|w| w.probability).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn enumerate(db: &UncertainDb) -> Result<Vec<PossibleWorld>, Error> {
    let n = db.len();
    if n > MAX_ENUMERABLE {
        return Err(Error::TooManyWorlds(n));
    }
    let probs: Vec<f64> = db.iter().map(|t| t.prob().get()).collect();
    let mut out = Vec::with_capacity(1usize << n);
    for members in 0u64..(1u64 << n) {
        let mut p = 1.0;
        for (i, &pi) in probs.iter().enumerate() {
            if members & (1u64 << i) != 0 {
                p *= pi;
            } else {
                p *= 1.0 - pi;
            }
        }
        out.push(PossibleWorld { members, probability: p });
    }
    Ok(out)
}

/// Computes the skyline of one world: indices of members not dominated by
/// any other member, on the dimensions selected by `mask`.
pub fn world_skyline(db: &UncertainDb, world: &PossibleWorld, mask: SubspaceMask) -> Vec<usize> {
    let tuples = db.tuples();
    let members: Vec<usize> = (0..tuples.len()).filter(|&i| world.contains(i)).collect();
    members
        .iter()
        .copied()
        .filter(|&i| {
            members.iter().all(|&j| {
                j == i || !dominance::dominates_in(tuples[j].values(), tuples[i].values(), mask)
            })
        })
        .collect()
}

/// Exhaustive skyline probabilities for every tuple of `db` (Eq. 2), by
/// summing `P(W)` over all worlds whose skyline contains the tuple.
///
/// The result is aligned with `db.tuples()`.
///
/// # Errors
///
/// Returns [`Error::TooManyWorlds`] if `db` exceeds [`MAX_ENUMERABLE`]
/// tuples, or [`Error::InvalidSubspace`] for an out-of-space mask.
pub fn exhaustive_skyline_probabilities(
    db: &UncertainDb,
    mask: SubspaceMask,
) -> Result<Vec<f64>, Error> {
    mask.validate_for(db.dims())?;
    let worlds = enumerate(db)?;
    let mut acc = vec![0.0; db.len()];
    for w in &worlds {
        for i in world_skyline(db, w, mask) {
            acc[i] += w.probability;
        }
    }
    Ok(acc)
}

/// A tiny deterministic PRNG (xorshift64*), so Monte Carlo estimation needs
/// no external dependency and is reproducible from a seed.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64 { state: seed | 1 }
    }

    fn next_f64(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let bits = self.state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        ((bits >> 11) as f64) / ((1u64 << 53) as f64)
    }
}

/// Monte Carlo estimate of every tuple's skyline probability: materializes
/// `samples` independent possible worlds and counts skyline memberships
/// (Eq. 2 by simulation).
///
/// Enumeration ([`exhaustive_skyline_probabilities`]) is exact but limited
/// to [`MAX_ENUMERABLE`] tuples; sampling works at any cardinality with
/// standard `O(1/√samples)` error, making it the validation oracle for
/// databases of realistic size. The result is aligned with `db.tuples()`.
///
/// # Errors
///
/// Returns [`Error::InvalidSubspace`] for a mask outside the database
/// space, or [`Error::TooManyWorlds`] if `samples` is zero (no estimate is
/// possible).
///
/// # Example
///
/// ```
/// use dsud_uncertain::{worlds, Probability, SubspaceMask, TupleId, UncertainDb, UncertainTuple};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let db = UncertainDb::from_tuples(2, [
///     UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 1.0], Probability::new(0.8)?)?,
///     UncertainTuple::new(TupleId::new(0, 1), vec![2.0, 2.0], Probability::new(0.6)?)?,
/// ])?;
/// let mask = SubspaceMask::full(2)?;
/// let est = worlds::sample_skyline_probabilities(&db, mask, 20_000, 42)?;
/// // Exact values are 0.8 and 0.6 × 0.2 = 0.12.
/// assert!((est[0] - 0.8).abs() < 0.02);
/// assert!((est[1] - 0.12).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
pub fn sample_skyline_probabilities(
    db: &UncertainDb,
    mask: SubspaceMask,
    samples: usize,
    seed: u64,
) -> Result<Vec<f64>, Error> {
    mask.validate_for(db.dims())?;
    if samples == 0 {
        return Err(Error::TooManyWorlds(0));
    }
    let tuples = db.tuples();
    let n = tuples.len();
    let mut rng = XorShift64::new(seed);
    let mut hits = vec![0u64; n];
    // Scratch buffers reused across worlds.
    let mut members: Vec<usize> = Vec::with_capacity(n);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for _ in 0..samples {
        members.clear();
        for (i, t) in tuples.iter().enumerate() {
            if rng.next_f64() < t.prob().get() {
                members.push(i);
            }
        }
        // Sort-filter-scan: in ascending masked coordinate sum, a point's
        // dominators all precede it, so testing against the accepted
        // skyline suffices.
        order.clear();
        order.extend_from_slice(&members);
        let key = |i: usize| -> f64 {
            mask.dims()
                .take_while(|&d| d < tuples[i].values().len())
                .map(|d| tuples[i].values()[d])
                .sum()
        };
        order.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).expect("finite values"));
        let mut sky: Vec<usize> = Vec::new();
        for &i in &order {
            if !sky
                .iter()
                .any(|&s| dominance::dominates_in(tuples[s].values(), tuples[i].values(), mask))
            {
                sky.push(i);
                hits[i] += 1;
            }
        }
    }
    Ok(hits.into_iter().map(|h| h as f64 / samples as f64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Probability, TupleId, UncertainTuple};

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn fig3_db() -> UncertainDb {
        UncertainDb::from_tuples(
            2,
            [
                tuple(1, vec![80.0, 96.0], 0.8),
                tuple(2, vec![85.0, 90.0], 0.6),
                tuple(3, vec![75.0, 95.0], 0.8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn fig3_world_probabilities() {
        let db = fig3_db();
        let worlds = enumerate(&db).unwrap();
        assert_eq!(worlds.len(), 8);
        // W1 = {} : 0.2 × 0.4 × 0.2 = 0.016
        assert!((worlds[0].probability - 0.016).abs() < 1e-12);
        // W8 = {t1, t2, t3} : 0.8 × 0.6 × 0.8 = 0.384
        assert!((worlds[7].probability - 0.384).abs() < 1e-12);
        let total: f64 = worlds.iter().map(|w| w.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig3_exhaustive_matches_closed_form() {
        let db = fig3_db();
        let mask = SubspaceMask::full(2).unwrap();
        let exhaustive = exhaustive_skyline_probabilities(&db, mask).unwrap();
        for (i, t) in db.iter().enumerate() {
            let closed = db.skyline_probability(t);
            assert!(
                (exhaustive[i] - closed).abs() < 1e-12,
                "tuple {i}: exhaustive {} vs closed-form {closed}",
                exhaustive[i]
            );
        }
        // Paper's reported values.
        assert!((exhaustive[0] - 0.16).abs() < 1e-12);
        assert!((exhaustive[1] - 0.6).abs() < 1e-12);
        assert!((exhaustive[2] - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_world_has_empty_skyline() {
        let db = fig3_db();
        let empty = PossibleWorld { members: 0, probability: 0.016 };
        let mask = SubspaceMask::full(2).unwrap();
        assert!(world_skyline(&db, &empty, mask).is_empty());
    }

    #[test]
    fn rejects_oversized_databases() {
        let tuples =
            (0..(MAX_ENUMERABLE as u64 + 1)).map(|i| tuple(i, vec![i as f64, i as f64], 0.5));
        let db = UncertainDb::from_tuples(2, tuples).unwrap();
        assert!(matches!(enumerate(&db), Err(Error::TooManyWorlds(_))));
    }

    #[test]
    fn sampling_converges_to_closed_form() {
        // 60 tuples — far beyond enumeration, easy for sampling.
        let tuples: Vec<UncertainTuple> = (0..60)
            .map(|i| {
                let x = ((i * 37) % 61) as f64;
                let y = ((i * 17) % 53) as f64;
                let p = 0.05 + 0.9 * (((i * 7) % 11) as f64 / 11.0);
                tuple(i, vec![x, y], p)
            })
            .collect();
        let db = UncertainDb::from_tuples(2, tuples).unwrap();
        let mask = SubspaceMask::full(2).unwrap();
        let est = sample_skyline_probabilities(&db, mask, 8_000, 7).unwrap();
        for (i, t) in db.iter().enumerate() {
            let exact = db.skyline_probability(t);
            assert!(
                (est[i] - exact).abs() < 0.04,
                "tuple {i}: sampled {} vs exact {exact}",
                est[i]
            );
        }
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let db = fig3_db();
        let mask = SubspaceMask::full(2).unwrap();
        let a = sample_skyline_probabilities(&db, mask, 1_000, 3).unwrap();
        let b = sample_skyline_probabilities(&db, mask, 1_000, 3).unwrap();
        let c = sample_skyline_probabilities(&db, mask, 1_000, 4).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sampling_rejects_degenerate_input() {
        let db = fig3_db();
        let mask = SubspaceMask::full(2).unwrap();
        assert!(sample_skyline_probabilities(&db, mask, 0, 1).is_err());
        let bad = SubspaceMask::from_dims(&[9]).unwrap();
        assert!(sample_skyline_probabilities(&db, bad, 10, 1).is_err());
    }

    #[test]
    fn subspace_exhaustive_matches_closed_form() {
        let db = fig3_db();
        let d1 = SubspaceMask::from_dims(&[1]).unwrap();
        let exhaustive = exhaustive_skyline_probabilities(&db, d1).unwrap();
        for (i, t) in db.iter().enumerate() {
            let closed = db.skyline_probability_in(t, d1);
            assert!((exhaustive[i] - closed).abs() < 1e-12);
        }
    }
}
