use serde::{Deserialize, Serialize};

use crate::SubspaceMask;

/// Outcome of comparing two points under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomRelation {
    /// The first point dominates the second (`a ≺ b`).
    Dominates,
    /// The first point is dominated by the second (`b ≺ a`).
    DominatedBy,
    /// The points coincide on every compared dimension.
    Equal,
    /// Neither point dominates the other.
    Incomparable,
}

/// Tests whether `a` dominates `b` over the full space (`a ≺ b`).
///
/// Dominance follows the paper's Section 3.1: `a`'s values must be no larger
/// than `b`'s on every dimension and strictly smaller on at least one
/// (smaller is better).
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length is compared.
///
/// # Example
///
/// ```
/// use dsud_uncertain::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0])); // incomparable
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal is not dominated
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "dominance requires equal dimensionality");
    let mut strictly_less = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_less = true;
        }
    }
    strictly_less
}

/// Tests whether `a` dominates `b` on the dimensions selected by `mask`
/// (subspace skyline semantics of the paper's Section 4).
///
/// Dimensions outside both slices' range are ignored, so a mask validated
/// with [`SubspaceMask::validate_for`] is always safe to pass.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{dominates_in, SubspaceMask};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let price_only = SubspaceMask::from_dims(&[0])?;
/// // (100, 5) does not dominate (200, 1) in full space, but does on price.
/// assert!(dominates_in(&[100.0, 5.0], &[200.0, 1.0], price_only));
/// # Ok(())
/// # }
/// ```
pub fn dominates_in(a: &[f64], b: &[f64], mask: SubspaceMask) -> bool {
    let mut strictly_less = false;
    for d in mask.dims() {
        if d >= a.len() || d >= b.len() {
            break;
        }
        if a[d] > b[d] {
            return false;
        }
        if a[d] < b[d] {
            strictly_less = true;
        }
    }
    strictly_less
}

/// Full dominance comparison of `a` and `b` on the selected subspace.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{relation, DomRelation, SubspaceMask};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let full = SubspaceMask::full(2)?;
/// assert_eq!(relation(&[1.0, 1.0], &[2.0, 2.0], full), DomRelation::Dominates);
/// assert_eq!(relation(&[2.0, 2.0], &[1.0, 1.0], full), DomRelation::DominatedBy);
/// assert_eq!(relation(&[1.0, 2.0], &[2.0, 1.0], full), DomRelation::Incomparable);
/// assert_eq!(relation(&[1.0, 2.0], &[1.0, 2.0], full), DomRelation::Equal);
/// # Ok(())
/// # }
/// ```
pub fn relation(a: &[f64], b: &[f64], mask: SubspaceMask) -> DomRelation {
    let mut a_less = false;
    let mut b_less = false;
    for d in mask.dims() {
        if d >= a.len() || d >= b.len() {
            break;
        }
        if a[d] < b[d] {
            a_less = true;
        } else if a[d] > b[d] {
            b_less = true;
        }
        if a_less && b_less {
            return DomRelation::Incomparable;
        }
    }
    match (a_less, b_less) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => DomRelation::Incomparable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance_requires_one_strict_dim() {
        assert!(dominates(&[1.0, 1.0], &[1.0, 2.0]));
        assert!(dominates(&[0.5, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let a = [1.0, 5.0];
        let b = [2.0, 6.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn paper_fig1_hotels() {
        // P1(2,8), P2(4,6), P3(4,4): P3 dominates P2? values (4,4) vs (4,6):
        // yes. P1 vs P3 incomparable.
        assert!(dominates(&[4.0, 4.0], &[4.0, 6.0]));
        assert!(!dominates(&[2.0, 8.0], &[4.0, 4.0]));
        assert!(!dominates(&[4.0, 4.0], &[2.0, 8.0]));
    }

    #[test]
    fn subspace_changes_outcome() {
        let full = SubspaceMask::full(2).unwrap();
        let d0 = SubspaceMask::from_dims(&[0]).unwrap();
        let d1 = SubspaceMask::from_dims(&[1]).unwrap();
        let a = [1.0, 9.0];
        let b = [2.0, 3.0];
        assert_eq!(relation(&a, &b, full), DomRelation::Incomparable);
        assert_eq!(relation(&a, &b, d0), DomRelation::Dominates);
        assert_eq!(relation(&a, &b, d1), DomRelation::DominatedBy);
    }

    #[test]
    fn relation_matches_dominates() {
        let full = SubspaceMask::full(3).unwrap();
        let pts =
            [vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 2.0], vec![3.0, 1.0, 1.0], vec![1.0, 2.0, 3.0]];
        for a in &pts {
            for b in &pts {
                let rel = relation(a, b, full);
                assert_eq!(rel == DomRelation::Dominates, dominates(a, b));
                assert_eq!(rel == DomRelation::DominatedBy, dominates(b, a));
            }
        }
    }
}
