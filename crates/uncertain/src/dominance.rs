use serde::{Deserialize, Serialize};

use crate::{SubspaceMask, UncertainTuple};

/// Outcome of comparing two points under Pareto dominance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomRelation {
    /// The first point dominates the second (`a ≺ b`).
    Dominates,
    /// The first point is dominated by the second (`b ≺ a`).
    DominatedBy,
    /// The points coincide on every compared dimension.
    Equal,
    /// Neither point dominates the other.
    Incomparable,
}

/// Tests whether `a` dominates `b` over the full space (`a ≺ b`).
///
/// Dominance follows the paper's Section 3.1: `a`'s values must be no larger
/// than `b`'s on every dimension and strictly smaller on at least one
/// (smaller is better).
///
/// # Panics
///
/// Panics in debug builds if the slices have different lengths; in release
/// builds the shorter length is compared.
///
/// # Example
///
/// ```
/// use dsud_uncertain::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 3.0], &[3.0, 1.0])); // incomparable
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal is not dominated
/// ```
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "dominance requires equal dimensionality");
    let mut strictly_less = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly_less = true;
        }
    }
    strictly_less
}

/// Tests whether `a` dominates `b` on the dimensions selected by `mask`
/// (subspace skyline semantics of the paper's Section 4).
///
/// Dimensions outside both slices' range are ignored, so a mask validated
/// with [`SubspaceMask::validate_for`] is always safe to pass.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{dominates_in, SubspaceMask};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let price_only = SubspaceMask::from_dims(&[0])?;
/// // (100, 5) does not dominate (200, 1) in full space, but does on price.
/// assert!(dominates_in(&[100.0, 5.0], &[200.0, 1.0], price_only));
/// # Ok(())
/// # }
/// ```
pub fn dominates_in(a: &[f64], b: &[f64], mask: SubspaceMask) -> bool {
    let mut strictly_less = false;
    for d in mask.dims() {
        if d >= a.len() || d >= b.len() {
            break;
        }
        if a[d] > b[d] {
            return false;
        }
        if a[d] < b[d] {
            strictly_less = true;
        }
    }
    strictly_less
}

/// Full dominance comparison of `a` and `b` on the selected subspace.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{relation, DomRelation, SubspaceMask};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let full = SubspaceMask::full(2)?;
/// assert_eq!(relation(&[1.0, 1.0], &[2.0, 2.0], full), DomRelation::Dominates);
/// assert_eq!(relation(&[2.0, 2.0], &[1.0, 1.0], full), DomRelation::DominatedBy);
/// assert_eq!(relation(&[1.0, 2.0], &[2.0, 1.0], full), DomRelation::Incomparable);
/// assert_eq!(relation(&[1.0, 2.0], &[1.0, 2.0], full), DomRelation::Equal);
/// # Ok(())
/// # }
/// ```
pub fn relation(a: &[f64], b: &[f64], mask: SubspaceMask) -> DomRelation {
    let mut a_less = false;
    let mut b_less = false;
    for d in mask.dims() {
        if d >= a.len() || d >= b.len() {
            break;
        }
        if a[d] < b[d] {
            a_less = true;
        } else if a[d] > b[d] {
            b_less = true;
        }
        if a_less && b_less {
            return DomRelation::Incomparable;
        }
    }
    match (a_less, b_less) {
        (true, false) => DomRelation::Dominates,
        (false, true) => DomRelation::DominatedBy,
        (false, false) => DomRelation::Equal,
        (true, true) => DomRelation::Incomparable,
    }
}

/// Rows per bitset word; dominance tests are evaluated in blocks of this
/// many tuples at a time.
const LANE: usize = 64;

/// Sub-word width of the chunked comparison kernel: a full 64-row word is
/// evaluated as four independent 16-lane accumulators so the compiler can
/// keep four vector lanes in flight (`u64x4`-style) without a nightly
/// `std::simd` dependency.
const CHUNK: usize = 16;

/// Whether the chunked comparison kernel is disabled.
///
/// Set `DSUD_KERNEL=scalar` to force the original serial 64-lane loop —
/// both kernels produce identical bitsets (booleans shifted into a word;
/// no floating-point accumulation differs), so this switch exists for
/// benchmarking and for ruling the kernel out when debugging, never for
/// correctness. The variable is read once per process.
fn scalar_kernel_forced() -> bool {
    static FORCED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("DSUD_KERNEL").map(|v| v.eq_ignore_ascii_case("scalar")).unwrap_or(false)
    })
}

/// `(leq, lt)` comparison bitsets of one full column word against `p`,
/// evaluated serially (the pre-chunking kernel, kept as the runtime
/// fallback and as the ground truth the chunked kernel is tested against).
fn cmp_word_scalar(col: &[f64], p: f64, reversed: bool) -> (u64, u64) {
    let mut leq: u64 = 0;
    let mut lt: u64 = 0;
    for (j, &v) in col.iter().enumerate() {
        let (lo, hi) = if reversed { (p, v) } else { (v, p) };
        leq |= u64::from(lo <= hi) << j;
        lt |= u64::from(lo < hi) << j;
    }
    (leq, lt)
}

/// `(leq, lt)` comparison bitsets of one full 64-row column word against
/// `p`, evaluated as four independent 16-lane chunks. Each chunk owns its
/// accumulator pair, so the four fixed-trip inner loops have no
/// loop-carried dependency between them and autovectorize to packed
/// compares; the chunk masks are OR-merged at their lane offsets. The
/// result is bit-identical to [`cmp_word_scalar`] (each bit is an
/// independent boolean; only evaluation order changes).
fn cmp_word_chunked(col: &[f64], p: f64, reversed: bool) -> (u64, u64) {
    debug_assert_eq!(col.len(), LANE);
    let mut leq: u64 = 0;
    let mut lt: u64 = 0;
    for (c, chunk) in col.chunks_exact(CHUNK).enumerate() {
        let mut leq_c: u64 = 0;
        let mut lt_c: u64 = 0;
        for (j, &v) in chunk.iter().enumerate() {
            let (lo, hi) = if reversed { (p, v) } else { (v, p) };
            leq_c |= u64::from(lo <= hi) << j;
            lt_c |= u64::from(lo < hi) << j;
        }
        leq |= leq_c << (c * CHUNK);
        lt |= lt_c << (c * CHUNK);
    }
    (leq, lt)
}

/// Direct, per-word entry points to both comparison kernels, exposed for
/// the `experiments -- wire` microbenchmark. `DSUD_KERNEL` is read once
/// per process, so a single benchmark binary that times *both* kernels
/// must call them explicitly rather than through the switch; production
/// code always goes through [`Batch`], never through this module.
#[doc(hidden)]
pub mod kernel {
    /// Rows per bitset word; benchmark columns must be sliced to this.
    pub const LANE: usize = super::LANE;

    /// The serial 64-lane kernel: `(leq, lt)` bitsets of `col` vs `p`.
    pub fn scalar(col: &[f64], p: f64, reversed: bool) -> (u64, u64) {
        super::cmp_word_scalar(col, p, reversed)
    }

    /// The chunked four-accumulator kernel; bit-identical to [`scalar`].
    pub fn chunked(col: &[f64], p: f64, reversed: bool) -> (u64, u64) {
        super::cmp_word_chunked(col, p, reversed)
    }
}

/// A columnar (structure-of-arrays) batch of uncertain tuples for bulk
/// dominance evaluation.
///
/// Row-major tuple storage makes every dominance test chase one `Vec` per
/// tuple; for the hot window queries — "which stored tuples dominate this
/// point, and what is their survival product ∏ (1 − P(t'))?" — the batch
/// instead keeps one contiguous `Vec<f64>` per dimension plus probability
/// and complement columns. Queries then stream each column once, computing
/// `≤` / `<` masks for 64 rows per bitset word (`LANE` = 64).
///
/// # Determinism contract
///
/// Every query is bit-for-bit identical to the scalar loop over the same
/// tuples in the same order: dominance is a boolean (evaluation order
/// cannot change it), and [`Batch::survival_product`] multiplies
/// complements in ascending row order — exactly the order
/// `tuples.iter().filter(dominates).map(complement).product()` uses. Tests
/// and proptests compare with `==` on the raw `f64`s, not a tolerance.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{Batch, Probability, SubspaceMask, TupleId, UncertainTuple};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let tuples = vec![
///     UncertainTuple::new(TupleId::new(0, 0), vec![1.0, 1.0], Probability::new(0.5)?)?,
///     UncertainTuple::new(TupleId::new(0, 1), vec![9.0, 9.0], Probability::new(0.5)?)?,
/// ];
/// let batch = Batch::from_tuples(2, &tuples);
/// let mask = SubspaceMask::full(2)?;
/// // Only (1,1) dominates the probe, so its complement is the product.
/// assert_eq!(batch.survival_product(&[5.0, 5.0], mask), 0.5);
/// assert!(batch.dominated_by_any(&[5.0, 5.0], mask));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Batch {
    len: usize,
    /// One column per dimension, each of length `len`.
    cols: Vec<Vec<f64>>,
    /// Existential probability `P(t)` per row.
    probs: Vec<f64>,
    /// `1 − P(t)` per row, precomputed for survival products.
    complements: Vec<f64>,
}

impl Batch {
    /// An empty batch over a `dims`-dimensional space.
    pub fn new(dims: usize) -> Self {
        Batch { len: 0, cols: vec![Vec::new(); dims], probs: Vec::new(), complements: Vec::new() }
    }

    /// Builds a batch from tuples, preserving their order (row `i` is the
    /// `i`-th tuple yielded).
    pub fn from_tuples<'a, I>(dims: usize, tuples: I) -> Self
    where
        I: IntoIterator<Item = &'a UncertainTuple>,
    {
        let mut batch = Batch::new(dims);
        for t in tuples {
            batch.push(t);
        }
        batch
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Dimensionality of the columnar layout.
    pub fn dims(&self) -> usize {
        self.cols.len()
    }

    /// Existential probability of row `i`.
    pub fn prob(&self, i: usize) -> f64 {
        self.probs[i]
    }

    /// Appends a tuple as the last row.
    ///
    /// An empty batch adopts the tuple's dimensionality if it differs from
    /// its own (so containers can start from `Batch::default()`).
    pub fn push(&mut self, t: &UncertainTuple) {
        if self.len == 0 && self.cols.len() != t.dims() {
            self.cols = vec![Vec::new(); t.dims()];
        }
        debug_assert_eq!(self.cols.len(), t.dims(), "batch rows share one dimensionality");
        for (col, &v) in self.cols.iter_mut().zip(t.values()) {
            col.push(v);
        }
        self.probs.push(t.prob().get());
        self.complements.push(t.prob().complement());
        self.len += 1;
    }

    /// Removes row `i` by swapping the last row into its place, mirroring
    /// `Vec::swap_remove` so a sibling `Vec<UncertainTuple>` kept in sync
    /// with the same operations stays row-aligned.
    pub fn swap_remove(&mut self, i: usize) {
        for col in &mut self.cols {
            col.swap_remove(i);
        }
        self.probs.swap_remove(i);
        self.complements.swap_remove(i);
        self.len -= 1;
    }

    /// The survival product `∏ (1 − P(t))` over rows that strictly
    /// dominate `point` on the masked dimensions, multiplied in ascending
    /// row order (bit-identical to the scalar filter-map-product).
    pub fn survival_product(&self, point: &[f64], mask: SubspaceMask) -> f64 {
        let mut product = 1.0;
        for w in 0..self.len.div_ceil(LANE) {
            let mut bits = self.dominator_bits(w, point, mask);
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                product *= self.complements[w * LANE + j];
                bits &= bits - 1;
            }
        }
        product
    }

    /// Appends to `out` the indices of rows that strictly dominate `point`
    /// on the masked dimensions, in ascending order.
    pub fn dominators_of(&self, point: &[f64], mask: SubspaceMask, out: &mut Vec<usize>) {
        for w in 0..self.len.div_ceil(LANE) {
            let mut bits = self.dominator_bits(w, point, mask);
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                out.push(w * LANE + j);
                bits &= bits - 1;
            }
        }
    }

    /// Whether any row strictly dominates `point` on the masked dimensions.
    pub fn dominated_by_any(&self, point: &[f64], mask: SubspaceMask) -> bool {
        (0..self.len.div_ceil(LANE)).any(|w| self.dominator_bits(w, point, mask) != 0)
    }

    /// Appends to `out` the indices of rows that `point` strictly
    /// dominates on the masked dimensions (the reverse direction of
    /// [`Batch::dominators_of`]), in ascending order.
    pub fn dominated_by(&self, point: &[f64], mask: SubspaceMask, out: &mut Vec<usize>) {
        for w in 0..self.len.div_ceil(LANE) {
            let mut bits = self.dominated_bits(w, point, mask);
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                out.push(w * LANE + j);
                bits &= bits - 1;
            }
        }
    }

    /// Bitset of rows `r` in word `w` with `row(r) ≺ point`.
    fn dominator_bits(&self, w: usize, point: &[f64], mask: SubspaceMask) -> u64 {
        self.word_bits(w, point, mask, false)
    }

    /// Bitset of rows `r` in word `w` with `point ≺ row(r)`.
    fn dominated_bits(&self, w: usize, point: &[f64], mask: SubspaceMask) -> u64 {
        self.word_bits(w, point, mask, true)
    }

    /// Evaluates strict Pareto dominance for up to `LANE` rows at once:
    /// `leq` accumulates "no worse on every masked dimension", `lt` "
    /// strictly better somewhere". `reversed` swaps the comparison
    /// direction (point vs. row instead of row vs. point).
    fn word_bits(&self, w: usize, point: &[f64], mask: SubspaceMask, reversed: bool) -> u64 {
        let base = w * LANE;
        let n = (self.len - base).min(LANE);
        let mut leq: u64 = if n == LANE { !0 } else { (1u64 << n) - 1 };
        let mut lt: u64 = 0;
        for d in mask.dims() {
            if d >= self.cols.len() || d >= point.len() {
                break;
            }
            let p = point[d];
            let col = &self.cols[d][base..base + n];
            // Full words take the chunked kernel; tail words (and the
            // DSUD_KERNEL=scalar escape hatch) take the serial loop. Both
            // produce identical bitsets, so the split is invisible.
            let (leq_d, lt_d) = if n == LANE && !scalar_kernel_forced() {
                cmp_word_chunked(col, p, reversed)
            } else {
                cmp_word_scalar(col, p, reversed)
            };
            leq &= leq_d;
            lt |= lt_d;
            if leq == 0 {
                return 0;
            }
        }
        leq & lt
    }
}

/// An indexed set of probe points for bulk dominance queries.
///
/// The multi-probe PR-tree traversal (`PrTree::survival_products`) asks
/// only for "probe `k` as a `&[f64]` row", so any row-addressable storage
/// qualifies: a slice of row references (the legacy shape) or a flat
/// row-major buffer gathered straight from a columnar wire frame
/// ([`ProbeRows`]) without per-probe allocation.
pub trait ProbeSet {
    /// Number of probe points.
    fn len(&self) -> usize;

    /// Whether the set holds no probes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probe `k` as a coordinate row.
    fn probe(&self, k: usize) -> &[f64];
}

impl ProbeSet for [&[f64]] {
    fn len(&self) -> usize {
        <[_]>::len(self)
    }

    fn probe(&self, k: usize) -> &[f64] {
        self[k]
    }
}

impl ProbeSet for Vec<&[f64]> {
    fn len(&self) -> usize {
        Vec::len(self)
    }

    fn probe(&self, k: usize) -> &[f64] {
        self[k]
    }
}

/// A reusable flat row-major probe buffer.
///
/// Holds `len × dims` coordinates in one `Vec<f64>` so a columnar wire
/// frame can be transposed into probe rows with zero per-probe allocation:
/// the buffer is cleared (capacity kept) and refilled each batch, and
/// steady-state reuse never grows it once it has seen its largest batch.
#[derive(Debug, Clone, Default)]
pub struct ProbeRows {
    dims: usize,
    rows: Vec<f64>,
}

impl ProbeRows {
    /// Clears the buffer (keeping its allocation) and fixes the row width
    /// for the rows pushed next.
    pub fn reset(&mut self, dims: usize) {
        self.rows.clear();
        self.dims = dims;
    }

    /// Appends one probe row; the closure writes coordinate `d` of the row.
    pub fn push_row_with(&mut self, mut coord: impl FnMut(usize) -> f64) {
        for d in 0..self.dims {
            self.rows.push(coord(d));
        }
    }

    /// Reserved capacity in `f64` elements (steady-state probe for
    /// allocation tests).
    pub fn footprint(&self) -> usize {
        self.rows.capacity()
    }
}

impl ProbeSet for ProbeRows {
    fn len(&self) -> usize {
        if self.dims == 0 {
            0
        } else {
            self.rows.len() / self.dims
        }
    }

    fn probe(&self, k: usize) -> &[f64] {
        &self.rows[k * self.dims..(k + 1) * self.dims]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_dominance_requires_one_strict_dim() {
        assert!(dominates(&[1.0, 1.0], &[1.0, 2.0]));
        assert!(dominates(&[0.5, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
    }

    #[test]
    fn dominance_is_antisymmetric() {
        let a = [1.0, 5.0];
        let b = [2.0, 6.0];
        assert!(dominates(&a, &b));
        assert!(!dominates(&b, &a));
    }

    #[test]
    fn paper_fig1_hotels() {
        // P1(2,8), P2(4,6), P3(4,4): P3 dominates P2? values (4,4) vs (4,6):
        // yes. P1 vs P3 incomparable.
        assert!(dominates(&[4.0, 4.0], &[4.0, 6.0]));
        assert!(!dominates(&[2.0, 8.0], &[4.0, 4.0]));
        assert!(!dominates(&[4.0, 4.0], &[2.0, 8.0]));
    }

    #[test]
    fn subspace_changes_outcome() {
        let full = SubspaceMask::full(2).unwrap();
        let d0 = SubspaceMask::from_dims(&[0]).unwrap();
        let d1 = SubspaceMask::from_dims(&[1]).unwrap();
        let a = [1.0, 9.0];
        let b = [2.0, 3.0];
        assert_eq!(relation(&a, &b, full), DomRelation::Incomparable);
        assert_eq!(relation(&a, &b, d0), DomRelation::Dominates);
        assert_eq!(relation(&a, &b, d1), DomRelation::DominatedBy);
    }

    #[test]
    fn relation_matches_dominates() {
        let full = SubspaceMask::full(3).unwrap();
        let pts =
            [vec![1.0, 2.0, 3.0], vec![1.0, 2.0, 2.0], vec![3.0, 1.0, 1.0], vec![1.0, 2.0, 3.0]];
        for a in &pts {
            for b in &pts {
                let rel = relation(a, b, full);
                assert_eq!(rel == DomRelation::Dominates, dominates(a, b));
                assert_eq!(rel == DomRelation::DominatedBy, dominates(b, a));
            }
        }
    }

    /// Deterministic pseudo-random tuples spanning several bitset words.
    fn lcg_tuples(n: usize, dims: usize, seed: u64) -> Vec<UncertainTuple> {
        use crate::{Probability, TupleId};
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        (0..n)
            .map(|i| {
                // Coarse grid so dominance (and exact ties) actually occur.
                let values = (0..dims).map(|_| (next() * 16.0).floor()).collect();
                let p = Probability::new((next() * 0.99 + 0.005).clamp(0.005, 1.0)).unwrap();
                UncertainTuple::new(TupleId::new(0, i as u64), values, p).unwrap()
            })
            .collect()
    }

    #[test]
    fn batch_matches_scalar_loop_bit_for_bit() {
        for (dims, n) in [(2, 63), (3, 64), (4, 257), (2, 1000)] {
            let tuples = lcg_tuples(n, dims, 7 + n as u64);
            let batch = Batch::from_tuples(dims, &tuples);
            assert_eq!(batch.len(), n);
            for mask in [SubspaceMask::full(dims).unwrap(), SubspaceMask::from_dims(&[0]).unwrap()]
            {
                for probe in lcg_tuples(20, dims, 99) {
                    let p = probe.values();
                    let scalar: f64 = tuples
                        .iter()
                        .filter(|t| dominates_in(t.values(), p, mask))
                        .map(|t| t.prob().complement())
                        .product();
                    assert_eq!(batch.survival_product(p, mask), scalar, "n={n} dims={dims}");

                    let expected_doms: Vec<usize> =
                        (0..n).filter(|&i| dominates_in(tuples[i].values(), p, mask)).collect();
                    let mut got = Vec::new();
                    batch.dominators_of(p, mask, &mut got);
                    assert_eq!(got, expected_doms);
                    assert_eq!(batch.dominated_by_any(p, mask), !expected_doms.is_empty());

                    let expected_dominated: Vec<usize> =
                        (0..n).filter(|&i| dominates_in(p, tuples[i].values(), mask)).collect();
                    let mut got = Vec::new();
                    batch.dominated_by(p, mask, &mut got);
                    assert_eq!(got, expected_dominated);
                }
            }
        }
    }

    #[test]
    fn chunked_word_kernel_matches_serial_kernel() {
        // The chunked kernel only changes evaluation order of independent
        // boolean lanes; every (leq, lt) pair must equal the serial loop's,
        // including exact ties and both comparison directions.
        let mut col = [0.0f64; LANE];
        let mut state = 0x9e3779b97f4a7c15u64;
        for v in &mut col {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *v = ((state >> 11) % 32) as f64;
        }
        for p in [0.0, 7.0, 15.5, 31.0, 100.0] {
            for reversed in [false, true] {
                assert_eq!(
                    cmp_word_chunked(&col, p, reversed),
                    cmp_word_scalar(&col, p, reversed),
                    "p={p} reversed={reversed}"
                );
            }
        }
    }

    #[test]
    fn probe_rows_match_slice_probes() {
        let mut rows = ProbeRows::default();
        rows.reset(3);
        rows.push_row_with(|d| d as f64);
        rows.push_row_with(|d| 10.0 + d as f64);
        assert_eq!(ProbeSet::len(&rows), 2);
        assert_eq!(rows.probe(0), &[0.0, 1.0, 2.0]);
        assert_eq!(rows.probe(1), &[10.0, 11.0, 12.0]);
        let warm = rows.footprint();
        rows.reset(3);
        rows.push_row_with(|d| d as f64);
        assert_eq!(rows.footprint(), warm, "reset must keep the allocation");
        let slices: Vec<&[f64]> = vec![&[1.0, 2.0]];
        assert_eq!(ProbeSet::len(&slices), 1);
        assert_eq!(slices.probe(0), &[1.0, 2.0]);
    }

    #[test]
    fn batch_push_and_swap_remove_mirror_vec_semantics() {
        let tuples = lcg_tuples(130, 3, 3);
        let mut batch = Batch::default();
        let mut shadow: Vec<UncertainTuple> = Vec::new();
        for t in &tuples {
            batch.push(t);
            shadow.push(t.clone());
        }
        let mask = SubspaceMask::full(3).unwrap();
        for i in [0usize, 64, 17, 100, 0, 5] {
            batch.swap_remove(i);
            shadow.swap_remove(i);
            assert_eq!(batch.len(), shadow.len());
            let probe = [8.0, 8.0, 8.0];
            let scalar: f64 = shadow
                .iter()
                .filter(|t| dominates_in(t.values(), &probe, mask))
                .map(|t| t.prob().complement())
                .product();
            assert_eq!(batch.survival_product(&probe, mask), scalar);
        }
        for (i, t) in shadow.iter().enumerate() {
            assert_eq!(batch.prob(i), t.prob().get());
        }
    }

    #[test]
    fn empty_batch_answers_identity() {
        let batch = Batch::new(2);
        let mask = SubspaceMask::full(2).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.dims(), 2);
        assert_eq!(batch.survival_product(&[1.0, 1.0], mask), 1.0);
        assert!(!batch.dominated_by_any(&[1.0, 1.0], mask));
        let mut out = Vec::new();
        batch.dominators_of(&[1.0, 1.0], mask, &mut out);
        assert!(out.is_empty());
    }
}
