use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Error;

/// A subset of the attribute dimensions, used for subspace skyline queries.
///
/// Section 4 of the paper notes that the DSUD framework extends to any
/// pre-specified subset of `k <= d` attributes simply by checking dominance
/// only on those dimensions. `SubspaceMask` is that subset, represented as a
/// bitmask over dimension indices.
///
/// # Example
///
/// ```
/// use dsud_uncertain::SubspaceMask;
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let full = SubspaceMask::full(4)?;
/// assert_eq!(full.len(), 4);
///
/// let price_only = SubspaceMask::from_dims(&[0])?;
/// assert!(price_only.contains(0));
/// assert!(!price_only.contains(1));
/// assert_eq!(price_only.dims().collect::<Vec<_>>(), vec![0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SubspaceMask(u64);

impl SubspaceMask {
    /// Maximum number of dimensions a mask can address.
    pub const MAX_DIMS: usize = 64;

    /// The full space of a `d`-dimensional database.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensionality`] if `d` is zero or exceeds
    /// [`SubspaceMask::MAX_DIMS`].
    pub fn full(d: usize) -> Result<Self, Error> {
        if d == 0 || d > Self::MAX_DIMS {
            return Err(Error::InvalidDimensionality(d));
        }
        if d == Self::MAX_DIMS {
            Ok(SubspaceMask(u64::MAX))
        } else {
            Ok(SubspaceMask((1u64 << d) - 1))
        }
    }

    /// A subspace selecting exactly the given dimension indices.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensionality`] if `dims` is empty or any
    /// index is at least [`SubspaceMask::MAX_DIMS`].
    pub fn from_dims(dims: &[usize]) -> Result<Self, Error> {
        if dims.is_empty() {
            return Err(Error::InvalidDimensionality(0));
        }
        let mut bits = 0u64;
        for &d in dims {
            if d >= Self::MAX_DIMS {
                return Err(Error::InvalidDimensionality(d));
            }
            bits |= 1u64 << d;
        }
        Ok(SubspaceMask(bits))
    }

    /// Whether dimension `dim` belongs to the subspace.
    pub fn contains(self, dim: usize) -> bool {
        dim < Self::MAX_DIMS && self.0 & (1u64 << dim) != 0
    }

    /// Number of selected dimensions.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the mask selects no dimension. Masks constructed through the
    /// public API are never empty; this exists for defensive checks.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates over the selected dimension indices in ascending order.
    pub fn dims(self) -> impl Iterator<Item = usize> {
        (0..Self::MAX_DIMS).filter(move |&d| self.contains(d))
    }

    /// Highest selected dimension index, if any.
    pub fn max_dim(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(Self::MAX_DIMS - 1 - self.0.leading_zeros() as usize)
        }
    }

    /// Raw bit representation (bit `i` set ⇔ dimension `i` selected), for
    /// wire encodings.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Reconstructs a mask from its [`SubspaceMask::bits`] representation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensionality`] if `bits` is zero (an empty
    /// subspace is never valid).
    pub fn try_from_bits(bits: u64) -> Result<Self, Error> {
        if bits == 0 {
            return Err(Error::InvalidDimensionality(0));
        }
        Ok(SubspaceMask(bits))
    }

    /// Validates that the mask fits a `dims`-dimensional space.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSubspace`] if a selected dimension index is
    /// `>= dims`.
    pub fn validate_for(self, dims: usize) -> Result<(), Error> {
        match self.max_dim() {
            Some(max) if max >= dims => Err(Error::InvalidSubspace { dims, selected: max }),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for SubspaceMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.dims().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_selects_all_dims() {
        let m = SubspaceMask::full(3).unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.dims().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(m.max_dim(), Some(2));
    }

    #[test]
    fn full_supports_max_dims() {
        let m = SubspaceMask::full(SubspaceMask::MAX_DIMS).unwrap();
        assert_eq!(m.len(), 64);
        assert_eq!(m.max_dim(), Some(63));
    }

    #[test]
    fn rejects_zero_and_oversized() {
        assert!(SubspaceMask::full(0).is_err());
        assert!(SubspaceMask::full(65).is_err());
        assert!(SubspaceMask::from_dims(&[]).is_err());
        assert!(SubspaceMask::from_dims(&[64]).is_err());
    }

    #[test]
    fn from_dims_deduplicates() {
        let m = SubspaceMask::from_dims(&[1, 1, 3]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.dims().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn validate_for_rejects_out_of_space() {
        let m = SubspaceMask::from_dims(&[0, 4]).unwrap();
        assert!(m.validate_for(5).is_ok());
        assert_eq!(m.validate_for(3), Err(Error::InvalidSubspace { dims: 3, selected: 4 }));
    }

    #[test]
    fn display_lists_dims() {
        let m = SubspaceMask::from_dims(&[0, 2]).unwrap();
        assert_eq!(m.to_string(), "{0,2}");
    }
}
