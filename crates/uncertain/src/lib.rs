//! Uncertainty data model and centralized probabilistic skylines.
//!
//! This crate implements the substrate layer of the DSUD system (Ding & Jin,
//! ICDCS 2010 / TKDE 2011): the tuple-level uncertainty data model of the
//! paper's Section 3, possible-world semantics (Fig. 3), dominance over full
//! and sub-spaces, and the centralized probabilistic skyline definitions
//! (Eqs. 1–5) together with straightforward reference algorithms used as
//! ground truth by every other crate.
//!
//! # Model
//!
//! An uncertain database is a set of tuples `t`, each with a vector of
//! `d` numeric attribute values and an existential probability
//! `0 < P(t) <= 1`. A *possible world* `W` materializes each tuple
//! independently. The *skyline probability* of `t` is the total probability
//! of the worlds in which `t` appears and is not dominated:
//!
//! ```text
//! P_sky(t, D) = P(t) × ∏_{t' ∈ D, t' ≺ t} (1 − P(t'))
//! ```
//!
//! where `≺` is Pareto dominance with "smaller is better" on every
//! dimension.
//!
//! # Example
//!
//! ```
//! use dsud_uncertain::{Probability, UncertainDb, UncertainTuple, TupleId};
//!
//! # fn main() -> Result<(), dsud_uncertain::Error> {
//! let mut db = UncertainDb::new(2)?;
//! db.insert(UncertainTuple::new(TupleId::new(0, 0), vec![80.0, 96.0], Probability::new(0.8)?)?)?;
//! db.insert(UncertainTuple::new(TupleId::new(0, 1), vec![85.0, 90.0], Probability::new(0.6)?)?)?;
//! db.insert(UncertainTuple::new(TupleId::new(0, 2), vec![75.0, 95.0], Probability::new(0.8)?)?)?;
//!
//! // Matches the worked example of the paper's Fig. 3.
//! let p = db.skyline_probability(&db.tuples()[0]);
//! assert!((p - 0.16).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod dominance;
mod error;
mod probability;
mod skyline;
mod subspace;
mod tuple;
pub mod worlds;

pub use db::UncertainDb;
#[doc(hidden)]
pub use dominance::kernel;
pub use dominance::{dominates, dominates_in, relation, Batch, DomRelation, ProbeRows, ProbeSet};
pub use error::Error;
pub use probability::Probability;
pub use skyline::{
    certain_skyline, probabilistic_skyline, skyline_probabilities, skyline_probabilities_seq,
    tuple_skyline_probability, SkylineEntry,
};
pub use subspace::SubspaceMask;
pub use tuple::{SiteId, TupleId, UncertainTuple};
