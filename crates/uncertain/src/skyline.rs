//! Centralized probabilistic skyline reference algorithms.
//!
//! These are the `O(N²)` "baseline approach" computations of the paper's
//! Section 3.2: compute every tuple's skyline probability by Eq. (3) and
//! keep those at or above the threshold `q`. They are deliberately simple —
//! every optimized component in the workspace is tested against them.

use serde::{Deserialize, Serialize};

use crate::{dominance, Batch, Error, SubspaceMask, UncertainDb, UncertainTuple};

/// A qualified skyline tuple together with its skyline probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkylineEntry {
    /// The qualifying tuple.
    pub tuple: UncertainTuple,
    /// Its (global or local) skyline probability.
    pub probability: f64,
}

/// Computes the skyline probability of every tuple (aligned with
/// `db.tuples()`) on the given subspace, by direct application of Eq. (3).
///
/// The `O(N²)` dominance work runs on the columnar [`Batch`] kernel with
/// candidates partitioned across the [`threadpool`] (sized by
/// `DSUD_THREADS`). The result is bit-for-bit identical to
/// [`skyline_probabilities_seq`] for every pool size — each tuple's
/// survival product multiplies the same complements in the same order —
/// which the crate's proptests assert with `==`.
///
/// # Errors
///
/// Returns [`Error::InvalidSubspace`] if `mask` selects a dimension outside
/// the database space.
pub fn skyline_probabilities(db: &UncertainDb, mask: SubspaceMask) -> Result<Vec<f64>, Error> {
    mask.validate_for(db.dims())?;
    let batch = Batch::from_tuples(db.dims(), db.iter());
    Ok(threadpool::parallel_map(db.tuples(), |_, t| {
        t.prob().get() * batch.survival_product(t.values(), mask)
    }))
}

/// Sequential scalar reference for [`skyline_probabilities`]: one
/// tuple-at-a-time dominance scan per candidate, no batch kernel, no
/// threads. Kept as the ground truth the optimized path is tested against.
///
/// # Errors
///
/// Same as [`skyline_probabilities`].
pub fn skyline_probabilities_seq(db: &UncertainDb, mask: SubspaceMask) -> Result<Vec<f64>, Error> {
    mask.validate_for(db.dims())?;
    Ok(db.iter().map(|t| db.skyline_probability_in(t, mask)).collect())
}

/// The centralized probabilistic skyline: all tuples whose skyline
/// probability is at least `q`, sorted in descending probability order
/// (ties broken by tuple id for determinism).
///
/// This is the answer set the distributed algorithms must reproduce at the
/// coordinator, per Definition 1 of the paper.
///
/// # Errors
///
/// Returns [`Error::InvalidProbability`] if `q` is outside `(0, 1]`, or
/// [`Error::InvalidSubspace`] for a bad mask.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{
///     probabilistic_skyline, Probability, SubspaceMask, TupleId, UncertainDb, UncertainTuple,
/// };
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let db = UncertainDb::from_tuples(2, [
///     UncertainTuple::new(TupleId::new(0, 0), vec![80.0, 96.0], Probability::new(0.8)?)?,
///     UncertainTuple::new(TupleId::new(0, 1), vec![85.0, 90.0], Probability::new(0.6)?)?,
///     UncertainTuple::new(TupleId::new(0, 2), vec![75.0, 95.0], Probability::new(0.8)?)?,
/// ])?;
/// let sky = probabilistic_skyline(&db, 0.3, SubspaceMask::full(2)?)?;
/// // P_sky = 0.16, 0.6, 0.8 → two qualify at q = 0.3.
/// assert_eq!(sky.len(), 2);
/// assert_eq!(sky[0].tuple.id(), TupleId::new(0, 2));
/// # Ok(())
/// # }
/// ```
pub fn probabilistic_skyline(
    db: &UncertainDb,
    q: f64,
    mask: SubspaceMask,
) -> Result<Vec<SkylineEntry>, Error> {
    if !(q > 0.0 && q <= 1.0) {
        return Err(Error::InvalidProbability(q));
    }
    let probs = skyline_probabilities(db, mask)?;
    let mut out: Vec<SkylineEntry> = db
        .iter()
        .zip(probs)
        .filter(|(_, p)| *p >= q)
        .map(|(t, p)| SkylineEntry { tuple: t.clone(), probability: p })
        .collect();
    out.sort_by(|a, b| {
        b.probability
            .partial_cmp(&a.probability)
            .expect("probabilities are finite")
            .then_with(|| a.tuple.id().cmp(&b.tuple.id()))
    });
    Ok(out)
}

/// The conventional (certain-data) skyline of a point set: indices of points
/// not dominated by any other point on the selected subspace.
///
/// Used by the skyline-cardinality estimator validation and wherever the
/// paper reasons about precise data (e.g. its Fig. 1 hotel example).
pub fn certain_skyline(points: &[Vec<f64>], mask: SubspaceMask) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            points
                .iter()
                .enumerate()
                .all(|(j, other)| j == i || !dominance::dominates_in(other, &points[i], mask))
        })
        .collect()
}

/// Convenience wrapper returning the skyline entries of a single tuple's
/// probability, mostly useful in examples.
///
/// # Errors
///
/// Same as [`skyline_probabilities`].
pub fn tuple_skyline_probability(
    db: &UncertainDb,
    tuple: &UncertainTuple,
    mask: SubspaceMask,
) -> Result<f64, Error> {
    mask.validate_for(db.dims())?;
    Ok(db.skyline_probability_in(tuple, mask))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Probability, TupleId};

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn full(d: usize) -> SubspaceMask {
        SubspaceMask::full(d).unwrap()
    }

    #[test]
    fn threshold_filters_and_sorts() {
        let db = UncertainDb::from_tuples(
            2,
            [
                tuple(1, vec![80.0, 96.0], 0.8),
                tuple(2, vec![85.0, 90.0], 0.6),
                tuple(3, vec![75.0, 95.0], 0.8),
            ],
        )
        .unwrap();
        let sky = probabilistic_skyline(&db, 0.3, full(2)).unwrap();
        assert_eq!(sky.len(), 2);
        assert!(sky[0].probability >= sky[1].probability);
        assert!((sky[0].probability - 0.8).abs() < 1e-12);

        let sky_all = probabilistic_skyline(&db, 0.1, full(2)).unwrap();
        assert_eq!(sky_all.len(), 3);

        let sky_none = probabilistic_skyline(&db, 0.95, full(2)).unwrap();
        assert!(sky_none.is_empty());
    }

    #[test]
    fn rejects_bad_threshold() {
        let db = UncertainDb::new(2).unwrap();
        assert!(probabilistic_skyline(&db, 0.0, full(2)).is_err());
        assert!(probabilistic_skyline(&db, 1.5, full(2)).is_err());
        assert!(probabilistic_skyline(&db, f64::NAN, full(2)).is_err());
    }

    #[test]
    fn certain_skyline_matches_paper_fig1() {
        // Fig. 1: hotels P1..P5; skyline = {P1, P3, P5}.
        let pts = vec![
            vec![2.0, 6.0], // P1
            vec![4.0, 7.0], // P2 (dominated by P1)
            vec![4.0, 4.0], // P3
            vec![7.0, 5.0], // P4 (dominated by P3)
            vec![8.0, 2.0], // P5
        ];
        assert_eq!(certain_skyline(&pts, full(2)), vec![0, 2, 4]);
    }

    #[test]
    fn certain_skyline_with_duplicates_keeps_both() {
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(certain_skyline(&pts, full(2)), vec![0, 1]);
    }

    #[test]
    fn probability_one_dominator_zeroes_out() {
        let db = UncertainDb::from_tuples(
            2,
            [tuple(1, vec![1.0, 1.0], 1.0), tuple(2, vec![2.0, 2.0], 0.9)],
        )
        .unwrap();
        let probs = skyline_probabilities(&db, full(2)).unwrap();
        assert_eq!(probs[0], 1.0);
        assert_eq!(probs[1], 0.0);
        let sky = probabilistic_skyline(&db, 0.3, full(2)).unwrap();
        assert_eq!(sky.len(), 1);
    }
}
