use std::fmt;

/// Errors produced by the uncertainty data model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A probability value was outside the half-open interval `(0, 1]`.
    InvalidProbability(f64),
    /// A database was created with zero dimensions or more than
    /// [`SubspaceMask::MAX_DIMS`](crate::SubspaceMask::MAX_DIMS).
    InvalidDimensionality(usize),
    /// A tuple's value vector length did not match the expected
    /// dimensionality.
    DimensionMismatch {
        /// Dimensionality the container expects.
        expected: usize,
        /// Dimensionality of the offending tuple.
        actual: usize,
    },
    /// An attribute value was NaN or infinite.
    NonFiniteValue(f64),
    /// A tuple with the same [`TupleId`](crate::TupleId) already exists.
    DuplicateId,
    /// Possible-world enumeration was requested for a database too large to
    /// enumerate (more than [`worlds::MAX_ENUMERABLE`](crate::worlds::MAX_ENUMERABLE) tuples).
    TooManyWorlds(usize),
    /// A subspace mask selected a dimension outside the database space.
    InvalidSubspace {
        /// Dimensionality of the database.
        dims: usize,
        /// Highest dimension index selected by the mask.
        selected: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidProbability(p) => {
                write!(f, "probability {p} is outside the interval (0, 1]")
            }
            Error::InvalidDimensionality(d) => {
                write!(f, "dimensionality {d} is not supported")
            }
            Error::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} dimensions, tuple has {actual}")
            }
            Error::NonFiniteValue(v) => write!(f, "attribute value {v} is not finite"),
            Error::DuplicateId => write!(f, "a tuple with this id already exists"),
            Error::TooManyWorlds(n) => {
                write!(f, "cannot enumerate 2^{n} possible worlds")
            }
            Error::InvalidSubspace { dims, selected } => {
                write!(f, "subspace selects dimension {selected} of a {dims}-dimensional space")
            }
        }
    }
}

impl std::error::Error for Error {}
