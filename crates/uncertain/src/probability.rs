use std::fmt;

use serde::{Deserialize, Serialize};

use crate::Error;

/// An existential probability in the half-open interval `(0, 1]`.
///
/// The paper's uncertainty model (Section 3) assigns each tuple a
/// probability `0 < P(t) <= 1` of actually occurring. The newtype makes it
/// impossible to construct an out-of-range or non-finite value through the
/// public API.
///
/// # Example
///
/// ```
/// use dsud_uncertain::Probability;
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let p = Probability::new(0.8)?;
/// assert_eq!(p.get(), 0.8);
/// assert!((p.complement() - 0.2).abs() < 1e-15);
/// assert!(Probability::new(0.0).is_err());
/// assert!(Probability::new(1.5).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Probability(f64);

impl Probability {
    /// The certain probability, `P = 1`.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability, validating that `p` lies in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidProbability`] if `p` is NaN, infinite, not
    /// positive, or greater than one.
    pub fn new(p: f64) -> Result<Self, Error> {
        if p.is_finite() && p > 0.0 && p <= 1.0 {
            Ok(Probability(p))
        } else {
            Err(Error::InvalidProbability(p))
        }
    }

    /// Creates a probability by clamping `p` into `(0, 1]`.
    ///
    /// Values at or below zero, and NaN, are clamped to
    /// [`Probability::MIN_POSITIVE`]; values above one are clamped to one.
    /// Useful for samplers
    /// (e.g. Gaussian probability assignment in the paper's Section 7.4)
    /// whose raw draws can stray outside the valid range.
    pub fn clamped(p: f64) -> Self {
        if p.is_nan() || p <= 0.0 {
            Probability(Self::MIN_POSITIVE)
        } else if p >= 1.0 {
            Probability(1.0)
        } else {
            Probability(p)
        }
    }

    /// Smallest probability producible by [`Probability::clamped`].
    pub const MIN_POSITIVE: f64 = 1e-9;

    /// Returns the raw probability value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Returns the non-occurrence probability `1 − P`.
    pub fn complement(self) -> f64 {
        1.0 - self.0
    }
}

impl Eq for Probability {}

// `Probability` is always a finite, non-NaN float, so total order is sound.
impl Ord for Probability {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("probabilities are finite")
    }
}

impl PartialOrd for Probability {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = Error;

    fn try_from(p: f64) -> Result<Self, Error> {
        Probability::new(p)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_valid_range() {
        assert!(Probability::new(1e-9).is_ok());
        assert!(Probability::new(0.5).is_ok());
        assert!(Probability::new(1.0).is_ok());
    }

    #[test]
    fn rejects_invalid_values() {
        for bad in [0.0, -0.1, 1.0001, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(Probability::new(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn complement_is_one_minus_p() {
        let p = Probability::new(0.3).unwrap();
        assert!((p.complement() - 0.7).abs() < 1e-15);
        assert_eq!(Probability::ONE.complement(), 0.0);
    }

    #[test]
    fn clamped_never_panics() {
        assert_eq!(Probability::clamped(-3.0).get(), Probability::MIN_POSITIVE);
        assert_eq!(Probability::clamped(f64::NAN).get(), Probability::MIN_POSITIVE);
        assert_eq!(Probability::clamped(2.0).get(), 1.0);
        assert_eq!(Probability::clamped(0.4).get(), 0.4);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            Probability::new(0.9).unwrap(),
            Probability::new(0.1).unwrap(),
            Probability::new(0.5).unwrap(),
        ];
        v.sort();
        assert_eq!(v[0].get(), 0.1);
        assert_eq!(v[2].get(), 0.9);
    }

    #[test]
    fn roundtrips_through_f64() {
        let p = Probability::try_from(0.25).unwrap();
        assert_eq!(f64::from(p), 0.25);
    }
}
