use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::{dominance, Error, SubspaceMask, TupleId, UncertainTuple};

/// An in-memory uncertain database: a collection of [`UncertainTuple`]s of a
/// fixed dimensionality with unique ids (the paper's `D` or `D_i`).
///
/// The database offers the *definitional* probability computations of
/// Section 3 (Eqs. 3, 5, 9). These are linear scans and serve as ground
/// truth; the `dsud-prtree` crate provides the indexed equivalents used by
/// the actual query procedures.
///
/// # Example
///
/// ```
/// use dsud_uncertain::{Probability, TupleId, UncertainDb, UncertainTuple};
///
/// # fn main() -> Result<(), dsud_uncertain::Error> {
/// let mut db = UncertainDb::new(2)?;
/// for (seq, (vals, p)) in [
///     (vec![80.0, 96.0], 0.8),
///     (vec![85.0, 90.0], 0.6),
///     (vec![75.0, 95.0], 0.8),
/// ]
/// .into_iter()
/// .enumerate()
/// {
///     db.insert(UncertainTuple::new(
///         TupleId::new(0, seq as u64),
///         vals,
///         Probability::new(p)?,
///     )?)?;
/// }
/// assert_eq!(db.len(), 3);
/// // t3 = (75, 95) is dominated by nobody: P_sky = P(t3) = 0.8.
/// let t3 = db.get(TupleId::new(0, 2)).unwrap().clone();
/// assert!((db.skyline_probability(&t3) - 0.8).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UncertainDb {
    dims: usize,
    tuples: Vec<UncertainTuple>,
    #[serde(skip)]
    index: HashMap<TupleId, usize>,
}

impl UncertainDb {
    /// Creates an empty database of the given dimensionality.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDimensionality`] if `dims` is zero or greater
    /// than [`SubspaceMask::MAX_DIMS`].
    pub fn new(dims: usize) -> Result<Self, Error> {
        if dims == 0 || dims > SubspaceMask::MAX_DIMS {
            return Err(Error::InvalidDimensionality(dims));
        }
        Ok(UncertainDb { dims, tuples: Vec::new(), index: HashMap::new() })
    }

    /// Builds a database from an iterator of tuples.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Error::DimensionMismatch`] or
    /// [`Error::DuplicateId`] encountered.
    pub fn from_tuples<I>(dims: usize, tuples: I) -> Result<Self, Error>
    where
        I: IntoIterator<Item = UncertainTuple>,
    {
        let mut db = UncertainDb::new(dims)?;
        for t in tuples {
            db.insert(t)?;
        }
        Ok(db)
    }

    /// Dimensionality of the space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of tuples stored.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the database holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All tuples, in insertion order.
    pub fn tuples(&self) -> &[UncertainTuple] {
        &self.tuples
    }

    /// Looks up a tuple by id.
    pub fn get(&self, id: TupleId) -> Option<&UncertainTuple> {
        self.index.get(&id).map(|&i| &self.tuples[i])
    }

    /// Whether a tuple with the given id is stored.
    pub fn contains(&self, id: TupleId) -> bool {
        self.index.contains_key(&id)
    }

    /// Inserts a tuple.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if the tuple's dimensionality
    /// differs from the database's, or [`Error::DuplicateId`] if a tuple
    /// with the same id exists.
    pub fn insert(&mut self, tuple: UncertainTuple) -> Result<(), Error> {
        if tuple.dims() != self.dims {
            return Err(Error::DimensionMismatch { expected: self.dims, actual: tuple.dims() });
        }
        if self.index.contains_key(&tuple.id()) {
            return Err(Error::DuplicateId);
        }
        self.index.insert(tuple.id(), self.tuples.len());
        self.tuples.push(tuple);
        Ok(())
    }

    /// Removes and returns the tuple with the given id, if present.
    ///
    /// Removal is `O(1)` via swap-remove; tuple order is not preserved.
    pub fn remove(&mut self, id: TupleId) -> Option<UncertainTuple> {
        let pos = self.index.remove(&id)?;
        let tuple = self.tuples.swap_remove(pos);
        if pos < self.tuples.len() {
            let moved = self.tuples[pos].id();
            self.index.insert(moved, pos);
        }
        Some(tuple)
    }

    /// The skyline probability `P_sky(t, D)` of Eq. (3):
    /// `P(t) × ∏_{t' ∈ D, t' ≺ t} (1 − P(t'))`.
    ///
    /// `t` need not be a member of the database; if it is, it never
    /// dominates itself, so no special handling is required.
    pub fn skyline_probability(&self, t: &UncertainTuple) -> f64 {
        t.prob().get() * self.survival_product(t.values())
    }

    /// Subspace variant of [`UncertainDb::skyline_probability`], restricting
    /// dominance to the dimensions in `mask`.
    ///
    /// When `t` belongs to the database, duplicates of `t`'s projected
    /// values do not count as dominators (dominance stays strict).
    pub fn skyline_probability_in(&self, t: &UncertainTuple, mask: SubspaceMask) -> f64 {
        t.prob().get() * self.survival_product_in(t.values(), mask)
    }

    /// The survival product `∏_{t' ∈ D, t' ≺ p} (1 − P(t'))` — the paper's
    /// Observation 1: the "local skyline probability" of a *foreign* point
    /// `p` against this database (no `P(p)` factor).
    pub fn survival_product(&self, point: &[f64]) -> f64 {
        self.tuples
            .iter()
            .filter(|t| dominance::dominates(t.values(), point))
            .map(|t| t.prob().complement())
            .product()
    }

    /// Subspace variant of [`UncertainDb::survival_product`].
    pub fn survival_product_in(&self, point: &[f64], mask: SubspaceMask) -> f64 {
        self.tuples
            .iter()
            .filter(|t| dominance::dominates_in(t.values(), point, mask))
            .map(|t| t.prob().complement())
            .product()
    }

    /// Iterates over the stored tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, UncertainTuple> {
        self.tuples.iter()
    }
}

impl<'a> IntoIterator for &'a UncertainDb {
    type Item = &'a UncertainTuple;
    type IntoIter = std::slice::Iter<'a, UncertainTuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Probability;

    fn tuple(seq: u64, values: Vec<f64>, p: f64) -> UncertainTuple {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    }

    fn fig3_db() -> UncertainDb {
        UncertainDb::from_tuples(
            2,
            [
                tuple(1, vec![80.0, 96.0], 0.8),
                tuple(2, vec![85.0, 90.0], 0.6),
                tuple(3, vec![75.0, 95.0], 0.8),
            ],
        )
        .unwrap()
    }

    #[test]
    fn paper_fig3_skyline_probabilities() {
        let db = fig3_db();
        let t = |seq| db.get(TupleId::new(0, seq)).unwrap().clone();
        // From the worked possible-world example in the paper's Fig. 3.
        // Note: the paper's P_sky(t1)=0.16 treats t3=(75,95) as dominating
        // t1=(80,96), and t1/t2, t2/t3 as incomparable.
        assert!((db.skyline_probability(&t(1)) - 0.16).abs() < 1e-12);
        assert!((db.skyline_probability(&t(2)) - 0.6).abs() < 1e-12);
        assert!((db.skyline_probability(&t(3)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_mismatched_dimensions() {
        let mut db = UncertainDb::new(3).unwrap();
        let err = db.insert(tuple(0, vec![1.0, 2.0], 0.5));
        assert_eq!(err, Err(Error::DimensionMismatch { expected: 3, actual: 2 }));
    }

    #[test]
    fn rejects_duplicate_ids() {
        let mut db = UncertainDb::new(2).unwrap();
        db.insert(tuple(7, vec![1.0, 2.0], 0.5)).unwrap();
        assert_eq!(db.insert(tuple(7, vec![3.0, 4.0], 0.5)), Err(Error::DuplicateId));
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut db = fig3_db();
        let removed = db.remove(TupleId::new(0, 1)).unwrap();
        assert_eq!(removed.values(), &[80.0, 96.0]);
        assert_eq!(db.len(), 2);
        assert!(db.get(TupleId::new(0, 1)).is_none());
        // Swap-removed tail tuple must still be findable.
        assert!(db.get(TupleId::new(0, 3)).is_some());
        assert!(db.get(TupleId::new(0, 2)).is_some());
        assert!(db.remove(TupleId::new(0, 1)).is_none());
    }

    #[test]
    fn survival_product_excludes_non_dominators() {
        let db = fig3_db();
        // Point (100, 100) is dominated by all three tuples.
        let expected = 0.2 * 0.4 * 0.2;
        assert!((db.survival_product(&[100.0, 100.0]) - expected).abs() < 1e-12);
        // Origin is dominated by nobody.
        assert_eq!(db.survival_product(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn subspace_probability_differs_from_full() {
        let db = fig3_db();
        let t2 = db.get(TupleId::new(0, 2)).unwrap().clone();
        // In full space t2=(85,90) is undominated: P_sky = 0.6.
        assert!((db.skyline_probability(&t2) - 0.6).abs() < 1e-12);
        // On dimension 0 alone, t2 is dominated by both t1 (80) and t3 (75).
        let d0 = SubspaceMask::from_dims(&[0]).unwrap();
        assert!((db.skyline_probability_in(&t2, d0) - 0.6 * 0.2 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn iteration_yields_all_tuples() {
        let db = fig3_db();
        assert_eq!(db.iter().count(), 3);
        assert_eq!((&db).into_iter().count(), 3);
    }
}
