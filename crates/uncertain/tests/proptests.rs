//! Property-based validation of the uncertainty data model: the closed-form
//! Eq. (3) computation must agree with exhaustive possible-world
//! enumeration on arbitrary small databases, and dominance must behave like
//! a strict partial order.

use proptest::prelude::*;

use dsud_uncertain::{
    dominates, dominates_in, relation, skyline_probabilities, skyline_probabilities_seq, worlds,
    Batch, DomRelation, Probability, SubspaceMask, TupleId, UncertainDb, UncertainTuple,
};

fn arb_tuple(dims: usize, seq: u64) -> impl Strategy<Value = UncertainTuple> {
    (prop::collection::vec(0.0f64..100.0, dims), 0.01f64..=1.0).prop_map(move |(values, p)| {
        UncertainTuple::new(TupleId::new(0, seq), values, Probability::new(p).unwrap()).unwrap()
    })
}

fn arb_db(dims: usize, max_n: usize) -> impl Strategy<Value = UncertainDb> {
    prop::collection::vec(prop::collection::vec(0.0f64..100.0, dims), 1..=max_n)
        .prop_flat_map(move |points| {
            let n = points.len();
            (Just(points), prop::collection::vec(0.01f64..=1.0, n))
        })
        .prop_map(move |(points, probs)| {
            let tuples = points.into_iter().zip(probs).enumerate().map(|(i, (values, p))| {
                UncertainTuple::new(TupleId::new(0, i as u64), values, Probability::new(p).unwrap())
                    .unwrap()
            });
            UncertainDb::from_tuples(dims, tuples.collect::<Vec<_>>()).unwrap()
        })
}

/// Anticorrelated workload (the paper's hardest distribution): points lie
/// near the hyperplane `Σ values = const`, so almost everything is
/// skyline and dominance tests rarely short-circuit.
fn arb_anticorrelated_db(dims: usize, max_n: usize) -> impl Strategy<Value = UncertainDb> {
    prop::collection::vec(
        (0.0f64..100.0, prop::collection::vec(-5.0f64..5.0, dims), 0.01f64..=1.0),
        1..=max_n,
    )
    .prop_map(move |rows| {
        let tuples = rows.into_iter().enumerate().map(|(i, (base, jitter, p))| {
            let values = (0..dims)
                .map(|d| {
                    let v = if d == 0 { base } else { 100.0 - base };
                    (v + jitter[d]).clamp(0.0, 110.0)
                })
                .collect();
            UncertainTuple::new(TupleId::new(0, i as u64), values, Probability::new(p).unwrap())
                .unwrap()
        });
        UncertainDb::from_tuples(dims, tuples.collect::<Vec<_>>()).unwrap()
    })
}

/// Asserts the kernel-backed parallel path equals the scalar sequential
/// path with `==` on the raw bits, at pool sizes 1, 2, and 8.
fn assert_parallel_matches_seq(db: &UncertainDb, mask: SubspaceMask) {
    let seq = skyline_probabilities_seq(db, mask).unwrap();
    for pool in [1usize, 2, 8] {
        threadpool::set_pool_size(pool);
        let par = skyline_probabilities(db, mask);
        threadpool::set_pool_size(0);
        let par = par.unwrap();
        assert_eq!(seq.len(), par.len());
        for (i, (s, p)) in seq.iter().zip(&par).enumerate() {
            assert!(s.to_bits() == p.to_bits(), "pool {pool}: tuple {i} diverges: {s} vs {p}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel kernel-backed `skyline_probabilities` is bit-identical to
    /// the sequential scalar path on independent workloads, for pool
    /// sizes 1 / 2 / 8.
    #[test]
    fn parallel_skyline_matches_seq_independent(db in arb_db(4, 100)) {
        assert_parallel_matches_seq(&db, SubspaceMask::full(4).unwrap());
        assert_parallel_matches_seq(&db, SubspaceMask::from_dims(&[0, 2]).unwrap());
    }

    /// Same bit-for-bit property on anticorrelated workloads, where
    /// dominance windows are smallest and survival products the longest.
    #[test]
    fn parallel_skyline_matches_seq_anticorrelated(db in arb_anticorrelated_db(3, 100)) {
        assert_parallel_matches_seq(&db, SubspaceMask::full(3).unwrap());
    }

    /// The batch kernel's window products equal the scalar
    /// filter-map-product loop with `==`, on any probe point.
    #[test]
    fn kernel_window_products_match_scalar(
        db in arb_anticorrelated_db(3, 120),
        probe in arb_tuple(3, 9999),
    ) {
        let mask = SubspaceMask::full(3).unwrap();
        let batch = Batch::from_tuples(3, db.iter());
        let scalar: f64 = db
            .iter()
            .filter(|t| dominates_in(t.values(), probe.values(), mask))
            .map(|t| t.prob().complement())
            .product();
        let kernel = batch.survival_product(probe.values(), mask);
        prop_assert!(kernel.to_bits() == scalar.to_bits(), "{} vs {}", kernel, scalar);
    }

    /// Eq. (3) equals the possible-world summation (Eq. 2) exactly.
    #[test]
    fn closed_form_matches_possible_worlds(db in arb_db(2, 10)) {
        let mask = SubspaceMask::full(2).unwrap();
        let exhaustive = worlds::exhaustive_skyline_probabilities(&db, mask).unwrap();
        for (i, t) in db.iter().enumerate() {
            let closed = db.skyline_probability(t);
            prop_assert!((closed - exhaustive[i]).abs() < 1e-9,
                "tuple {i}: closed {closed} vs exhaustive {}", exhaustive[i]);
        }
    }

    /// Same property on a subspace.
    #[test]
    fn closed_form_matches_possible_worlds_on_subspace(db in arb_db(3, 8)) {
        let mask = SubspaceMask::from_dims(&[0, 2]).unwrap();
        let exhaustive = worlds::exhaustive_skyline_probabilities(&db, mask).unwrap();
        for (i, t) in db.iter().enumerate() {
            let closed = db.skyline_probability_in(t, mask);
            prop_assert!((closed - exhaustive[i]).abs() < 1e-9);
        }
    }

    /// World probabilities always sum to one.
    #[test]
    fn world_probabilities_sum_to_one(db in arb_db(2, 12)) {
        let total: f64 = worlds::enumerate(&db).unwrap().iter().map(|w| w.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    /// Skyline probabilities are valid probabilities, bounded by P(t).
    #[test]
    fn skyline_probability_bounded_by_existential(db in arb_db(3, 20)) {
        for t in db.iter() {
            let p = db.skyline_probability(t);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= t.prob().get() + 1e-12);
        }
    }

    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_is_a_strict_order(
        a in arb_tuple(3, 0),
        b in arb_tuple(3, 1),
        c in arb_tuple(3, 2),
    ) {
        prop_assert!(!dominates(a.values(), a.values()));
        prop_assert!(!(dominates(a.values(), b.values()) && dominates(b.values(), a.values())));
        // Transitivity.
        if dominates(a.values(), b.values()) && dominates(b.values(), c.values()) {
            prop_assert!(dominates(a.values(), c.values()));
        }
    }

    /// `relation` is consistent with `dominates_in` on every subspace.
    #[test]
    fn relation_consistent_with_dominates(
        a in arb_tuple(4, 0),
        b in arb_tuple(4, 1),
        dims in prop::collection::btree_set(0usize..4, 1..=4),
    ) {
        let mask = SubspaceMask::from_dims(&dims.into_iter().collect::<Vec<_>>()).unwrap();
        let rel = relation(a.values(), b.values(), mask);
        prop_assert_eq!(rel == DomRelation::Dominates, dominates_in(a.values(), b.values(), mask));
        prop_assert_eq!(rel == DomRelation::DominatedBy, dominates_in(b.values(), a.values(), mask));
    }

    /// Adding a tuple never increases anyone else's skyline probability.
    #[test]
    fn insert_is_monotone_decreasing(db in arb_db(2, 10), extra in arb_tuple(2, 999)) {
        let before: Vec<f64> = db.iter().map(|t| db.skyline_probability(t)).collect();
        let mut bigger = db.clone();
        let mut extra = extra;
        // Re-id to avoid collisions.
        extra = UncertainTuple::new(TupleId::new(1, 0), extra.values().to_vec(), extra.prob()).unwrap();
        bigger.insert(extra).unwrap();
        for (i, t) in db.iter().enumerate() {
            let after = bigger.skyline_probability(t);
            prop_assert!(after <= before[i] + 1e-12);
        }
    }
}
