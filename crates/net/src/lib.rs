//! Simulated network substrate for distributed skyline processing.
//!
//! The paper measures a distributed algorithm by the number of *tuples*
//! transmitted over the network (Section 3.2, goal 1): synchronization
//! messages and packet headers are considered free, tuple payloads are not.
//! This crate provides everything the algorithms need to run "distributed"
//! while keeping that accounting honest and deterministic:
//!
//! * [`Message`] — the typed protocol vocabulary between the central server
//!   `H` and local sites, with a binary wire encoding (via `bytes`) so byte
//!   counts are realistic, not estimated;
//! * [`BandwidthMeter`] — shared counters of messages / tuples / bytes per
//!   traffic class;
//! * [`Link`] — a split-phase request/response channel to one site
//!   ([`Link::send`] returns a [`Ticket`] redeemed by [`Link::complete`],
//!   so several requests can ride one link at once), with two
//!   implementations: [`LocalLink`] (deterministic in-process dispatch,
//!   used by tests and benchmarks) and [`ChannelLink`] (each site runs on
//!   its own OS thread behind crossbeam channels, demonstrating real
//!   concurrency). Link operations return `Result<_, `[`LinkError`]`>` —
//!   transport failure is a value the coordinator handles, never a panic —
//!   and [`RetryLink`] layers deterministic retry-with-backoff (per-link
//!   [`LinkConfig`]) on any transport;
//! * [`LatencyModel`] — a deterministic cost model converting metered
//!   traffic into simulated network time, used by the update-performance
//!   experiment (paper Fig. 14) so "response time" is reproducible on any
//!   machine;
//! * [`MuxLink`] and [`QueryServer`] — the session-layer pieces behind the
//!   long-lived `dsud serve` daemon: per-query multiplexed views of shared
//!   site links ([`Message::Tagged`]) and the client-facing accept loop
//!   (see the [`server`] module docs).
//!
//! # Example
//!
//! ```
//! use dsud_net::{BandwidthMeter, Link, LocalLink, Message, Service};
//!
//! struct Echo;
//! impl Service for Echo {
//!     fn handle(&mut self, msg: Message) -> Message {
//!         match msg {
//!             Message::RequestNext => Message::Upload(None),
//!             _ => Message::Ack,
//!         }
//!     }
//! }
//!
//! let meter = BandwidthMeter::new();
//! let mut link = LocalLink::new(Echo, meter.clone());
//! let reply = link.call(Message::RequestNext).expect("inline transports cannot fail");
//! assert!(matches!(reply, Message::Upload(None)));
//! assert_eq!(meter.snapshot().total().messages, 2);
//! ```

// `deny` rather than `forbid`: the columnar wire module carries the
// crate's one narrowly-scoped `#[allow(unsafe_code)]` — an
// alignment-checked `slice::align_to::<f64>` cast with a safe fallback
// (see `wire`'s module docs). Everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fanout;
mod latency;
mod message;
mod meter;
mod retry;
pub mod server;
pub mod tcp;
mod transport;
pub mod wire;

pub use fanout::{Aggregator, FanNode, FanPlan, Fanout, OpTicket, SiteRoute};
pub use latency::{DelayedService, LatencyModel};
pub use message::{AggReply, Message, SynopsisMsg, TrafficClass, TupleMsg};
pub use meter::{BandwidthMeter, Counters, MeterSnapshot};
pub use retry::{HealthSnapshot, LinkHealth, RetryLink};
pub use server::{
    share, spawn_query_server, ClientControl, ClientHandler, MuxLink, QueryServer, SharedLink,
};
pub use transport::{
    broadcast, scatter, ChannelLink, ChaosLink, FaultKind, FaultMode, FaultPlan, FaultWindow,
    FaultyLink, Link, LinkConfig, LinkError, LocalLink, Service, Ticket,
};
pub use wire::{BatchView, TupleBlock};
