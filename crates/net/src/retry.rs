//! Deterministic retry-with-backoff on top of any [`Link`].
//!
//! [`RetryLink`] is the failure-absorbing layer between a raw transport and
//! the coordinator: transient faults (a timed-out request, a dropped TCP
//! connection) are retried up to the [`LinkConfig::retry_budget`], with a
//! reconnect attempt and a deterministic backoff pause between attempts.
//! Only when the budget is exhausted does the failure propagate — at which
//! point the coordinator decides between aborting (strict mode) and
//! quarantining the site (degraded mode).
//!
//! Determinism: whether an attempt is retried and how long the backoff
//! pause lasts are pure functions of the per-call attempt index and the
//! config — no randomness, no wall-clock dependence. Replaying the same
//! fault schedule therefore produces the same attempt transcript on every
//! run, pool size, and transport; the backoff only stretches wall-clock
//! time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsud_obs::{Counter, Recorder};

use crate::{Link, LinkConfig, LinkError, Message};

/// Shared, lock-free view of one link's failure history.
///
/// The coordinator holds a clone while the link itself lives inside the
/// boxed transport stack, so per-site failure accounting stays readable
/// after the query ends.
#[derive(Debug, Default)]
pub struct LinkHealth {
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    disconnects: AtomicU64,
    malformed: AtomicU64,
}

/// Point-in-time copy of a [`LinkHealth`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Requests attempted (first tries and retries alike).
    pub attempts: u64,
    /// Attempts that were retries of a failed predecessor.
    pub retries: u64,
    /// Attempts that failed with [`LinkError::Timeout`].
    pub timeouts: u64,
    /// Attempts that failed with [`LinkError::Disconnected`].
    pub disconnects: u64,
    /// Attempts that failed with [`LinkError::Malformed`].
    pub malformed: u64,
}

impl LinkHealth {
    /// Copies the current counters.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
        }
    }

    fn note_failure(&self, error: &LinkError) {
        match error {
            LinkError::Timeout => self.timeouts.fetch_add(1, Ordering::Relaxed),
            LinkError::Disconnected => self.disconnects.fetch_add(1, Ordering::Relaxed),
            LinkError::Malformed => self.malformed.fetch_add(1, Ordering::Relaxed),
            LinkError::Io(_) => self.disconnects.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// A [`Link`] wrapper that retries failed requests deterministically.
///
/// Each failed attempt is followed by a [`Link::reconnect`] of the inner
/// transport and a [`LinkConfig::backoff_step`] pause, until the request
/// succeeds or [`LinkConfig::retry_budget`] re-attempts have failed; the
/// last error is then returned. Retry and timeout totals are mirrored onto
/// the [`Recorder`] ([`Counter::LinkRetries`], [`Counter::LinkTimeouts`])
/// so they land in the run report.
#[derive(Debug)]
pub struct RetryLink<L> {
    inner: L,
    config: LinkConfig,
    recorder: Recorder,
    health: Arc<LinkHealth>,
    /// The request put in flight by `begin`, kept for retries on `complete`.
    pending: Option<Message>,
    /// Error from a failed `begin`, surfaced (after retries) by `complete`.
    begin_error: Option<LinkError>,
}

impl<L: Link> RetryLink<L> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: L, config: LinkConfig) -> Self {
        Self::with_recorder(inner, config, Recorder::disabled())
    }

    /// Wraps `inner`, mirroring retry/timeout counts onto `recorder`.
    pub fn with_recorder(inner: L, config: LinkConfig, recorder: Recorder) -> Self {
        RetryLink {
            inner,
            config,
            recorder,
            health: Arc::new(LinkHealth::default()),
            pending: None,
            begin_error: None,
        }
    }

    /// Shared handle onto this link's failure counters.
    pub fn health(&self) -> Arc<LinkHealth> {
        Arc::clone(&self.health)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    fn note_failure(&self, error: &LinkError) {
        self.health.note_failure(error);
        if *error == LinkError::Timeout {
            self.recorder.incr(Counter::LinkTimeouts);
        }
    }

    /// Retries `msg` after `first_error`, consuming the remaining budget.
    fn retry_after(&mut self, msg: Message, first_error: LinkError) -> Result<Message, LinkError> {
        let mut last_error = first_error;
        for attempt in 1..=self.config.retry_budget {
            self.health.retries.fetch_add(1, Ordering::Relaxed);
            self.recorder.incr(Counter::LinkRetries);
            let pause = self.config.backoff_step(attempt);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            // Best-effort: a failed reconnect still lets the attempt run,
            // which surfaces the transport's own (possibly more specific)
            // error.
            let _ = self.inner.reconnect();
            self.health.attempts.fetch_add(1, Ordering::Relaxed);
            match self.inner.call(msg.clone()) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    self.note_failure(&e);
                    last_error = e;
                }
            }
        }
        Err(last_error)
    }
}

impl<L: Link> Link for RetryLink<L> {
    fn call(&mut self, msg: Message) -> Result<Message, LinkError> {
        assert!(self.pending.is_none(), "request already outstanding");
        self.health.attempts.fetch_add(1, Ordering::Relaxed);
        match self.inner.call(msg.clone()) {
            Ok(reply) => Ok(reply),
            Err(e) => {
                self.note_failure(&e);
                self.retry_after(msg, e)
            }
        }
    }

    fn begin(&mut self, msg: Message) -> Result<(), LinkError> {
        assert!(self.pending.is_none(), "request already outstanding");
        self.health.attempts.fetch_add(1, Ordering::Relaxed);
        match self.inner.begin(msg.clone()) {
            Ok(()) => {
                self.pending = Some(msg);
                Ok(())
            }
            Err(e) => {
                // Defer the retries to `complete`, so a broadcast's other
                // begins still go out first — the same overlap a healthy
                // begin/complete round has.
                self.note_failure(&e);
                self.pending = Some(msg);
                self.begin_error = Some(e);
                Ok(())
            }
        }
    }

    fn complete(&mut self) -> Result<Message, LinkError> {
        let msg = self.pending.take().expect("no outstanding request");
        if let Some(e) = self.begin_error.take() {
            return self.retry_after(msg, e);
        }
        match self.inner.complete() {
            Ok(reply) => Ok(reply),
            Err(e) => {
                self.note_failure(&e);
                self.retry_after(msg, e)
            }
        }
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandwidthMeter, FaultMode, FaultyLink, LocalLink, Service};
    use std::time::Duration;

    fn echo_service() -> impl Service {
        |msg: Message| match msg {
            Message::RequestNext => Message::Upload(None),
            _ => Message::Ack,
        }
    }

    fn config(budget: u32) -> LinkConfig {
        LinkConfig {
            request_timeout: Duration::from_millis(100),
            retry_budget: budget,
            backoff: Duration::ZERO,
        }
    }

    fn stalled(budget: u32, stall: u64) -> RetryLink<FaultyLink<LocalLink<impl Service>>> {
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        RetryLink::new(FaultyLink::new(inner, FaultMode::Stall(stall), 1), config(budget))
    }

    #[test]
    fn retry_rides_out_a_stall_within_budget() {
        let mut link = stalled(2, 2);
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        // The stall swallows two attempts; two retries recover the answer.
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 4);
        assert_eq!(health.retries, 2);
        assert_eq!(health.timeouts, 2);
    }

    #[test]
    fn retry_budget_exhaustion_returns_the_last_error() {
        let mut link = stalled(1, 5);
        assert!(link.call(Message::RequestNext).is_ok());
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 3); // healthy + first try + 1 retry
        assert_eq!(health.retries, 1);
    }

    #[test]
    fn zero_budget_fails_fast() {
        let mut link = stalled(0, 1);
        assert!(link.call(Message::RequestNext).is_ok());
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        assert_eq!(link.health().snapshot().retries, 0);
    }

    #[test]
    fn split_path_retries_on_complete() {
        let mut link = stalled(2, 2);
        link.begin(Message::RequestNext).unwrap();
        assert_eq!(link.complete(), Ok(Message::Upload(None)));
        // Second round hits the stall at begin; complete absorbs it.
        link.begin(Message::RequestNext).unwrap();
        assert_eq!(link.complete(), Ok(Message::Upload(None)));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 4);
        assert_eq!(health.retries, 2);
    }

    #[test]
    fn split_and_call_paths_account_identically() {
        let transcript = |split: bool| {
            let mut link = stalled(3, 2);
            for _ in 0..4 {
                let reply = if split {
                    link.begin(Message::RequestNext).unwrap();
                    link.complete()
                } else {
                    link.call(Message::RequestNext)
                };
                assert_eq!(reply, Ok(Message::Upload(None)));
            }
            link.health().snapshot()
        };
        assert_eq!(transcript(false), transcript(true));
    }

    #[test]
    fn retries_flow_into_the_recorder() {
        let recorder = Recorder::enabled();
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        let faulty = FaultyLink::new(inner, FaultMode::Stall(1), 0);
        let mut link = RetryLink::with_recorder(faulty, config(2), recorder.clone());
        assert!(link.call(Message::RequestNext).is_ok());
        assert_eq!(recorder.counter(Counter::LinkRetries), 1);
        assert_eq!(recorder.counter(Counter::LinkTimeouts), 1);
    }

    #[test]
    fn permanent_disconnect_exhausts_the_budget() {
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        let faulty = FaultyLink::new(inner, FaultMode::Disconnect, 0);
        let mut link = RetryLink::new(faulty, config(3));
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Disconnected));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 4);
        assert_eq!(health.retries, 3);
        assert_eq!(health.disconnects, 4);
    }
}
