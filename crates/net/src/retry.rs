//! Deterministic retry-with-backoff on top of any [`Link`].
//!
//! [`RetryLink`] is the failure-absorbing layer between a raw transport and
//! the coordinator: transient faults (a timed-out request, a dropped TCP
//! connection) are retried up to the [`LinkConfig::retry_budget`], with a
//! reconnect attempt and a deterministic backoff pause between attempts.
//! Only when the budget is exhausted does the failure propagate — at which
//! point the coordinator decides between aborting (strict mode) and
//! quarantining the site (degraded mode).
//!
//! Determinism: whether an attempt is retried and how long the backoff
//! pause lasts are pure functions of the per-call attempt index and the
//! config — no randomness, no wall-clock dependence. Replaying the same
//! fault schedule therefore produces the same attempt transcript on every
//! run, pool size, and transport; the backoff only stretches wall-clock
//! time.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dsud_obs::{Counter, Recorder};

use crate::transport::TicketLedger;
use crate::{Link, LinkConfig, LinkError, Message, Ticket};

/// Shared, lock-free view of one link's failure history.
///
/// The coordinator holds a clone while the link itself lives inside the
/// boxed transport stack, so per-site failure accounting stays readable
/// after the query ends.
/// Counters are kept on two horizons: *cumulative* totals over the link's
/// whole life, and a *window* since the last explicit
/// [`Link::reconnect`] — probation decisions after a rejoin must weigh
/// fresh evidence, not the failure burst that caused the quarantine.
/// [`LinkHealth::consecutive_misses`] counts completed requests that
/// failed end-to-end (budget exhausted) with no intervening success; one
/// successful reply resets it.
#[derive(Debug, Default)]
pub struct LinkHealth {
    attempts: AtomicU64,
    retries: AtomicU64,
    timeouts: AtomicU64,
    disconnects: AtomicU64,
    malformed: AtomicU64,
    window_attempts: AtomicU64,
    window_retries: AtomicU64,
    window_timeouts: AtomicU64,
    window_disconnects: AtomicU64,
    window_malformed: AtomicU64,
    consecutive_misses: AtomicU64,
    reconnects: AtomicU64,
}

/// Point-in-time copy of a [`LinkHealth`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Requests attempted (first tries and retries alike).
    pub attempts: u64,
    /// Attempts that were retries of a failed predecessor.
    pub retries: u64,
    /// Attempts that failed with [`LinkError::Timeout`].
    pub timeouts: u64,
    /// Attempts that failed with [`LinkError::Disconnected`].
    pub disconnects: u64,
    /// Attempts that failed with [`LinkError::Malformed`].
    pub malformed: u64,
    /// [`HealthSnapshot::attempts`] since the last explicit reconnect.
    pub window_attempts: u64,
    /// [`HealthSnapshot::retries`] since the last explicit reconnect.
    pub window_retries: u64,
    /// [`HealthSnapshot::timeouts`] since the last explicit reconnect.
    pub window_timeouts: u64,
    /// [`HealthSnapshot::disconnects`] since the last explicit reconnect.
    pub window_disconnects: u64,
    /// [`HealthSnapshot::malformed`] since the last explicit reconnect.
    pub window_malformed: u64,
    /// Completed requests that failed end-to-end since the last
    /// successful reply.
    pub consecutive_misses: u64,
    /// Explicit reconnects (window resets) over the link's life.
    pub reconnects: u64,
}

impl LinkHealth {
    /// Copies the current counters.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            attempts: self.attempts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            disconnects: self.disconnects.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            window_attempts: self.window_attempts.load(Ordering::Relaxed),
            window_retries: self.window_retries.load(Ordering::Relaxed),
            window_timeouts: self.window_timeouts.load(Ordering::Relaxed),
            window_disconnects: self.window_disconnects.load(Ordering::Relaxed),
            window_malformed: self.window_malformed.load(Ordering::Relaxed),
            consecutive_misses: self.consecutive_misses.load(Ordering::Relaxed),
            reconnects: self.reconnects.load(Ordering::Relaxed),
        }
    }

    /// Completed requests that failed end-to-end with no success since.
    pub fn consecutive_misses(&self) -> u64 {
        self.consecutive_misses.load(Ordering::Relaxed)
    }

    fn note_attempt(&self) {
        self.attempts.fetch_add(1, Ordering::Relaxed);
        self.window_attempts.fetch_add(1, Ordering::Relaxed);
    }

    fn note_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
        self.window_retries.fetch_add(1, Ordering::Relaxed);
    }

    fn note_failure(&self, error: &LinkError) {
        let (total, window) = match error {
            LinkError::Timeout => (&self.timeouts, &self.window_timeouts),
            LinkError::Disconnected | LinkError::Io(_) => {
                (&self.disconnects, &self.window_disconnects)
            }
            LinkError::Malformed => (&self.malformed, &self.window_malformed),
        };
        total.fetch_add(1, Ordering::Relaxed);
        window.fetch_add(1, Ordering::Relaxed);
    }

    /// A request completed with a reply: the miss streak is over.
    fn note_success(&self) {
        self.consecutive_misses.store(0, Ordering::Relaxed);
    }

    /// A request failed end-to-end (retry budget exhausted).
    fn note_miss(&self) {
        self.consecutive_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a fresh evidence window at an explicit reconnect; the
    /// cumulative counters keep their history.
    fn reset_window(&self) {
        self.window_attempts.store(0, Ordering::Relaxed);
        self.window_retries.store(0, Ordering::Relaxed);
        self.window_timeouts.store(0, Ordering::Relaxed);
        self.window_disconnects.store(0, Ordering::Relaxed);
        self.window_malformed.store(0, Ordering::Relaxed);
        self.reconnects.fetch_add(1, Ordering::Relaxed);
    }
}

/// A [`Link`] wrapper that retries failed requests deterministically.
///
/// Each failed attempt is followed by a [`Link::reconnect`] of the inner
/// transport and a [`LinkConfig::backoff_step`] pause, until the request
/// succeeds or [`LinkConfig::retry_budget`] re-attempts have failed; the
/// last error is then returned. Retry and timeout totals are mirrored onto
/// the [`Recorder`] ([`Counter::LinkRetries`], [`Counter::LinkTimeouts`])
/// so they land in the run report.
///
/// Retries happen inside [`Link::complete`], never at [`Link::send`]: a
/// failed send is deferred (the ticket is still issued), so the rest of a
/// broadcast's sends go out before any backoff pause — the same overlap a
/// healthy round has, and the same deterministic backoff schedule as the
/// synchronous path. When several requests are in flight and one fails, the
/// inner transport's remaining tickets are condemned (the wire they rode is
/// gone); the later requests are replayed, in send order, over a fresh
/// connection.
#[derive(Debug)]
pub struct RetryLink<L> {
    inner: L,
    config: LinkConfig,
    recorder: Recorder,
    health: Arc<LinkHealth>,
    tickets: TicketLedger,
    /// Requests in flight, in send order, each with a clone of its message
    /// (kept for retries on `complete`).
    pending: VecDeque<Pending>,
    /// Set once a failure forced (or will force) an inner reconnect: the
    /// inner tickets of later pending requests no longer redeem, so those
    /// requests are replayed via `inner.call` instead. Cleared when the
    /// window drains.
    broken: bool,
}

/// One in-flight request held by a [`RetryLink`].
#[derive(Debug)]
struct Pending {
    ticket: Ticket,
    msg: Message,
    /// The inner ticket when the send went through, or the deferred send
    /// error to retry at completion time.
    state: Result<Ticket, LinkError>,
}

impl<L: Link> RetryLink<L> {
    /// Wraps `inner` with the given retry policy.
    pub fn new(inner: L, config: LinkConfig) -> Self {
        Self::with_recorder(inner, config, Recorder::disabled())
    }

    /// Wraps `inner`, mirroring retry/timeout counts onto `recorder`.
    pub fn with_recorder(inner: L, config: LinkConfig, recorder: Recorder) -> Self {
        RetryLink {
            inner,
            config,
            recorder,
            health: Arc::new(LinkHealth::default()),
            tickets: TicketLedger::default(),
            pending: VecDeque::new(),
            broken: false,
        }
    }

    /// Shared handle onto this link's failure counters.
    pub fn health(&self) -> Arc<LinkHealth> {
        Arc::clone(&self.health)
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    fn note_failure(&self, error: &LinkError) {
        self.health.note_failure(error);
        if *error == LinkError::Timeout {
            self.recorder.incr(Counter::LinkTimeouts);
        }
    }

    /// Retries `msg` after `first_error`, consuming the remaining budget.
    fn retry_after(&mut self, msg: Message, first_error: LinkError) -> Result<Message, LinkError> {
        let mut last_error = first_error;
        for attempt in 1..=self.config.retry_budget {
            self.health.note_retry();
            self.recorder.incr(Counter::LinkRetries);
            let pause = self.config.backoff_step(attempt);
            if !pause.is_zero() {
                std::thread::sleep(pause);
            }
            // Best-effort: a failed reconnect still lets the attempt run,
            // which surfaces the transport's own (possibly more specific)
            // error.
            let _ = self.inner.reconnect();
            self.health.note_attempt();
            match self.inner.call(msg.clone()) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    self.note_failure(&e);
                    last_error = e;
                }
            }
        }
        Err(last_error)
    }
}

impl<L: Link> Link for RetryLink<L> {
    fn send(&mut self, msg: Message) -> Result<Ticket, LinkError> {
        self.health.note_attempt();
        let state = match self.inner.send(msg.clone()) {
            Ok(inner_ticket) => Ok(inner_ticket),
            Err(e) => {
                // Defer the retries to `complete`, so a broadcast's other
                // sends still go out first — the same overlap a healthy
                // round has. Only this request is condemned: requests
                // already on the wire complete normally ahead of it.
                self.note_failure(&e);
                Err(e)
            }
        };
        let ticket = self.tickets.issue();
        self.pending.push_back(Pending { ticket, msg, state });
        Ok(ticket)
    }

    fn complete(&mut self, ticket: Ticket) -> Result<Message, LinkError> {
        self.tickets.redeem(ticket);
        let entry = self.pending.pop_front().expect("a redeemed ticket has a pending request");
        assert!(entry.ticket == ticket, "tickets must be completed in send order");
        let result = match entry.state {
            Ok(inner_ticket) if !self.broken => match self.inner.complete(inner_ticket) {
                Ok(reply) => Ok(reply),
                Err(e) => {
                    self.note_failure(&e);
                    self.broken = true;
                    self.retry_after(entry.msg, e)
                }
            },
            Ok(_abandoned) => {
                // An earlier in-flight request broke the wire after this one
                // was sent; its inner ticket died with the old connection.
                // Replay the request on the reconnected transport — the
                // request may execute twice at the site, the same hazard any
                // retry of a timed-out request has.
                let _ = self.inner.reconnect();
                self.health.note_attempt();
                match self.inner.call(entry.msg.clone()) {
                    Ok(reply) => Ok(reply),
                    Err(e) => {
                        self.note_failure(&e);
                        self.retry_after(entry.msg, e)
                    }
                }
            }
            Err(e) => {
                // A deferred send failure: the retry loop below may
                // reconnect the inner transport, which condemns the inner
                // tickets of everything sent after this request.
                self.broken = true;
                self.retry_after(entry.msg, e)
            }
        };
        if self.pending.is_empty() {
            // The window drained: whatever happened, the next send starts
            // from a coherent (possibly freshly reconnected) wire.
            self.broken = false;
        }
        match result {
            Ok(_) => self.health.note_success(),
            Err(_) => self.health.note_miss(),
        }
        result
    }

    fn reconnect(&mut self) -> Result<(), LinkError> {
        self.pending.clear();
        self.tickets.reset();
        self.broken = false;
        // An explicit reconnect opens a fresh evidence window: probation
        // judges the rejoined link on what happens from here on.
        self.health.reset_window();
        self.inner.reconnect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandwidthMeter, FaultMode, FaultyLink, LocalLink, Service};
    use std::time::Duration;

    fn echo_service() -> impl Service {
        |msg: Message| match msg {
            Message::RequestNext => Message::Upload(None),
            _ => Message::Ack,
        }
    }

    fn config(budget: u32) -> LinkConfig {
        LinkConfig {
            request_timeout: Duration::from_millis(100),
            retry_budget: budget,
            backoff: Duration::ZERO,
        }
    }

    fn stalled(budget: u32, stall: u64) -> RetryLink<FaultyLink<LocalLink<impl Service>>> {
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        RetryLink::new(FaultyLink::new(inner, FaultMode::Stall(stall), 1), config(budget))
    }

    #[test]
    fn retry_rides_out_a_stall_within_budget() {
        let mut link = stalled(2, 2);
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        // The stall swallows two attempts; two retries recover the answer.
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 4);
        assert_eq!(health.retries, 2);
        assert_eq!(health.timeouts, 2);
    }

    #[test]
    fn retry_budget_exhaustion_returns_the_last_error() {
        let mut link = stalled(1, 5);
        assert!(link.call(Message::RequestNext).is_ok());
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 3); // healthy + first try + 1 retry
        assert_eq!(health.retries, 1);
    }

    #[test]
    fn zero_budget_fails_fast() {
        let mut link = stalled(0, 1);
        assert!(link.call(Message::RequestNext).is_ok());
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        assert_eq!(link.health().snapshot().retries, 0);
    }

    #[test]
    fn split_path_retries_on_complete() {
        let mut link = stalled(2, 2);
        let ticket = link.send(Message::RequestNext).unwrap();
        assert_eq!(link.complete(ticket), Ok(Message::Upload(None)));
        // Second round hits the stall at send; complete absorbs it.
        let ticket = link.send(Message::RequestNext).unwrap();
        assert_eq!(link.complete(ticket), Ok(Message::Upload(None)));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 4);
        assert_eq!(health.retries, 2);
    }

    #[test]
    fn split_and_call_paths_account_identically() {
        let transcript = |split: bool| {
            let mut link = stalled(3, 2);
            for _ in 0..4 {
                let reply = if split {
                    let ticket = link.send(Message::RequestNext).unwrap();
                    link.complete(ticket)
                } else {
                    link.call(Message::RequestNext)
                };
                assert_eq!(reply, Ok(Message::Upload(None)));
            }
            link.health().snapshot()
        };
        assert_eq!(transcript(false), transcript(true));
    }

    #[test]
    fn deferred_send_failure_retries_in_send_order() {
        // Two requests in flight; the fault swallows the *first* of them at
        // send time. The failure is deferred to that request's completion,
        // where the retry runs — the second request, condemned with the
        // wire, is replayed and still yields its reply in send order.
        let mut link = stalled(2, 1);
        assert!(link.call(Message::RequestNext).is_ok()); // consume healthy budget
        let first = link.send(Message::RequestNext).unwrap(); // swallowed, deferred
        let second = link.send(Message::RequestNext).unwrap();
        assert_eq!(link.complete(first), Ok(Message::Upload(None))); // retried here
        assert_eq!(link.complete(second), Ok(Message::Upload(None))); // replayed
        let health = link.health().snapshot();
        assert_eq!(health.retries, 1);
        assert_eq!(health.timeouts, 1);
    }

    #[test]
    fn mid_window_failure_replays_later_requests() {
        // The middle of three in-flight requests fails; everything after it
        // rode the condemned wire and must be replayed over the reconnected
        // transport, still yielding replies in send order.
        let mut link = stalled(2, 1);
        let first = link.send(Message::RequestNext).unwrap(); // healthy budget
        let second = link.send(Message::RequestNext).unwrap(); // swallowed
        let third = link.send(Message::RequestNext).unwrap();
        assert_eq!(link.complete(first), Ok(Message::Upload(None)));
        assert_eq!(link.complete(second), Ok(Message::Upload(None))); // retried
        assert_eq!(link.complete(third), Ok(Message::Upload(None))); // replayed
                                                                     // A fresh window after the drain behaves as if nothing happened.
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
    }

    #[test]
    fn retries_flow_into_the_recorder() {
        let recorder = Recorder::enabled();
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        let faulty = FaultyLink::new(inner, FaultMode::Stall(1), 0);
        let mut link = RetryLink::with_recorder(faulty, config(2), recorder.clone());
        assert!(link.call(Message::RequestNext).is_ok());
        assert_eq!(recorder.counter(Counter::LinkRetries), 1);
        assert_eq!(recorder.counter(Counter::LinkTimeouts), 1);
    }

    #[test]
    fn window_counters_reset_on_reconnect_but_cumulative_persist() {
        // A failure burst exhausts the budget, then an explicit reconnect
        // opens a fresh window: probation evidence starts from zero while
        // the cumulative history is preserved.
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        let faulty = FaultyLink::new(inner, FaultMode::Stall(3), 0);
        let mut link = RetryLink::new(faulty, config(1));
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Timeout));
        let burst = link.health().snapshot();
        assert_eq!(burst.attempts, 2); // first try + 1 retry
        assert_eq!(burst.timeouts, 2);
        assert_eq!(burst.window_attempts, 2);
        assert_eq!(burst.window_timeouts, 2);
        assert_eq!(burst.consecutive_misses, 1);
        assert_eq!(burst.reconnects, 0);

        link.reconnect().expect("reconnect succeeds");
        let fresh = link.health().snapshot();
        assert_eq!(fresh.attempts, 2, "cumulative history survives the reconnect");
        assert_eq!(fresh.timeouts, 2);
        assert_eq!(fresh.window_attempts, 0, "the window starts over");
        assert_eq!(fresh.window_timeouts, 0);
        assert_eq!(fresh.reconnects, 1);
        // The stall has one faulted call left; it fails once more, then the
        // link is healthy — the success ends the miss streak while the
        // window records exactly the post-reconnect evidence.
        assert_eq!(link.call(Message::RequestNext), Ok(Message::Upload(None)));
        let after = link.health().snapshot();
        assert_eq!(after.window_attempts, 2); // failed try + successful retry
        assert_eq!(after.window_timeouts, 1);
        assert_eq!(after.consecutive_misses, 0, "a reply resets the miss streak");
        assert_eq!(after.attempts, 4);
        assert_eq!(after.timeouts, 3);
    }

    #[test]
    fn consecutive_misses_accumulate_per_failed_request() {
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        let faulty = FaultyLink::new(inner, FaultMode::Disconnect, 0);
        let mut link = RetryLink::new(faulty, config(0));
        for expect in 1..=3u64 {
            assert_eq!(link.call(Message::RequestNext), Err(LinkError::Disconnected));
            assert_eq!(link.health().consecutive_misses(), expect);
        }
    }

    #[test]
    fn permanent_disconnect_exhausts_the_budget() {
        let inner = LocalLink::new(echo_service(), BandwidthMeter::new());
        let faulty = FaultyLink::new(inner, FaultMode::Disconnect, 0);
        let mut link = RetryLink::new(faulty, config(3));
        assert_eq!(link.call(Message::RequestNext), Err(LinkError::Disconnected));
        let health = link.health().snapshot();
        assert_eq!(health.attempts, 4);
        assert_eq!(health.retries, 3);
        assert_eq!(health.disconnects, 4);
    }
}
