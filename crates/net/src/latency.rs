//! Deterministic latency model that converts a metered traffic snapshot into
//! reproducible network time, so the paper's response-time experiment
//! (Fig. 14) does not depend on the machine it reruns on.

use serde::{Deserialize, Serialize};

use crate::MeterSnapshot;

/// Deterministic network-time model.
///
/// The paper's update experiment (Fig. 14) reports *response time*, which on
/// the authors' testbed mixes CPU time with LAN latency. To make the
/// experiment reproducible on any machine, we charge each metered message a
/// fixed cost plus per-tuple and per-byte terms and add the result to
/// measured CPU time. Defaults approximate a LAN: 0.5 ms per round-trip
/// message, ~1 Gbps effective throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per message, in milliseconds.
    pub per_message_ms: f64,
    /// Additional cost per carried tuple, in milliseconds.
    pub per_tuple_ms: f64,
    /// Additional cost per wire byte, in milliseconds.
    pub per_byte_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            per_message_ms: 0.5,
            per_tuple_ms: 0.01,
            // 1 Gbps ≈ 125 bytes/µs → 8e-6 ms per byte.
            per_byte_ms: 8e-6,
        }
    }
}

impl LatencyModel {
    /// A model that charges nothing (pure bandwidth accounting).
    pub fn zero() -> Self {
        LatencyModel { per_message_ms: 0.0, per_tuple_ms: 0.0, per_byte_ms: 0.0 }
    }

    /// Total simulated network time for the given traffic, in milliseconds.
    ///
    /// All messages are charged as if serialized — a pessimistic but
    /// deterministic assumption, documented in DESIGN.md.
    pub fn network_time_ms(&self, traffic: &MeterSnapshot) -> f64 {
        let t = traffic.total();
        t.messages as f64 * self.per_message_ms
            + t.tuples as f64 * self.per_tuple_ms
            + t.bytes as f64 * self.per_byte_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandwidthMeter, Message};

    #[test]
    fn zero_model_charges_nothing() {
        let meter = BandwidthMeter::new();
        meter.record(&Message::RequestNext);
        assert_eq!(LatencyModel::zero().network_time_ms(&meter.snapshot()), 0.0);
    }

    #[test]
    fn cost_grows_with_traffic() {
        let meter = BandwidthMeter::new();
        let model = LatencyModel::default();
        meter.record(&Message::RequestNext);
        let one = model.network_time_ms(&meter.snapshot());
        meter.record(&Message::RequestNext);
        let two = model.network_time_ms(&meter.snapshot());
        assert!(one > 0.0);
        assert!((two - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn default_is_lan_like() {
        let model = LatencyModel::default();
        assert!(model.per_message_ms > 0.0);
        assert!(model.per_byte_ms < model.per_tuple_ms);
    }
}
