//! Deterministic latency model that converts a metered traffic snapshot into
//! reproducible network time, so the paper's response-time experiment
//! (Fig. 14) does not depend on the machine it reruns on — plus
//! [`DelayedService`], a wall-clock delay injector used to measure what the
//! traffic-based model cannot: the benefit of *overlapping* round-trips.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::{Message, MeterSnapshot, Service};

/// Deterministic network-time model.
///
/// The paper's update experiment (Fig. 14) reports *response time*, which on
/// the authors' testbed mixes CPU time with LAN latency. To make the
/// experiment reproducible on any machine, we charge each metered message a
/// fixed cost plus per-tuple and per-byte terms and add the result to
/// measured CPU time. Defaults approximate a LAN: 0.5 ms per round-trip
/// message, ~1 Gbps effective throughput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed cost per message, in milliseconds.
    pub per_message_ms: f64,
    /// Additional cost per carried tuple, in milliseconds.
    pub per_tuple_ms: f64,
    /// Additional cost per wire byte, in milliseconds.
    pub per_byte_ms: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            per_message_ms: 0.5,
            per_tuple_ms: 0.01,
            // 1 Gbps ≈ 125 bytes/µs → 8e-6 ms per byte.
            per_byte_ms: 8e-6,
        }
    }
}

impl LatencyModel {
    /// A model that charges nothing (pure bandwidth accounting).
    pub fn zero() -> Self {
        LatencyModel { per_message_ms: 0.0, per_tuple_ms: 0.0, per_byte_ms: 0.0 }
    }

    /// Total simulated network time for the given traffic, in milliseconds.
    ///
    /// All messages are charged as if serialized — a pessimistic but
    /// deterministic assumption, documented in DESIGN.md.
    pub fn network_time_ms(&self, traffic: &MeterSnapshot) -> f64 {
        let t = traffic.total();
        t.messages as f64 * self.per_message_ms
            + t.tuples as f64 * self.per_tuple_ms
            + t.bytes as f64 * self.per_byte_ms
    }
}

/// A [`Service`] wrapper that sleeps a fixed per-request delay before
/// delegating, simulating a site across a slow link.
///
/// [`LatencyModel`] charges traffic after the fact, so two runs with
/// identical traffic cost the same simulated time no matter how their
/// round-trips interleave — by construction it cannot show a pipelining
/// gain. `DelayedService` injects the delay into the live request path
/// instead: behind a concurrent transport (e.g.
/// [`ChannelLink`](crate::ChannelLink)), overlapped requests genuinely
/// overlap their delays, which is what the pipelined-coordinator speedup
/// test and benchmark measure.
#[derive(Debug)]
pub struct DelayedService<S> {
    inner: S,
    delay: Duration,
}

impl<S: Service> DelayedService<S> {
    /// Wraps `inner`, delaying every request by `delay`.
    pub fn new(inner: S, delay: Duration) -> Self {
        DelayedService { inner, delay }
    }
}

impl<S: Service> Service for DelayedService<S> {
    fn handle(&mut self, msg: Message) -> Message {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.handle(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BandwidthMeter, Message};

    #[test]
    fn zero_model_charges_nothing() {
        let meter = BandwidthMeter::new();
        meter.record(&Message::RequestNext);
        assert_eq!(LatencyModel::zero().network_time_ms(&meter.snapshot()), 0.0);
    }

    #[test]
    fn cost_grows_with_traffic() {
        let meter = BandwidthMeter::new();
        let model = LatencyModel::default();
        meter.record(&Message::RequestNext);
        let one = model.network_time_ms(&meter.snapshot());
        meter.record(&Message::RequestNext);
        let two = model.network_time_ms(&meter.snapshot());
        assert!(one > 0.0);
        assert!((two - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn default_is_lan_like() {
        let model = LatencyModel::default();
        assert!(model.per_message_ms > 0.0);
        assert!(model.per_byte_ms < model.per_tuple_ms);
    }

    #[test]
    fn delayed_service_delegates_and_waits() {
        let mut service =
            DelayedService::new(|_msg: Message| Message::Ack, Duration::from_millis(20));
        let started = std::time::Instant::now();
        assert_eq!(service.handle(Message::RequestNext), Message::Ack);
        assert!(started.elapsed() >= Duration::from_millis(20));
    }
}
