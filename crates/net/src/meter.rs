//! Bandwidth accounting (the paper's Section 3.2 cost measure).
//!
//! The paper charges a distributed algorithm by the tuples it transmits;
//! [`BandwidthMeter`] keeps message / tuple / byte counters per
//! [`TrafficClass`] so uploads, feedback, replies, control traffic, and
//! update maintenance can be reported separately (Figs. 8–11, 14). Every
//! [`crate::Link`] records both directions of each exchange here. The
//! meter is also the single chokepoint through which all traffic flows,
//! so it forwards the same observations to an optional
//! [`dsud_obs::Recorder`] for structured run reports.

use std::sync::Arc;

use dsud_obs::{Counter, Recorder};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::{Message, TrafficClass};

/// Message / tuple / byte counters for one traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Number of messages observed.
    pub messages: u64,
    /// Number of tuples carried (the paper's bandwidth unit).
    pub tuples: u64,
    /// Number of wire-encoded bytes.
    pub bytes: u64,
}

impl Counters {
    fn add(&mut self, other: &Counters) {
        self.messages += other.messages;
        self.tuples += other.tuples;
        self.bytes += other.bytes;
    }
}

/// Immutable snapshot of a [`BandwidthMeter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeterSnapshot {
    /// Representative uploads (site → H).
    pub upload: Counters,
    /// Candidate broadcasts (H → sites).
    pub feedback: Counters,
    /// Scalar survival replies (site → H).
    pub reply: Counters,
    /// Control traffic.
    pub control: Counters,
    /// Update-maintenance traffic.
    pub maintenance: Counters,
    /// Simulation scaffolding (injected updates); excluded from network
    /// cost models.
    pub scaffold: Counters,
}

impl MeterSnapshot {
    /// Sum over all *network* traffic classes (scaffolding excluded).
    pub fn total(&self) -> Counters {
        let mut acc = Counters::default();
        for c in [&self.upload, &self.feedback, &self.reply, &self.control, &self.maintenance] {
            acc.add(c);
        }
        acc
    }

    /// The paper's bandwidth measure: total tuples transmitted over the
    /// network (uploads + feedback broadcasts + maintenance payloads).
    pub fn tuples_transmitted(&self) -> u64 {
        self.upload.tuples + self.feedback.tuples + self.maintenance.tuples
    }

    /// Difference of two snapshots, component-wise (`self − earlier`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not an earlier snapshot of
    /// the same meter (counters would underflow).
    pub fn since(&self, earlier: &MeterSnapshot) -> MeterSnapshot {
        fn sub(a: &Counters, b: &Counters) -> Counters {
            Counters {
                messages: a.messages - b.messages,
                tuples: a.tuples - b.tuples,
                bytes: a.bytes - b.bytes,
            }
        }
        MeterSnapshot {
            upload: sub(&self.upload, &earlier.upload),
            feedback: sub(&self.feedback, &earlier.feedback),
            reply: sub(&self.reply, &earlier.reply),
            control: sub(&self.control, &earlier.control),
            maintenance: sub(&self.maintenance, &earlier.maintenance),
            scaffold: sub(&self.scaffold, &earlier.scaffold),
        }
    }
}

/// Shared bandwidth accounting for a whole distributed run.
///
/// Cloning is cheap and produces a handle onto the same counters; every
/// [`crate::Link`] is given one at construction and records each request
/// and response as it crosses the (simulated) wire.
#[derive(Debug, Clone, Default)]
pub struct BandwidthMeter {
    inner: Arc<Mutex<MeterSnapshot>>,
    recorder: Recorder,
}

impl BandwidthMeter {
    /// Creates a fresh meter with zeroed counters and no recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a fresh meter that forwards every observation to the given
    /// [`Recorder`] (in addition to its own per-class counters).
    pub fn with_recorder(recorder: Recorder) -> Self {
        BandwidthMeter { inner: Arc::default(), recorder }
    }

    /// The recorder this meter forwards to (disabled by default).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Records one message crossing the wire.
    pub fn record(&self, msg: &Message) {
        let class = msg.class();
        let tuples = msg.tuple_count();
        let bytes = msg.encoded_len() as u64;
        {
            let mut inner = self.inner.lock();
            let slot = match class {
                TrafficClass::Upload => &mut inner.upload,
                TrafficClass::Feedback => &mut inner.feedback,
                TrafficClass::Reply => &mut inner.reply,
                TrafficClass::Control => &mut inner.control,
                TrafficClass::Maintenance => &mut inner.maintenance,
                TrafficClass::Scaffold => &mut inner.scaffold,
            };
            slot.messages += 1;
            slot.tuples += tuples;
            slot.bytes += bytes;
        }
        // Scaffold traffic (simulation-injected updates) is excluded from
        // the network cost model, and therefore from run reports too.
        if self.recorder.is_enabled() && class != TrafficClass::Scaffold {
            self.recorder.incr(Counter::Messages);
            self.recorder.add(Counter::BytesSent, bytes);
            if matches!(
                class,
                TrafficClass::Upload | TrafficClass::Feedback | TrafficClass::Maintenance
            ) {
                self.recorder.add(Counter::TuplesShipped, tuples);
            }
            // Columnar frames also report how many bytes the layout saved
            // versus their row-oriented legacy twin. Saturating: tiny frames
            // where the columnar header premium outweighs the per-row saving
            // contribute 0, never an underflow.
            if let Some(legacy) = msg.legacy_encoded_len() {
                self.recorder.incr(Counter::ColumnarFrames);
                self.recorder.add(Counter::BytesSaved, (legacy as u64).saturating_sub(bytes));
            }
        }
    }

    /// Takes a snapshot of the current counters.
    pub fn snapshot(&self) -> MeterSnapshot {
        *self.inner.lock()
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        *self.inner.lock() = MeterSnapshot::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsud_uncertain::{Probability, TupleId, UncertainTuple};

    use crate::TupleMsg;

    fn sample_msg() -> Message {
        let t =
            UncertainTuple::new(TupleId::new(0, 1), vec![1.0, 2.0], Probability::new(0.5).unwrap())
                .unwrap();
        Message::Feedback(TupleMsg::new(&t, 0.5))
    }

    #[test]
    fn batched_frame_meters_one_message_with_actual_encoded_length() {
        // A coalesced FeedbackBatch is one frame on the wire: the meter must
        // count it as a single message whose bytes equal the real encoded
        // length, while still attributing every carried tuple.
        let tuples: Vec<TupleMsg> = (0..7)
            .map(|i| {
                let t = UncertainTuple::new(
                    TupleId::new(0, i),
                    vec![1.0 + i as f64, 2.0],
                    Probability::new(0.5).unwrap(),
                )
                .unwrap();
                TupleMsg::new(&t, 0.25)
            })
            .collect();
        let msg = Message::FeedbackBatch(tuples);
        let meter = BandwidthMeter::new();
        meter.record(&msg);
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 1);
        assert_eq!(snap.feedback.tuples, 7);
        assert_eq!(snap.feedback.bytes, msg.encode().len() as u64);
        let reply = Message::SurvivalBatchReply { survivals: vec![0.5; 7], pruned: 3 };
        meter.record(&reply);
        let snap = meter.snapshot();
        assert_eq!(snap.reply.messages, 1);
        assert_eq!(snap.reply.bytes, reply.encode().len() as u64);
    }

    /// Plan-phase frames mirror the coalesced-frame contract above: one
    /// control message per sketch frame at its exact encoded length, with
    /// zero tuples — the paper's bandwidth unit must not move when the
    /// planner turns on, bare or `Tagged`-wrapped.
    #[test]
    fn sketch_frame_meters_one_control_message_with_exact_bytes() {
        let meter = BandwidthMeter::new();
        let request = Message::SketchRequest;
        meter.record(&request);
        let mut sketch = dsud_sketch::SiteSketch::default();
        for i in 0..9u64 {
            sketch.record(i, 0.1 + 0.08 * i as f64);
        }
        let frame = Message::Sketch(Box::new(sketch));
        meter.record(&frame);
        let snap = meter.snapshot();
        assert_eq!(snap.control.messages, 2, "request + reply, both control class");
        assert_eq!(snap.control.tuples, 0, "sketches carry no tuples in the paper's unit");
        assert_eq!(snap.control.bytes, (request.encode().len() + frame.encode().len()) as u64);

        // The session layer's Tagged wrapper adds exactly its 9-byte
        // header, still one control message.
        let before = snap.control.bytes;
        let tagged = Message::Tagged { query_id: 4, inner: Box::new(frame.clone()) };
        meter.record(&tagged);
        let snap = meter.snapshot();
        assert_eq!(snap.control.messages, 3);
        assert_eq!(snap.control.tuples, 0);
        assert_eq!(snap.control.bytes - before, frame.encode().len() as u64 + 9);
    }

    #[test]
    fn columnar_frame_meters_one_message_with_exact_length_and_savings() {
        // A columnar FeedbackBatchC is still one frame / n tuples, with
        // bytes equal to its real encoded length — and the recorder learns
        // how many bytes the layout saved over the legacy row encoding.
        let tuples: Vec<TupleMsg> = (0..16)
            .map(|i| {
                let t = UncertainTuple::new(
                    TupleId::new(0, i),
                    vec![1.0 + i as f64, 2.0],
                    Probability::new(0.5).unwrap(),
                )
                .unwrap();
                TupleMsg::new(&t, 0.25)
            })
            .collect();
        let legacy = Message::FeedbackBatch(tuples.clone());
        let columnar = Message::FeedbackBatchC(crate::TupleBlock::from_msgs(&tuples));
        let rec = Recorder::enabled();
        let meter = BandwidthMeter::with_recorder(rec.clone());
        meter.record(&columnar);
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 1);
        assert_eq!(snap.feedback.tuples, 16);
        assert_eq!(snap.feedback.bytes, columnar.encode().len() as u64);
        assert_eq!(rec.counter(Counter::ColumnarFrames), 1);
        assert_eq!(
            rec.counter(Counter::BytesSaved),
            (legacy.encode().len() - columnar.encode().len()) as u64
        );
        // Legacy frames never touch the columnar counters.
        meter.record(&legacy);
        assert_eq!(rec.counter(Counter::ColumnarFrames), 1);
        // The columnar survival reply is a few bytes *larger* than its
        // legacy twin (header premium); savings saturate at zero.
        let saved = rec.counter(Counter::BytesSaved);
        meter.record(&Message::SurvivalBatchReplyC { survivals: vec![0.5; 16], pruned: 3 });
        assert_eq!(rec.counter(Counter::ColumnarFrames), 2);
        assert_eq!(rec.counter(Counter::BytesSaved), saved);
    }

    #[test]
    fn records_by_class() {
        let meter = BandwidthMeter::new();
        meter.record(&sample_msg());
        meter.record(&Message::SurvivalReply { survival: 0.9, pruned: 1 });
        meter.record(&Message::RequestNext);
        let snap = meter.snapshot();
        assert_eq!(snap.feedback.messages, 1);
        assert_eq!(snap.feedback.tuples, 1);
        assert!(snap.feedback.bytes > 0);
        assert_eq!(snap.reply.messages, 1);
        assert_eq!(snap.reply.tuples, 0);
        assert_eq!(snap.control.messages, 1);
        assert_eq!(snap.total().messages, 3);
        assert_eq!(snap.tuples_transmitted(), 1);
    }

    #[test]
    fn clones_share_counters() {
        let meter = BandwidthMeter::new();
        let clone = meter.clone();
        clone.record(&sample_msg());
        assert_eq!(meter.snapshot().feedback.messages, 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let meter = BandwidthMeter::new();
        meter.record(&sample_msg());
        meter.reset();
        assert_eq!(meter.snapshot(), MeterSnapshot::default());
    }

    #[test]
    fn forwards_to_recorder() {
        let rec = Recorder::enabled();
        let meter = BandwidthMeter::with_recorder(rec.clone());
        meter.record(&sample_msg()); // feedback: one tuple payload
        meter.record(&Message::RequestNext); // control: no payload
        assert_eq!(rec.counter(Counter::Messages), 2);
        assert_eq!(rec.counter(Counter::TuplesShipped), 1);
        assert!(rec.counter(Counter::BytesSent) > 0);
        assert!(meter.recorder().is_enabled());
        assert!(!BandwidthMeter::new().recorder().is_enabled());
    }

    #[test]
    fn since_computes_deltas() {
        let meter = BandwidthMeter::new();
        meter.record(&sample_msg());
        let mid = meter.snapshot();
        meter.record(&sample_msg());
        meter.record(&sample_msg());
        let end = meter.snapshot();
        let delta = end.since(&mid);
        assert_eq!(delta.feedback.messages, 2);
        assert_eq!(delta.feedback.tuples, 2);
    }
}
